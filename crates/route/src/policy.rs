//! Metal Layer Sharing policies and the layer-access rule.
//!
//! The access rule answers one question for the router: *may this net
//! occupy layer `z` at g-cell `(x, y)`?* True 3D nets may go anywhere
//! (they must cross the bond regardless). For 2D nets the answer depends
//! on the policy:
//!
//! | policy | own-die metals | other-die metals |
//! |---|---|---|
//! | `Disabled` | yes | no |
//! | `SotaRegionSharing` | yes, **except** top metals confiscated in shared g-cells | only the donor die's two bond-adjacent metals, only in g-cells shared to this net's die |
//! | `PerNet` | yes | yes anywhere, iff the net was selected |
//!
//! The confiscation in `SotaRegionSharing` is the mechanism behind
//! Table I's "MLS hurt net n146095": region-level sharing takes top-metal
//! tracks away from the donor die's own nets with no net-level control.

use serde::{Deserialize, Serialize};

use gnnmls_netlist::{NetId, Netlist, Tier};
use gnnmls_phys::Placement;

use crate::grid::RoutingGrid;

/// How MLS is applied during routing.
#[derive(Clone, Debug, PartialEq)]
pub enum MlsPolicy {
    /// Sequential-2D baseline: no sharing; 2D nets stay on their die.
    Disabled,
    /// The SOTA of ref. \[9\]: congestion-driven region-level sharing.
    /// G-cells where one die's routing demand exceeds `threshold` × the
    /// other's hand the other die's bond-adjacent metals to the loaded die.
    SotaRegionSharing {
        /// Demand ratio above which a g-cell is shared (≥ 1; lower =
        /// more aggressive sharing).
        threshold: f64,
    },
    /// GNN-MLS: the indexed nets (by [`NetId`]) may individually borrow
    /// the other die's metals anywhere; no confiscation.
    PerNet(Vec<bool>),
}

impl MlsPolicy {
    /// The paper's SOTA configuration (moderately aggressive sharing).
    pub fn sota() -> Self {
        MlsPolicy::SotaRegionSharing { threshold: 1.25 }
    }

    /// A per-net policy allowing exactly the given nets.
    pub fn per_net_from(netlist: &Netlist, selected: impl IntoIterator<Item = NetId>) -> Self {
        let mut flags = vec![false; netlist.net_count()];
        for n in selected {
            flags[n.index()] = true;
        }
        MlsPolicy::PerNet(flags)
    }

    /// Whether the policy needs a [`SotaShareMap`].
    pub fn needs_share_map(&self) -> bool {
        matches!(self, MlsPolicy::SotaRegionSharing { .. })
    }
}

/// Per-g-cell record of region-level sharing decisions.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SotaShareMap {
    nx: usize,
    ny: usize,
    /// 0 = not shared, 1 = shared to logic nets, 2 = shared to memory nets.
    shared: Vec<u8>,
}

impl SotaShareMap {
    /// Computes the share map from HPWL-based routing demand.
    ///
    /// Each net spreads one unit of demand uniformly over its bounding-box
    /// g-cells, attributed to its home die (3D nets count half on each).
    /// A g-cell is shared to the die whose demand exceeds `threshold` ×
    /// the other's.
    pub fn compute(
        netlist: &Netlist,
        placement: &Placement,
        grid: &RoutingGrid,
        threshold: f64,
    ) -> Self {
        let (nx, ny) = (grid.nx, grid.ny);
        let mut demand = vec![[0.0f64; 2]; nx * ny];

        for net in netlist.net_ids() {
            let pins = &netlist.net(net).pins;
            if pins.is_empty() {
                continue;
            }
            let mut x0 = f64::MAX;
            let mut x1 = f64::MIN;
            let mut y0 = f64::MAX;
            let mut y1 = f64::MIN;
            for &p in pins {
                let l = placement.loc(netlist.pin(p).cell);
                x0 = x0.min(l.x);
                x1 = x1.max(l.x);
                y0 = y0.min(l.y);
                y1 = y1.max(l.y);
            }
            let (gx0, gy0) = grid.gcell_of(x0, y0);
            let (gx1, gy1) = grid.gcell_of(x1, y1);
            let cells = ((gx1 - gx0 + 1) * (gy1 - gy0 + 1)) as f64;
            let w = match netlist.net_tier(net) {
                Some(Tier::Logic) => [1.0 / cells, 0.0],
                Some(Tier::Memory) => [0.0, 1.0 / cells],
                None => [0.5 / cells, 0.5 / cells],
            };
            for gy in gy0..=gy1 {
                for gx in gx0..=gx1 {
                    let d = &mut demand[gy * nx + gx];
                    d[0] += w[0];
                    d[1] += w[1];
                }
            }
        }

        let shared = demand
            .iter()
            .map(|d| {
                if d[0] > threshold * d[1] && d[0] > 0.0 {
                    1
                } else if d[1] > threshold * d[0] && d[1] > 0.0 {
                    2
                } else {
                    0
                }
            })
            .collect();
        Self { nx, ny, shared }
    }

    /// The die whose nets gained access at a g-cell (`None` = unshared).
    #[inline]
    pub fn shared_to(&self, x: usize, y: usize) -> Option<Tier> {
        match self.shared[y * self.nx + x] {
            1 => Some(Tier::Logic),
            2 => Some(Tier::Memory),
            _ => None,
        }
    }

    /// Number of g-cells shared to each tier: (to logic, to memory).
    pub fn shared_counts(&self) -> (usize, usize) {
        let l = self.shared.iter().filter(|&&s| s == 1).count();
        let m = self.shared.iter().filter(|&&s| s == 2).count();
        (l, m)
    }
}

/// Resolved access rule the router consults per node expansion.
pub struct AccessChecker<'a> {
    grid: &'a RoutingGrid,
    mode: AccessMode<'a>,
}

enum AccessMode<'a> {
    Disabled,
    Sota(&'a SotaShareMap),
    PerNet(&'a [bool]),
}

impl<'a> AccessChecker<'a> {
    /// Builds the checker for a policy (`share` must be `Some` for the
    /// SOTA policy; without one, SOTA degrades to the home-die-only
    /// rule rather than panicking).
    pub fn new(
        grid: &'a RoutingGrid,
        policy: &'a MlsPolicy,
        share: Option<&'a SotaShareMap>,
    ) -> Self {
        let mode = match (policy, share) {
            (MlsPolicy::Disabled, _) => AccessMode::Disabled,
            (MlsPolicy::SotaRegionSharing { .. }, Some(share)) => AccessMode::Sota(share),
            // Defensive: a SOTA checker without a share map can't share
            // anything, which is exactly the Disabled access rule.
            (MlsPolicy::SotaRegionSharing { .. }, None) => AccessMode::Disabled,
            (MlsPolicy::PerNet(flags), _) => AccessMode::PerNet(flags),
        };
        Self { grid, mode }
    }

    /// The bond-adjacent ("donor top") z-slices of a die — the two metals
    /// region sharing hands over.
    fn donor_top_zs(&self, tier: Tier) -> [usize; 2] {
        let ll = self.grid.logic_layers;
        match tier {
            Tier::Logic => [ll - 1, ll.saturating_sub(2)],
            Tier::Memory => [ll, (ll + 1).min(self.grid.nz() - 1)],
        }
    }

    /// Whether `net` (with home die `home`; `None` for 3D nets) may occupy
    /// layer `z` at g-cell `(x, y)`.
    pub fn allowed(&self, net: NetId, home: Option<Tier>, x: usize, y: usize, z: usize) -> bool {
        let Some(home) = home else {
            return true; // 3D nets roam freely.
        };
        let z_tier = self.grid.tier_of_z(z);
        match &self.mode {
            AccessMode::Disabled => z_tier == home,
            AccessMode::PerNet(flags) => z_tier == home || flags[net.index()],
            AccessMode::Sota(map) => {
                if z_tier == home {
                    // Own die — unless this g-cell's bond-adjacent metals
                    // were confiscated for the other die's nets.
                    match map.shared_to(x, y) {
                        Some(beneficiary) if beneficiary != home => {
                            !self.donor_top_zs(home).contains(&z)
                        }
                        _ => true,
                    }
                } else {
                    // Other die — only its donated top metals, only where
                    // this g-cell is shared to our die.
                    map.shared_to(x, y) == Some(home) && self.donor_top_zs(z_tier).contains(&z)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmls_netlist::tech::TechConfig;
    use gnnmls_phys::Floorplan;

    fn grid() -> RoutingGrid {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let fp = Floorplan {
            width_um: 100.0,
            height_um: 100.0,
        };
        RoutingGrid::build(&fp, &tech, 16, 0.0, 0.0)
    }

    fn share_all_to_logic(g: &RoutingGrid) -> SotaShareMap {
        SotaShareMap {
            nx: g.nx,
            ny: g.ny,
            shared: vec![1; g.nx * g.ny],
        }
    }

    #[test]
    fn disabled_confines_2d_nets_to_their_die() {
        let g = grid();
        let p = MlsPolicy::Disabled;
        let ac = AccessChecker::new(&g, &p, None);
        let n = NetId::new(0);
        assert!(ac.allowed(n, Some(Tier::Logic), 0, 0, 0));
        assert!(ac.allowed(n, Some(Tier::Logic), 0, 0, 5));
        assert!(!ac.allowed(n, Some(Tier::Logic), 0, 0, 6));
        assert!(ac.allowed(n, Some(Tier::Memory), 0, 0, 6));
        assert!(!ac.allowed(n, Some(Tier::Memory), 0, 0, 5));
        // 3D nets roam.
        assert!(ac.allowed(n, None, 0, 0, 0) && ac.allowed(n, None, 0, 0, 11));
    }

    #[test]
    fn per_net_grants_crossing_to_selected_nets_only() {
        let g = grid();
        let p = MlsPolicy::PerNet(vec![true, false]);
        let ac = AccessChecker::new(&g, &p, None);
        assert!(ac.allowed(NetId::new(0), Some(Tier::Logic), 0, 0, 8));
        assert!(!ac.allowed(NetId::new(1), Some(Tier::Logic), 0, 0, 8));
        // Own die always fine.
        assert!(ac.allowed(NetId::new(1), Some(Tier::Logic), 0, 0, 3));
    }

    #[test]
    fn sota_shares_donor_top_metals_and_confiscates_them() {
        let g = grid();
        let p = MlsPolicy::sota();
        let map = share_all_to_logic(&g);
        let ac = AccessChecker::new(&g, &p, Some(&map));
        let n = NetId::new(0);
        // Logic nets may now use memory's bond-adjacent metals (z 6, 7)...
        assert!(ac.allowed(n, Some(Tier::Logic), 1, 1, 6));
        assert!(ac.allowed(n, Some(Tier::Logic), 1, 1, 7));
        // ...but not memory's deeper metals.
        assert!(!ac.allowed(n, Some(Tier::Logic), 1, 1, 9));
        // Memory nets lose exactly those metals in shared g-cells...
        assert!(!ac.allowed(n, Some(Tier::Memory), 1, 1, 6));
        assert!(!ac.allowed(n, Some(Tier::Memory), 1, 1, 7));
        // ...and keep the rest of their stack.
        assert!(ac.allowed(n, Some(Tier::Memory), 1, 1, 9));
        // Logic nets keep their own stack untouched.
        assert!(ac.allowed(n, Some(Tier::Logic), 1, 1, 5));
    }

    #[test]
    fn sota_without_map_degrades_to_home_die_only() {
        // Defensive behavior: a SOTA checker missing its share map must
        // act like Disabled (no sharing anywhere), not panic.
        let g = grid();
        let p = MlsPolicy::sota();
        let sota = AccessChecker::new(&g, &p, None);
        let disabled = AccessChecker::new(&g, &MlsPolicy::Disabled, None);
        let net = NetId::new(0);
        for z in 0..g.nz() {
            assert_eq!(
                sota.allowed(net, Some(Tier::Logic), 0, 0, z),
                disabled.allowed(net, Some(Tier::Logic), 0, 0, z),
                "z={z}"
            );
        }
    }

    #[test]
    fn share_map_reflects_demand_imbalance() {
        use gnnmls_netlist::tech::TechNode;
        use gnnmls_netlist::{CellLibrary, NetlistBuilder};
        use gnnmls_phys::place::Point;

        // Many logic nets in one corner, nothing else.
        let lib = CellLibrary::for_node(&TechNode::n28());
        let mut b = NetlistBuilder::new("d");
        let mut locs = Vec::new();
        for i in 0..8 {
            let a = b
                .add_cell(format!("a{i}"), lib.expect("PI"), Tier::Logic)
                .unwrap();
            let z = b
                .add_cell(format!("z{i}"), lib.expect("PO"), Tier::Logic)
                .unwrap();
            let n = b.add_net(format!("n{i}")).unwrap();
            b.connect_output(n, a, 0).unwrap();
            b.connect_input(n, z, 0).unwrap();
            locs.push(Point::new(5.0, 5.0));
            locs.push(Point::new(20.0, 20.0));
        }
        let netlist = b.finish().unwrap();
        let fp = Floorplan {
            width_um: 100.0,
            height_um: 100.0,
        };
        let placement = Placement::from_locations(locs, fp);
        let g = grid();
        let map = SotaShareMap::compute(&netlist, &placement, &g, 1.25);
        assert_eq!(map.shared_to(0, 0), Some(Tier::Logic));
        let (to_logic, to_memory) = map.shared_counts();
        assert!(to_logic > 0);
        assert_eq!(to_memory, 0);
        // Far corner has no demand at all -> unshared.
        assert_eq!(map.shared_to(g.nx - 1, g.ny - 1), None);
    }
}

//! SVG rendering of routing results (Figure 9(b–c)-style layout views).
//!
//! Renders a per-g-cell heat map of one die's routing usage, recomputed
//! from the committed route trees, plus markers for F2F pad sites used by
//! MLS crossings. Output is plain SVG text — no dependencies.

use std::fmt::Write as _;

use gnnmls_netlist::Tier;

use crate::db::RouteDb;
use crate::grid::RoutingGrid;

/// Per-g-cell wire usage of one die, recomputed from route trees.
pub fn usage_map(db: &RouteDb, grid: &RoutingGrid, tier: Tier) -> Vec<u32> {
    let mut map = vec![0u32; grid.nx * grid.ny];
    for r in &db.nets {
        let t = &r.tree;
        for i in 1..t.nodes.len() {
            let (xa, ya, za) = grid.coords(t.nodes[t.parent[i] as usize]);
            let (xb, yb, zb) = grid.coords(t.nodes[i]);
            if za == zb && grid.tier_of_z(za) == tier {
                map[ya.min(yb) * grid.nx + xa.min(xb)] += 1;
            }
        }
    }
    map
}

/// F2F pad sites consumed by MLS crossings, per g-cell.
pub fn mls_pad_map(db: &RouteDb, grid: &RoutingGrid) -> Vec<u32> {
    let mut map = vec![0u32; grid.nx * grid.ny];
    for r in db.nets.iter().filter(|r| r.is_mls) {
        let t = &r.tree;
        for i in 1..t.nodes.len() {
            if t.edge_f2f[i] {
                let (x, y, _) = grid.coords(t.nodes[i]);
                map[y * grid.nx + x] += 1;
            }
        }
    }
    map
}

/// Renders a die's routing-usage heat map with MLS pad markers as SVG.
pub fn congestion_svg(db: &RouteDb, grid: &RoutingGrid, tier: Tier) -> String {
    const CELL: f64 = 8.0;
    let usage = usage_map(db, grid, tier);
    let pads = mls_pad_map(db, grid);
    let max = usage.iter().copied().max().unwrap_or(1).max(1) as f64;
    let (w, h) = (grid.nx as f64 * CELL, grid.ny as f64 * CELL);
    let mut svg = String::new();
    let _ = writeln!(
        svg,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" viewBox=\"0 0 {w} {h}\">"
    );
    let _ = writeln!(
        svg,
        "<title>{tier} die routing usage (max {max} tracks/gcell)</title>"
    );
    for gy in 0..grid.ny {
        for gx in 0..grid.nx {
            let u = usage[gy * grid.nx + gx] as f64 / max;
            // Blue (cold) -> red (hot).
            let rch = (255.0 * u) as u8;
            let bch = (255.0 * (1.0 - u)) as u8;
            let x = gx as f64 * CELL;
            // SVG y grows downward; flip so (0,0) is bottom-left.
            let y = (grid.ny - 1 - gy) as f64 * CELL;
            let _ = writeln!(
                svg,
                "<rect x=\"{x}\" y=\"{y}\" width=\"{CELL}\" height=\"{CELL}\" fill=\"rgb({rch},40,{bch})\"/>"
            );
            if pads[gy * grid.nx + gx] > 0 {
                let cx = x + CELL / 2.0;
                let cy = y + CELL / 2.0;
                let _ = writeln!(
                    svg,
                    "<circle cx=\"{cx}\" cy=\"{cy}\" r=\"{:.1}\" fill=\"none\" stroke=\"white\" stroke-width=\"1\"/>",
                    CELL / 3.0
                );
            }
        }
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{route_design, MlsPolicy, RouteConfig};
    use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
    use gnnmls_netlist::tech::TechConfig;
    use gnnmls_phys::{place, PlaceConfig};

    fn routed() -> (RouteDb, RoutingGrid) {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
        route_design(
            &d.netlist,
            &p,
            &tech,
            MlsPolicy::sota(),
            RouteConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn usage_map_counts_only_the_requested_tier() {
        let (db, grid) = routed();
        let logic = usage_map(&db, &grid, Tier::Logic);
        let memory = usage_map(&db, &grid, Tier::Memory);
        let l: u32 = logic.iter().sum();
        let m: u32 = memory.iter().sum();
        assert!(l > 0, "logic die carries wires");
        assert!(l > m, "logic die dominates a MoL design");
        // Wire segments total = per-tier sums.
        let total: usize = db
            .nets
            .iter()
            .map(|r| {
                (1..r.tree.nodes.len())
                    .filter(|&i| {
                        let (_, _, za) = grid.coords(r.tree.nodes[r.tree.parent[i] as usize]);
                        let (_, _, zb) = grid.coords(r.tree.nodes[i]);
                        za == zb
                    })
                    .count()
            })
            .sum();
        assert_eq!(total as u32, l + m);
    }

    #[test]
    fn mls_pads_appear_only_for_mls_routes() {
        let (db, grid) = routed();
        let pads = mls_pad_map(&db, &grid);
        let count: u32 = pads.iter().sum();
        let expect: u32 = db.mls_nets().map(|r| r.f2f_crossings).sum();
        assert_eq!(count, expect);
    }

    #[test]
    fn svg_is_well_formed_ish() {
        let (db, grid) = routed();
        let svg = congestion_svg(&db, &grid, Tier::Memory);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), grid.nx * grid.ny);
        assert!(svg.contains("<title>memory die"));
    }
}

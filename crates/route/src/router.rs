//! Congestion-driven multi-source A* maze routing with MLS policies.
//!
//! Each net is routed sink-by-sink (nearest first): every search starts
//! from the net's whole partial tree and ends at one sink's grid node, so
//! the result is a Steiner-ish tree. Edge costs combine a per-layer base
//! cost (long nets drift to the thick upper metals), via and F2F pad
//! costs, and a congestion multiplier that turns into a steep overflow
//! penalty past capacity. A rip-up-and-reroute pass re-spreads the nets
//! that ended up on over-capacity edges.
//!
//! The router also exposes *detached what-if routing*
//! ([`Router::what_if`]): re-route one net with MLS forced on or off
//! without touching committed state. That is the "iterative STA"
//! primitive the paper calls computationally prohibitive at full scale —
//! and the label oracle for GNN-MLS training.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use gnnmls_netlist::tech::{F2fParams, TechConfig};
use gnnmls_netlist::{NetId, Netlist, Tier};
use gnnmls_phys::{net_hpwl_um, Placement};

use crate::db::{NetRoute, RouteDb, RouteSummary};
use crate::grid::RoutingGrid;
use crate::policy::{MlsPolicy, SotaShareMap};
use crate::tree::{RouteTree, RouteTreeBuilder};

// ---- observability ----

static ASTAR_SEARCHES: gnnmls_obs::Counter = gnnmls_obs::Counter::new(
    "gnnmls_route_astar_searches_total",
    "multi-source A* searches started",
);
static ASTAR_EXPANSIONS: gnnmls_obs::Counter = gnnmls_obs::Counter::new(
    "gnnmls_route_astar_expansions_total",
    "A* node expansions across all searches",
);
static PATTERN_FALLBACK_SINKS: gnnmls_obs::Counter = gnnmls_obs::Counter::new(
    "gnnmls_route_pattern_fallback_sinks_total",
    "sinks downgraded from maze to pattern routing",
);
static RIPUP_ROUNDS: gnnmls_obs::Counter = gnnmls_obs::Counter::new(
    "gnnmls_route_ripup_rounds_total",
    "rip-up-and-reroute rounds executed",
);
static RIPUP_VICTIMS: gnnmls_obs::Histogram = gnnmls_obs::Histogram::new(
    "gnnmls_route_ripup_victims",
    "overflowing nets ripped per rip-up round (convergence profile)",
    &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096],
);

/// Bounds for the per-layer g-cell overflow histograms (tracks past
/// capacity on one g-cell edge).
const OVERFLOW_BOUNDS: [u64; 7] = [1, 2, 3, 4, 6, 8, 16];

/// Router parameters.
///
/// Construct via [`RouteConfig::builder`] (fields are non-exhaustive;
/// struct-literal construction is reserved to this crate so knobs can
/// be added without breaking downstream code).
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub struct RouteConfig {
    /// Desired g-cells across the die width.
    pub target_gcells: usize,
    /// Fraction of the logic die's top-metal tracks consumed by the PDN.
    pub pdn_top_util_logic: f64,
    /// Fraction of the memory die's top-metal tracks consumed by the PDN.
    pub pdn_top_util_memory: f64,
    /// Cost of an ordinary inter-layer via.
    pub via_cost: f64,
    /// Cost of an F2F bond crossing (before congestion).
    pub f2f_cost: f64,
    /// Congestion multiplier strength below capacity.
    pub congestion_weight: f64,
    /// Multiplier applied per unit of overflow past capacity.
    pub overflow_penalty: f64,
    /// Rip-up-and-reroute rounds after the initial pass.
    pub ripup_rounds: usize,
    /// A* expansion budget per sink before falling back to pattern
    /// routing.
    pub max_expansions: usize,
    /// Worker threads for parallel routing phases (what-if fan-out and
    /// speculative rip-up rounds). `0` means "all available cores";
    /// `1` runs the exact serial code path. Results are bit-identical
    /// for every thread count.
    pub threads: usize,
}

impl Default for RouteConfig {
    fn default() -> Self {
        Self {
            target_gcells: 48,
            pdn_top_util_logic: 0.45,
            pdn_top_util_memory: 0.15,
            via_cost: 1.2,
            f2f_cost: 1.5,
            congestion_weight: 3.0,
            overflow_penalty: 12.0,
            ripup_rounds: 1,
            max_expansions: 400_000,
            threads: 0,
        }
    }
}

impl RouteConfig {
    /// A builder seeded with the defaults.
    pub fn builder() -> RouteConfigBuilder {
        RouteConfigBuilder {
            cfg: Self::default(),
        }
    }

    /// A builder seeded with this config's current values (the
    /// non-exhaustive replacement for functional-update syntax).
    pub fn to_builder(&self) -> RouteConfigBuilder {
        RouteConfigBuilder { cfg: self.clone() }
    }

    /// This config with the thread knob replaced (validation-free: any
    /// `threads` value is legal, `0` meaning "all cores").
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// A [`RouteConfig`] field rejected by [`RouteConfigBuilder::build`].
#[derive(Clone, Debug, PartialEq)]
pub struct RouteConfigError {
    /// The offending field.
    pub field: &'static str,
    /// The value as given.
    pub got: String,
    /// What the field requires.
    pub want: &'static str,
}

impl fmt::Display for RouteConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid RouteConfig.{}: got {}, want {}",
            self.field, self.got, self.want
        )
    }
}

impl std::error::Error for RouteConfigError {}

/// Builder for [`RouteConfig`]; validation happens once, at
/// [`RouteConfigBuilder::build`].
#[derive(Clone, Debug)]
pub struct RouteConfigBuilder {
    cfg: RouteConfig,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $name:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            #[must_use]
            pub fn $name(mut self, v: $ty) -> Self {
                self.cfg.$name = v;
                self
            }
        )*
    };
}

impl RouteConfigBuilder {
    builder_setters! {
        /// Desired g-cells across the die width (>= 2).
        target_gcells: usize,
        /// PDN fraction of the logic die's top metal (in `[0, 1)`).
        pdn_top_util_logic: f64,
        /// PDN fraction of the memory die's top metal (in `[0, 1)`).
        pdn_top_util_memory: f64,
        /// Via cost (finite, >= 0).
        via_cost: f64,
        /// F2F bond crossing cost (finite, >= 0).
        f2f_cost: f64,
        /// Congestion multiplier strength (finite, >= 0).
        congestion_weight: f64,
        /// Overflow penalty per unit past capacity (finite, >= 0).
        overflow_penalty: f64,
        /// Rip-up-and-reroute rounds.
        ripup_rounds: usize,
        /// A* expansion budget per sink (> 0).
        max_expansions: usize,
        /// Worker threads (`0` = all cores).
        threads: usize,
    }

    /// Validates and produces the config.
    ///
    /// # Errors
    ///
    /// Returns a [`RouteConfigError`] naming the first offending field.
    pub fn build(self) -> Result<RouteConfig, RouteConfigError> {
        let c = &self.cfg;
        let bad = |field: &'static str, got: String, want: &'static str| RouteConfigError {
            field,
            got,
            want,
        };
        if c.target_gcells < 2 {
            return Err(bad(
                "target_gcells",
                c.target_gcells.to_string(),
                "at least 2",
            ));
        }
        for (field, v) in [
            ("pdn_top_util_logic", c.pdn_top_util_logic),
            ("pdn_top_util_memory", c.pdn_top_util_memory),
        ] {
            if !v.is_finite() || !(0.0..1.0).contains(&v) {
                return Err(bad(field, format!("{v}"), "a fraction in [0, 1)"));
            }
        }
        for (field, v) in [
            ("via_cost", c.via_cost),
            ("f2f_cost", c.f2f_cost),
            ("congestion_weight", c.congestion_weight),
            ("overflow_penalty", c.overflow_penalty),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(bad(field, format!("{v}"), "finite and non-negative"));
            }
        }
        if c.max_expansions == 0 {
            return Err(bad("max_expansions", "0".into(), "a positive budget"));
        }
        Ok(self.cfg)
    }
}

/// Errors raised while setting up or running routing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteError {
    /// The placement does not cover every cell of the netlist.
    PlacementMismatch {
        /// Cells in the netlist.
        cells: usize,
        /// Locations in the placement.
        locations: usize,
    },
    /// A net could not be connected to all of its sinks.
    Unroutable {
        /// The failing net.
        net: NetId,
    },
    /// The route database was requested before every net had a route.
    Incomplete {
        /// Nets still missing a route.
        missing: usize,
    },
    /// The layer stack offers no in-die H/V layer pair for the pattern
    /// fallback (defensive; every supported stack has one).
    NoPatternLayer {
        /// The die whose stack is degenerate.
        tier: Tier,
    },
    /// A routing worker panicked and the panic reproduced on the serial
    /// retry.
    Worker {
        /// Index of the failing item in the fan-out.
        index: usize,
        /// The panic payload.
        message: String,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::PlacementMismatch { cells, locations } => {
                write!(f, "placement has {locations} locations for {cells} cells")
            }
            RouteError::Unroutable { net } => {
                write!(f, "net {net} could not be routed to all sinks")
            }
            RouteError::Incomplete { missing } => {
                write!(f, "route db requested with {missing} unrouted nets")
            }
            RouteError::NoPatternLayer { tier } => {
                write!(f, "{tier} die has no H/V layer pair for pattern routing")
            }
            RouteError::Worker { index, message } => {
                write!(f, "routing worker panicked at item {index}: {message}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// Per-net MLS override used by what-if routing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MlsOverride {
    /// Follow the router's global policy.
    UsePolicy,
    /// Force-allow this net to borrow the other die's metals anywhere.
    Allow,
    /// Force-confine this net to its home die.
    Deny,
}

/// Reusable per-thread A* working state.
///
/// Routing reads shared router state (`&Router`) but writes only into a
/// scratch, so independent searches can run concurrently, each with its
/// own scratch (mint one per worker via [`Router::scratch`]). Besides
/// the distance/backtrack arrays, the scratch records the search
/// *footprint* — every node stamped since the last [`RouteScratch::
/// begin_footprint`] — which is exactly the set of nodes whose incident
/// edges' congestion a search may have read. Speculative parallel
/// rip-up uses that to detect when a result must be recomputed.
#[derive(Debug, Default)]
pub struct RouteScratch {
    dist: Vec<f32>,
    came: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
    footprint: Vec<u32>,
}

impl RouteScratch {
    fn ensure(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, 0.0);
            self.came.resize(n, u32::MAX);
            self.stamp.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
    }

    #[inline]
    fn seen(&self, node: u32) -> bool {
        self.stamp[node as usize] == self.epoch
    }

    #[inline]
    fn set(&mut self, node: u32, d: f32, from: u32) {
        if self.stamp[node as usize] != self.epoch {
            self.footprint.push(node);
        }
        self.dist[node as usize] = d;
        self.came[node as usize] = from;
        self.stamp[node as usize] = self.epoch;
    }

    /// Clears the recorded footprint; subsequent searches accumulate
    /// into a fresh set.
    fn begin_footprint(&mut self) {
        self.footprint.clear();
    }

    /// Nodes stamped since the last [`RouteScratch::begin_footprint`].
    fn footprint(&self) -> &[u32] {
        &self.footprint
    }
}

/// Usage counts to *subtract* while costing edges: the committed
/// contribution of the net being what-if re-routed. This lets what-if
/// routing run against `&Router` (no mutate-and-restore), seeing the
/// exact same congestion numbers the old detached route saw.
#[derive(Debug, Default)]
struct ExcludedUsage {
    h: std::collections::HashMap<usize, u16>,
    v: std::collections::HashMap<usize, u16>,
    f2f: std::collections::HashMap<usize, u16>,
}

impl ExcludedUsage {
    #[inline]
    fn sub_h(&self, idx: usize, usage: u16) -> u16 {
        usage - self.h.get(&idx).copied().unwrap_or(0)
    }

    #[inline]
    fn sub_v(&self, idx: usize, usage: u16) -> u16 {
        usage - self.v.get(&idx).copied().unwrap_or(0)
    }

    #[inline]
    fn sub_f2f(&self, idx: usize, usage: u16) -> u16 {
        usage - self.f2f.get(&idx).copied().unwrap_or(0)
    }
}

#[derive(Debug)]
struct HeapEntry {
    f: f32,
    g: f32,
    node: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on f, tie-broken by node id for determinism.
        other
            .f
            .total_cmp(&self.f)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// The stateful router.
pub struct Router<'a> {
    netlist: &'a Netlist,
    placement: &'a Placement,
    grid: RoutingGrid,
    f2f: F2fParams,
    policy: MlsPolicy,
    share: Option<SotaShareMap>,
    cfg: RouteConfig,
    /// Base wire cost per g-cell step, per z.
    layer_cost: Vec<f32>,
    min_wire_cost: f32,
    usage_h: Vec<u16>,
    usage_v: Vec<u16>,
    usage_f2f: Vec<u16>,
    routes: Vec<Option<NetRoute>>,
    home: Vec<Option<Tier>>,
    congestion_scale: f64,
    scratch: RouteScratch,
    /// Rip-up victims whose reroute failed and kept their old route.
    isolated_failures: usize,
}

impl<'a> Router<'a> {
    /// Builds a router for a placed design.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::PlacementMismatch`] if the placement is
    /// missing cell locations.
    pub fn new(
        netlist: &'a Netlist,
        placement: &'a Placement,
        tech: &TechConfig,
        policy: MlsPolicy,
        cfg: RouteConfig,
    ) -> Result<Self, RouteError> {
        if placement.locations().len() < netlist.cell_count() {
            return Err(RouteError::PlacementMismatch {
                cells: netlist.cell_count(),
                locations: placement.locations().len(),
            });
        }
        let grid = RoutingGrid::build(
            placement.floorplan(),
            tech,
            cfg.target_gcells,
            cfg.pdn_top_util_logic,
            cfg.pdn_top_util_memory,
        );
        let share = match policy {
            MlsPolicy::SotaRegionSharing { threshold } => {
                Some(SotaShareMap::compute(netlist, placement, &grid, threshold))
            }
            _ => None,
        };
        let layer_cost: Vec<f32> = grid
            .layers
            .iter()
            .map(|l| (grid.gcell_um * (1.0 + 600.0 * l.r_kohm_per_um + 0.3 * l.c_ff_per_um)) as f32)
            .collect();
        let min_wire_cost = layer_cost.iter().copied().fold(f32::MAX, f32::min);
        let home: Vec<Option<Tier>> = netlist.net_ids().map(|n| netlist.net_tier(n)).collect();
        let nzyx = grid.node_count();
        Ok(Self {
            netlist,
            placement,
            f2f: tech.f2f.clone(),
            policy,
            share,
            layer_cost,
            min_wire_cost,
            usage_h: vec![0; nzyx],
            usage_v: vec![0; nzyx],
            usage_f2f: vec![0; grid.nx * grid.ny],
            routes: vec![None; netlist.net_count()],
            home,
            congestion_scale: 1.0,
            scratch: RouteScratch::default(),
            isolated_failures: 0,
            grid,
            cfg,
        })
    }

    /// The routing grid.
    #[inline]
    pub fn grid(&self) -> &RoutingGrid {
        &self.grid
    }

    /// The router's configuration.
    #[inline]
    pub fn config(&self) -> &RouteConfig {
        &self.cfg
    }

    /// Mints a fresh A* scratch sized lazily on first use. Callers that
    /// fan what-if routing out across threads create one per worker.
    #[inline]
    pub fn scratch(&self) -> RouteScratch {
        RouteScratch::default()
    }

    /// The SOTA share map, if the policy computed one.
    #[inline]
    pub fn share_map(&self) -> Option<&SotaShareMap> {
        self.share.as_ref()
    }

    /// Current congestion scale (doubles each executed rip-up round).
    ///
    /// What-if costs depend on this, so a warm session that restores a
    /// routed DB must also restore the scale to reproduce the original
    /// router's what-if results bit-for-bit.
    #[inline]
    pub fn congestion_scale(&self) -> f64 {
        self.congestion_scale
    }

    /// Rebuilds committed routing state from a saved [`RouteDb`]
    /// without running any search: every net's tree is re-applied to
    /// the usage maps and `congestion_scale` is restored. After this,
    /// [`Router::what_if`] answers are bit-identical to the router that
    /// produced the DB — this is the warm-session restore path, orders
    /// of magnitude cheaper than [`Router::route_all`].
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::Incomplete`] if the DB does not cover
    /// every net of the design.
    pub fn restore_routes(
        &mut self,
        db: &RouteDb,
        congestion_scale: f64,
    ) -> Result<(), RouteError> {
        if db.nets.len() != self.netlist.net_count() {
            return Err(RouteError::Incomplete {
                missing: self.netlist.net_count().abs_diff(db.nets.len()),
            });
        }
        self.usage_h.iter_mut().for_each(|u| *u = 0);
        self.usage_v.iter_mut().for_each(|u| *u = 0);
        self.usage_f2f.iter_mut().for_each(|u| *u = 0);
        self.routes.iter_mut().for_each(|r| *r = None);
        for route in &db.nets {
            self.apply_usage(&route.tree, 1);
            self.routes[route.net.index()] = Some(route.clone());
        }
        self.congestion_scale = congestion_scale;
        self.isolated_failures = db.summary.isolated_failures;
        Ok(())
    }

    /// Routes every net, then runs the configured rip-up rounds.
    ///
    /// Rip-up rounds re-route their victims concurrently when
    /// [`RouteConfig::threads`] allows. All victims are ripped first,
    /// each is routed speculatively against that frozen snapshot on a
    /// worker thread, and results commit serially in victim order. A
    /// speculative result is reused only if its search footprint is
    /// disjoint from every earlier-committed victim's new tree — the
    /// only way it could have read congestion the serial schedule would
    /// have seen differently — otherwise that net is re-routed in place
    /// against current state. Either way the outcome is bit-identical
    /// to the serial schedule.
    ///
    /// Rip-up failures are isolated per net: a victim whose reroute
    /// fails (including the `gnnmls-faults` `UnroutableNet` seam) gets
    /// its previous route restored and is counted in the summary's
    /// `isolated_failures` instead of aborting the round.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError`] when a net cannot be routed at all (no
    /// previous route to fall back to).
    pub fn route_all(&mut self) -> Result<(), RouteError> {
        // Register the conditional families up front: a clean design
        // that never overflows or rips up still exposes them (at zero),
        // so dashboards can tell "no rip-ups" from "not instrumented".
        ASTAR_SEARCHES.register();
        ASTAR_EXPANSIONS.register();
        PATTERN_FALLBACK_SINKS.register();
        RIPUP_ROUNDS.register();
        RIPUP_VICTIMS.register();
        let mut route_span = gnnmls_obs::span("route_all");
        route_span.field_u64("nets", self.routes.len() as u64);
        let mut order: Vec<NetId> = self.netlist.net_ids().collect();
        order.sort_by(|&a, &b| {
            net_hpwl_um(self.netlist, self.placement, a)
                .total_cmp(&net_hpwl_um(self.netlist, self.placement, b))
                .then_with(|| a.cmp(&b))
        });
        for &net in &order {
            let r = self.route_net(net, MlsOverride::UsePolicy, true)?;
            self.routes[net.index()] = Some(r);
        }
        let mut rounds_run = 0u64;
        for round in 0..self.cfg.ripup_rounds {
            self.congestion_scale *= 2.0;
            let victims: Vec<NetId> = order
                .iter()
                .copied()
                .filter(|&n| {
                    self.routes[n.index()]
                        .as_ref()
                        .is_some_and(|r| self.tree_overflows(&r.tree))
                })
                .collect();
            if victims.is_empty() {
                break;
            }
            rounds_run += 1;
            RIPUP_ROUNDS.inc();
            RIPUP_VICTIMS.observe(victims.len() as u64);
            gnnmls_obs::event(
                "ripup_round",
                &[
                    ("round", gnnmls_obs::FieldValue::U64(round as u64)),
                    ("victims", gnnmls_obs::FieldValue::U64(victims.len() as u64)),
                ],
            );
            // Keep the old routes so a failing reroute can be isolated.
            let saved: Vec<Option<NetRoute>> = victims
                .iter()
                .map(|&n| self.routes[n.index()].clone())
                .collect();
            for &net in &victims {
                self.rip_up(net);
            }
            self.reroute_victims(&victims, &saved)?;
        }
        // Final overflow flags against settled usage.
        for net in self.netlist.net_ids() {
            let of = self.routes[net.index()]
                .as_ref()
                .map(|r| self.tree_overflows(&r.tree));
            if let (Some(of), Some(r)) = (of, self.routes[net.index()].as_mut()) {
                r.overflowed = of;
            }
        }
        route_span.field_u64("ripup_rounds", rounds_run);
        route_span.field_u64("isolated_failures", self.isolated_failures as u64);
        Ok(())
    }

    /// Restores a victim's pre-rip route after its reroute failed:
    /// per-net failure isolation. Errors only when there is nothing to
    /// restore.
    fn isolate_failure(
        &mut self,
        net: NetId,
        saved: Option<NetRoute>,
        err: RouteError,
    ) -> Result<NetRoute, RouteError> {
        match saved {
            Some(r) => {
                self.apply_usage(&r.tree, 1);
                self.routes[net.index()] = Some(r.clone());
                self.isolated_failures += 1;
                Ok(r)
            }
            None => Err(err),
        }
    }

    /// Injected-fault seam: does this victim's reroute fail here?
    fn injected_unroutable(net: NetId) -> Result<(), RouteError> {
        if gnnmls_faults::fire(gnnmls_faults::FaultSite::UnroutableNet) {
            Err(RouteError::Unroutable { net })
        } else {
            Ok(())
        }
    }

    /// Re-routes one round's already-ripped victims, committing in
    /// victim order (see [`Router::route_all`] for the speculation
    /// scheme and why it is deterministic). `saved` holds each victim's
    /// pre-rip route for failure isolation.
    fn reroute_victims(
        &mut self,
        victims: &[NetId],
        saved: &[Option<NetRoute>],
    ) -> Result<(), RouteError> {
        let workers = gnnmls_par::resolve_threads(self.cfg.threads);
        if workers <= 1 || victims.len() < 2 {
            for (k, &net) in victims.iter().enumerate() {
                let routed = Self::injected_unroutable(net)
                    .and_then(|()| self.route_net(net, MlsOverride::UsePolicy, true));
                match routed {
                    Ok(r) => self.routes[net.index()] = Some(r),
                    Err(e) => {
                        self.isolate_failure(net, saved[k].clone(), e)?;
                    }
                }
            }
            return Ok(());
        }

        // Speculative pass against the frozen (all-victims-ripped)
        // state. A worker panic is retried serially (bit-identical) and
        // only surfaces as a typed error if it reproduces.
        let this: &Router<'_> = self;
        let speculated = gnnmls_par::recovering_par_map_with(
            self.cfg.threads,
            victims.len(),
            || this.scratch(),
            |scratch, i| {
                let r = this.compute_route(scratch, victims[i], MlsOverride::UsePolicy, None);
                (r, scratch.footprint().to_vec())
            },
        )
        .map_err(|e| RouteError::Worker {
            index: e.index,
            message: e.message,
        })?;

        // Serial-order commit with footprint validation. The fault seam
        // fires here (victim order), matching the serial path.
        let mut committed: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for (i, (route, footprint)) in speculated.into_iter().enumerate() {
            let net = victims[i];
            let resolved = Self::injected_unroutable(net).and_then(|()| match route {
                Ok(route) => {
                    let valid = footprint.iter().all(|n| !committed.contains(n));
                    if valid {
                        self.apply_usage(&route.tree, 1);
                        Ok(route)
                    } else {
                        self.route_net(net, MlsOverride::UsePolicy, true)
                    }
                }
                // Speculative failure: recompute in place against
                // current state before giving up on the net.
                Err(_) => self.route_net(net, MlsOverride::UsePolicy, true),
            });
            let route = match resolved {
                Ok(r) => r,
                Err(e) => self.isolate_failure(net, saved[i].clone(), e)?,
            };
            committed.extend(route.tree.nodes.iter().copied());
            self.routes[net.index()] = Some(route);
        }
        Ok(())
    }

    /// Re-routes one net with a forced MLS decision, committing the
    /// result. Returns `Ok(true)` when the reroute was applied and
    /// `Ok(false)` when it failed and the previous route was restored
    /// instead (per-net failure isolation, counted in the summary).
    ///
    /// # Errors
    ///
    /// Returns [`RouteError`] only when the reroute fails *and* the net
    /// had no previous route to restore.
    pub fn commit_reroute(&mut self, net: NetId, ov: MlsOverride) -> Result<bool, RouteError> {
        let saved = self.routes[net.index()].clone();
        self.rip_up(net);
        let routed = Self::injected_unroutable(net).and_then(|()| self.route_net(net, ov, true));
        match routed {
            Ok(r) => {
                self.routes[net.index()] = Some(r);
                Ok(true)
            }
            Err(e) => {
                self.isolate_failure(net, saved, e)?;
                Ok(false)
            }
        }
    }

    /// Detached what-if: the route this net would get under `ov`, leaving
    /// all committed state untouched. This is the iterative-STA primitive
    /// (disconnect → re-route → re-extract) used by the label oracle.
    ///
    /// Takes `&self` plus a caller-owned [`RouteScratch`] (mint with
    /// [`Router::scratch`]), so independent what-ifs for different nets
    /// can run concurrently against the same committed state. The net's
    /// own committed usage is subtracted via a read-only overlay rather
    /// than mutate-and-restore, so the search sees the exact congestion
    /// numbers a detached re-route always saw.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError`] when the detached route cannot connect
    /// every sink.
    pub fn what_if(
        &self,
        scratch: &mut RouteScratch,
        net: NetId,
        ov: MlsOverride,
    ) -> Result<NetRoute, RouteError> {
        self.what_if_budgeted(scratch, net, ov, self.cfg.max_expansions)
    }

    /// [`Router::what_if`] with a per-call A* expansion budget.
    ///
    /// The serve daemon maps a request deadline onto `max_expansions`,
    /// so a late request degrades to the pattern fallback (or a typed
    /// error) instead of holding a worker. A budget equal to
    /// [`RouteConfig::max_expansions`] is exactly [`Router::what_if`].
    ///
    /// # Errors
    ///
    /// Returns [`RouteError`] when the detached route cannot connect
    /// every sink.
    pub fn what_if_budgeted(
        &self,
        scratch: &mut RouteScratch,
        net: NetId,
        ov: MlsOverride,
        max_expansions: usize,
    ) -> Result<NetRoute, RouteError> {
        let exclude = self.excluded_for(net);
        self.compute_route_budgeted(scratch, net, ov, exclude.as_ref(), max_expansions)
    }

    /// Usage overlay subtracting `net`'s committed tree, if any.
    fn excluded_for(&self, net: NetId) -> Option<ExcludedUsage> {
        let route = self.routes[net.index()].as_ref()?;
        let tree = &route.tree;
        let mut ex = ExcludedUsage::default();
        for i in 1..tree.nodes.len() {
            let a = tree.nodes[tree.parent[i] as usize];
            let b = tree.nodes[i];
            let (xa, ya, za) = self.grid.coords(a);
            let (xb, yb, zb) = self.grid.coords(b);
            if za == zb {
                if ya == yb {
                    *ex.h.entry(self.edge_idx(za, xa.min(xb), ya)).or_insert(0) += 1;
                } else {
                    *ex.v.entry(self.edge_idx(za, xa, ya.min(yb))).or_insert(0) += 1;
                }
            } else if self.grid.is_f2f_via(za.min(zb)) {
                *ex.f2f.entry(ya * self.grid.nx + xa).or_insert(0) += 1;
            }
        }
        Some(ex)
    }

    /// Snapshot of all routes plus summary metrics.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::Incomplete`] if called before
    /// [`Router::route_all`] has routed every net.
    pub fn db(&self) -> Result<RouteDb, RouteError> {
        let mut nets: Vec<NetRoute> = Vec::with_capacity(self.routes.len());
        let mut missing = 0usize;
        for r in &self.routes {
            match r {
                Some(r) => nets.push(r.clone()),
                None => missing += 1,
            }
        }
        if missing > 0 {
            return Err(RouteError::Incomplete { missing });
        }
        // Fault seam: silently corrupt one edge count in the snapshot —
        // exactly the kind of bit-rot the invariant auditor must catch.
        if gnnmls_faults::fire(gnnmls_faults::FaultSite::RouteAuditCorrupt) {
            if let Some(r) = nets.iter_mut().find(|r| r.tree.nodes.len() > 1) {
                r.f2f_crossings += 1;
            }
        }
        let summary = self.summary(&nets);
        Ok(RouteDb { nets, summary })
    }

    fn summary(&self, nets: &[NetRoute]) -> RouteSummary {
        let total_wl_um: f64 = nets.iter().map(|r| r.wirelength_um).sum();
        let (nx, ny) = (self.grid.nx, self.grid.ny);
        let mut layer_utilization = Vec::with_capacity(self.grid.nz());
        for (z, layer) in self.grid.layers.iter().enumerate() {
            let (mut used, mut cap) = (0u64, 0u64);
            let layer_label = format!("{}-M{}", layer.tier, layer.metal);
            gnnmls_obs::register_histogram(
                "gnnmls_route_gcell_overflow",
                &[("layer", &layer_label)],
                &OVERFLOW_BOUNDS,
            );
            for y in 0..ny {
                for x in 0..nx {
                    let idx = (z * ny + y) * nx + x;
                    if x + 1 < nx {
                        used += u64::from(self.usage_h[idx]);
                        cap += u64::from(layer.capacity);
                        let of = self.usage_h[idx].saturating_sub(layer.capacity);
                        if of > 0 {
                            gnnmls_obs::observe(
                                "gnnmls_route_gcell_overflow",
                                &[("layer", &layer_label)],
                                &OVERFLOW_BOUNDS,
                                u64::from(of),
                            );
                        }
                    }
                    if y + 1 < ny {
                        used += u64::from(self.usage_v[idx]);
                        cap += u64::from(layer.capacity);
                        let of = self.usage_v[idx].saturating_sub(layer.capacity);
                        if of > 0 {
                            gnnmls_obs::observe(
                                "gnnmls_route_gcell_overflow",
                                &[("layer", &layer_label)],
                                &OVERFLOW_BOUNDS,
                                u64::from(of),
                            );
                        }
                    }
                }
            }
            layer_utilization.push(if cap == 0 {
                0.0
            } else {
                used as f64 / cap as f64
            });
        }
        // MLS borrow decisions, counted per home tier.
        for tier in ["logic", "memory"] {
            gnnmls_obs::counter_add("gnnmls_route_mls_borrow_total", &[("tier", tier)], 0);
        }
        for r in nets.iter().filter(|r| r.is_mls) {
            if let Some(home) = self.home[r.net.index()] {
                let tier = match home {
                    Tier::Logic => "logic",
                    Tier::Memory => "memory",
                };
                gnnmls_obs::counter_add("gnnmls_route_mls_borrow_total", &[("tier", tier)], 1);
            }
        }
        let pads: u64 = self.usage_f2f.iter().map(|&u| u64::from(u)).sum();
        let pad_cap = (nx * ny) as u64 * u64::from(self.grid.f2f_capacity);
        RouteSummary {
            total_wirelength_m: total_wl_um / 1.0e6,
            mls_net_count: nets.iter().filter(|r| r.is_mls).count(),
            f2f_pads: pads as usize,
            overflowed_nets: nets.iter().filter(|r| r.overflowed).count(),
            layer_utilization,
            f2f_utilization: if pad_cap == 0 {
                0.0
            } else {
                pads as f64 / pad_cap as f64
            },
            pattern_fallback_nets: nets.iter().filter(|r| r.pattern_sinks > 0).count(),
            pattern_fallback_sinks: nets.iter().map(|r| r.pattern_sinks as usize).sum(),
            isolated_failures: self.isolated_failures,
        }
    }

    // ---- per-net routing ----

    fn pin_node(&self, pin: gnnmls_netlist::PinId) -> u32 {
        let cell = self.netlist.pin(pin).cell;
        let loc = self.placement.loc(cell);
        let (gx, gy) = self.grid.gcell_of(loc.x, loc.y);
        let z = self.grid.pin_z(self.netlist.cell(cell).tier);
        self.grid.node(gx, gy, z)
    }

    /// Committing wrapper around [`Router::compute_route`] using the
    /// router's own scratch (the serial hot path).
    fn route_net(
        &mut self,
        net: NetId,
        ov: MlsOverride,
        commit: bool,
    ) -> Result<NetRoute, RouteError> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let r = self.compute_route(&mut scratch, net, ov, None);
        self.scratch = scratch;
        let r = r?;
        if commit {
            self.apply_usage(&r.tree, 1);
        }
        Ok(r)
    }

    /// Routes one net against current committed usage (minus `exclude`,
    /// if given) without committing anything: reads `&self`, writes only
    /// into `scratch`. The scratch's footprint is reset first, so after
    /// the call it holds every node this search stamped.
    fn compute_route(
        &self,
        scratch: &mut RouteScratch,
        net: NetId,
        ov: MlsOverride,
        exclude: Option<&ExcludedUsage>,
    ) -> Result<NetRoute, RouteError> {
        self.compute_route_budgeted(scratch, net, ov, exclude, self.cfg.max_expansions)
    }

    /// [`Router::compute_route`] with an explicit A* expansion budget
    /// (the deadline hook used by [`Router::what_if_budgeted`]).
    fn compute_route_budgeted(
        &self,
        scratch: &mut RouteScratch,
        net: NetId,
        ov: MlsOverride,
        exclude: Option<&ExcludedUsage>,
        max_expansions: usize,
    ) -> Result<NetRoute, RouteError> {
        scratch.begin_footprint();
        let driver = self.netlist.driver(net);
        let root = self.pin_node(driver);
        let mut builder = RouteTreeBuilder::new(&self.grid, &self.f2f, root);

        // Sinks nearest-first (by g-cell manhattan distance from the root).
        let (rx, ry, rz) = self.grid.coords(root);
        let mut sinks: Vec<(usize, u32)> = self
            .netlist
            .sinks(net)
            .iter()
            .map(|&p| {
                let n = self.pin_node(p);
                let (x, y, z) = self.grid.coords(n);
                (x.abs_diff(rx) + y.abs_diff(ry) + z.abs_diff(rz), n)
            })
            .collect();
        let sink_order: Vec<u32> = {
            let mut idx: Vec<usize> = (0..sinks.len()).collect();
            idx.sort_by_key(|&i| (sinks[i].0, sinks[i].1));
            idx.iter().map(|&i| sinks[i].1).collect()
        };

        let mut pattern_sinks = 0u32;
        for &target in &sink_order {
            if builder.contains(target) {
                continue;
            }
            let path = match self.astar(
                scratch,
                net,
                ov,
                exclude,
                builder.grid_nodes(),
                target,
                max_expansions,
            ) {
                Some(p) => p,
                None => {
                    // Budget exhausted: degrade maze → pattern and
                    // record the downgrade on the route.
                    pattern_sinks += 1;
                    PATTERN_FALLBACK_SINKS.inc();
                    self.fallback_path(&builder, target)?
                }
            };
            builder.add_path(&path);
        }
        // Mark sinks in the netlist's sink order.
        for (_, n) in &mut sinks {
            if !builder.mark_sink(*n) {
                return Err(RouteError::Unroutable { net });
            }
        }
        // Restore netlist order for the elmore vector.
        let tree = {
            let mut t = builder.finish();
            // sink_node was pushed in `sinks` (netlist) order already.
            t.sink_node.truncate(self.netlist.sinks(net).len());
            t
        };

        let home = self.home[net.index()];
        let sink_caps: Vec<f64> = self
            .netlist
            .sinks(net)
            .iter()
            .map(|&p| self.netlist.pin(p).cap_ff)
            .collect();
        let sink_elmore_ps = tree.elmore_to_sinks_ps(&sink_caps);
        let total_cap_ff = tree.wire_cap_ff() + sink_caps.iter().sum::<f64>();
        Ok(NetRoute {
            net,
            wirelength_um: tree.wirelength_um(&self.grid),
            f2f_crossings: tree.f2f_crossings(),
            is_mls: home.is_some_and(|h| tree.uses_other_tier(&self.grid, h)),
            total_cap_ff,
            sink_elmore_ps,
            overflowed: false,
            pattern_sinks,
            tree,
        })
    }

    /// Multi-source A* from the tree to one sink.
    #[allow(clippy::too_many_arguments)]
    fn astar(
        &self,
        scratch: &mut RouteScratch,
        net: NetId,
        ov: MlsOverride,
        exclude: Option<&ExcludedUsage>,
        sources: &[u32],
        target: u32,
        max_expansions: usize,
    ) -> Option<Vec<u32>> {
        scratch.ensure(self.grid.node_count());
        // Injected-fault seam: pretend the budget is already exhausted,
        // forcing the maze → pattern fallback for this sink.
        if gnnmls_faults::fire(gnnmls_faults::FaultSite::RouteBudgetExhausted) {
            return None;
        }
        let (tx, ty, tz) = self.grid.coords(target);
        let h = |x: usize, y: usize, z: usize| -> f32 {
            (x.abs_diff(tx) + y.abs_diff(ty)) as f32 * self.min_wire_cost
                + z.abs_diff(tz) as f32 * self.cfg.via_cost as f32
        };
        let mut heap = BinaryHeap::new();
        for &s in sources {
            let (x, y, z) = self.grid.coords(s);
            scratch.set(s, 0.0, u32::MAX);
            heap.push(HeapEntry {
                f: h(x, y, z),
                g: 0.0,
                node: s,
            });
        }

        // Expansions accumulate in a local and flush to the obs counter
        // once per search — the hot loop never touches shared state.
        ASTAR_SEARCHES.inc();
        let mut expansions = 0usize;
        let flush = |expansions: usize| ASTAR_EXPANSIONS.add(expansions as u64);
        while let Some(HeapEntry { g, node, .. }) = heap.pop() {
            if g > scratch.dist[node as usize] + 1e-6 && scratch.seen(node) {
                continue;
            }
            if node == target {
                flush(expansions);
                return Some(self.backtrack(scratch, node));
            }
            expansions += 1;
            if expansions > max_expansions {
                flush(expansions);
                return None;
            }
            let (x, y, z) = self.grid.coords(node);
            let layer = &self.grid.layers[z];

            let consider = |nx_: usize,
                            ny_: usize,
                            nz_: usize,
                            cost: f32,
                            scratch: &mut RouteScratch,
                            heap: &mut BinaryHeap<HeapEntry>| {
                if !self.allowed(net, ov, nx_, ny_, nz_) {
                    return;
                }
                let nnode = self.grid.node(nx_, ny_, nz_);
                let ng = g + cost;
                if !scratch.seen(nnode) || ng < scratch.dist[nnode as usize] - 1e-6 {
                    scratch.set(nnode, ng, node);
                    heap.push(HeapEntry {
                        f: ng + h(nx_, ny_, nz_),
                        g: ng,
                        node: nnode,
                    });
                }
            };

            // In-layer moves along the preferred direction.
            match layer.dir {
                gnnmls_netlist::tech::RouteDir::Horizontal => {
                    if x + 1 < self.grid.nx {
                        let c = self.wire_cost(z, x, y, true, exclude);
                        consider(x + 1, y, z, c, scratch, &mut heap);
                    }
                    if x > 0 {
                        let c = self.wire_cost(z, x - 1, y, true, exclude);
                        consider(x - 1, y, z, c, scratch, &mut heap);
                    }
                }
                gnnmls_netlist::tech::RouteDir::Vertical => {
                    if y + 1 < self.grid.ny {
                        let c = self.wire_cost(z, x, y, false, exclude);
                        consider(x, y + 1, z, c, scratch, &mut heap);
                    }
                    if y > 0 {
                        let c = self.wire_cost(z, x, y - 1, false, exclude);
                        consider(x, y - 1, z, c, scratch, &mut heap);
                    }
                }
            }
            // Via moves.
            if z + 1 < self.grid.nz() {
                let c = self.via_cost(z, x, y, exclude);
                consider(x, y, z + 1, c, scratch, &mut heap);
            }
            if z > 0 {
                let c = self.via_cost(z - 1, x, y, exclude);
                consider(x, y, z - 1, c, scratch, &mut heap);
            }
        }
        flush(expansions);
        None
    }

    fn backtrack(&self, scratch: &RouteScratch, target: u32) -> Vec<u32> {
        let mut path = vec![target];
        let mut cur = target;
        while scratch.came[cur as usize] != u32::MAX {
            cur = scratch.came[cur as usize];
            path.push(cur);
        }
        path.reverse();
        path
    }

    /// Own-die L-shaped pattern route used when A* exhausts its budget.
    fn fallback_path(
        &self,
        builder: &RouteTreeBuilder<'_>,
        target: u32,
    ) -> Result<Vec<u32>, RouteError> {
        let root = builder.grid_nodes()[0];
        let (x0, y0, z0) = self.grid.coords(root);
        let (x1, y1, z1) = self.grid.coords(target);
        let from_tier = self.grid.tier_of_z(z0);
        // Safe H/V layers near the from-die's pin layer (never confiscated
        // by region sharing, which only takes bond-adjacent metals).
        let (zr0, zr1) = self.grid.tier_z_range(from_tier);
        let zs: Vec<usize> = if from_tier == Tier::Logic {
            (zr0..=zr1).collect()
        } else {
            (zr0..=zr1).rev().collect()
        };
        let no_layer = RouteError::NoPatternLayer { tier: from_tier };
        let hz = *zs
            .iter()
            .find(|&&z| self.grid.layers[z].dir == gnnmls_netlist::tech::RouteDir::Horizontal)
            .ok_or(no_layer.clone())?;
        let vz = *zs
            .iter()
            .find(|&&z| self.grid.layers[z].dir == gnnmls_netlist::tech::RouteDir::Vertical)
            .ok_or(no_layer)?;

        let grid = &self.grid;
        let mut path = vec![root];
        let mut cur = (x0, y0, z0);
        let push = |path: &mut Vec<u32>, p: (usize, usize, usize)| {
            path.push(grid.node(p.0, p.1, p.2));
        };
        let step_z = |path: &mut Vec<u32>, cur: &mut (usize, usize, usize), to_z: usize| {
            while cur.2 != to_z {
                cur.2 = if cur.2 < to_z { cur.2 + 1 } else { cur.2 - 1 };
                push(path, *cur);
            }
        };
        // Horizontal leg.
        step_z(&mut path, &mut cur, hz);
        while cur.0 != x1 {
            cur.0 = if cur.0 < x1 { cur.0 + 1 } else { cur.0 - 1 };
            push(&mut path, cur);
        }
        // Vertical leg.
        step_z(&mut path, &mut cur, vz);
        while cur.1 != y1 {
            cur.1 = if cur.1 < y1 { cur.1 + 1 } else { cur.1 - 1 };
            push(&mut path, cur);
        }
        // Final via stack to the sink (crosses the bond for 3D nets).
        step_z(&mut path, &mut cur, z1);
        Ok(path)
    }

    // ---- costs, capacity, access ----

    #[inline]
    fn congestion_factor(&self, usage: u16, cap: u16) -> f32 {
        let cap = cap.max(1);
        if usage < cap {
            let r = f32::from(usage) / f32::from(cap);
            1.0 + (self.cfg.congestion_weight * self.congestion_scale) as f32 * r * r * r * r
        } else {
            (self.cfg.overflow_penalty * self.congestion_scale) as f32 * f32::from(usage - cap + 2)
        }
    }

    #[inline]
    fn edge_idx(&self, z: usize, x: usize, y: usize) -> usize {
        (z * self.grid.ny + y) * self.grid.nx + x
    }

    /// Cost of the wire edge leaving `(x, y, z)`; for horizontal layers
    /// `x` is the min-x endpoint, for vertical layers `y` is min-y.
    #[inline]
    fn wire_cost(
        &self,
        z: usize,
        x_min: usize,
        y_min: usize,
        horizontal: bool,
        exclude: Option<&ExcludedUsage>,
    ) -> f32 {
        let idx = self.edge_idx(z, x_min, y_min);
        let usage = if horizontal {
            let u = self.usage_h[idx];
            exclude.map_or(u, |e| e.sub_h(idx, u))
        } else {
            let u = self.usage_v[idx];
            exclude.map_or(u, |e| e.sub_v(idx, u))
        };
        self.layer_cost[z] * self.congestion_factor(usage, self.grid.layers[z].capacity)
    }

    #[inline]
    fn via_cost(&self, z_low: usize, x: usize, y: usize, exclude: Option<&ExcludedUsage>) -> f32 {
        if self.grid.is_f2f_via(z_low) {
            let idx = y * self.grid.nx + x;
            let u = self.usage_f2f[idx];
            let usage = exclude.map_or(u, |e| e.sub_f2f(idx, u));
            self.cfg.f2f_cost as f32 * self.congestion_factor(usage, self.grid.f2f_capacity)
        } else {
            self.cfg.via_cost as f32
        }
    }

    fn allowed(&self, net: NetId, ov: MlsOverride, x: usize, y: usize, z: usize) -> bool {
        let Some(home) = self.home[net.index()] else {
            return true;
        };
        let z_tier = self.grid.tier_of_z(z);
        match ov {
            MlsOverride::Allow => true,
            MlsOverride::Deny => z_tier == home,
            MlsOverride::UsePolicy => match &self.policy {
                MlsPolicy::Disabled => z_tier == home,
                MlsPolicy::PerNet(flags) => z_tier == home || flags[net.index()],
                MlsPolicy::SotaRegionSharing { .. } => {
                    // Defensive: SOTA without a share map can share
                    // nothing, which is the home-die-only rule.
                    let Some(map) = self.share.as_ref() else {
                        return z_tier == home;
                    };
                    let donor_top = |tier: Tier| -> [usize; 2] {
                        let ll = self.grid.logic_layers;
                        match tier {
                            Tier::Logic => [ll - 1, ll.saturating_sub(2)],
                            Tier::Memory => [ll, (ll + 1).min(self.grid.nz() - 1)],
                        }
                    };
                    if z_tier == home {
                        match map.shared_to(x, y) {
                            Some(b) if b != home => !donor_top(home).contains(&z),
                            _ => true,
                        }
                    } else {
                        map.shared_to(x, y) == Some(home) && donor_top(z_tier).contains(&z)
                    }
                }
            },
        }
    }

    fn apply_usage(&mut self, tree: &RouteTree, delta: i32) {
        for i in 1..tree.nodes.len() {
            let a = tree.nodes[tree.parent[i] as usize];
            let b = tree.nodes[i];
            let (xa, ya, za) = self.grid.coords(a);
            let (xb, yb, zb) = self.grid.coords(b);
            if za == zb {
                if ya == yb {
                    let idx = self.edge_idx(za, xa.min(xb), ya);
                    self.usage_h[idx] = add_u16(self.usage_h[idx], delta);
                } else {
                    let idx = self.edge_idx(za, xa, ya.min(yb));
                    self.usage_v[idx] = add_u16(self.usage_v[idx], delta);
                }
            } else if self.grid.is_f2f_via(za.min(zb)) {
                let idx = ya * self.grid.nx + xa;
                self.usage_f2f[idx] = add_u16(self.usage_f2f[idx], delta);
            }
        }
    }

    fn rip_up(&mut self, net: NetId) {
        if let Some(r) = self.routes[net.index()].take() {
            self.apply_usage(&r.tree, -1);
        }
    }

    fn tree_overflows(&self, tree: &RouteTree) -> bool {
        for i in 1..tree.nodes.len() {
            let a = tree.nodes[tree.parent[i] as usize];
            let b = tree.nodes[i];
            let (xa, ya, za) = self.grid.coords(a);
            let (xb, yb, zb) = self.grid.coords(b);
            if za == zb {
                let cap = self.grid.layers[za].capacity;
                let u = if ya == yb {
                    self.usage_h[self.edge_idx(za, xa.min(xb), ya)]
                } else {
                    self.usage_v[self.edge_idx(za, xa, ya.min(yb))]
                };
                if u > cap {
                    return true;
                }
            } else if self.grid.is_f2f_via(za.min(zb))
                && self.usage_f2f[ya * self.grid.nx + xa] > self.grid.f2f_capacity
            {
                return true;
            }
        }
        false
    }
}

fn add_u16(v: u16, delta: i32) -> u16 {
    (i32::from(v) + delta).max(0) as u16
}

/// One-shot convenience: route a placed design under a policy.
///
/// Returns the route database and the grid it was routed on.
///
/// # Errors
///
/// Returns [`RouteError`] if the placement does not match the netlist.
pub fn route_design(
    netlist: &Netlist,
    placement: &Placement,
    tech: &TechConfig,
    policy: MlsPolicy,
    cfg: RouteConfig,
) -> Result<(RouteDb, RoutingGrid), RouteError> {
    let mut router = Router::new(netlist, placement, tech, policy, cfg)?;
    router.route_all()?;
    let db = router.db()?;
    Ok((db, router.grid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
    use gnnmls_netlist::tech::TechConfig;
    use gnnmls_phys::{place, PlaceConfig};

    fn routed(policy: MlsPolicy) -> (gnnmls_netlist::Netlist, RouteDb, RoutingGrid) {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
        let (db, grid) = route_design(
            &d.netlist,
            &p,
            &tech,
            policy,
            RouteConfig {
                target_gcells: 24,
                ..RouteConfig::default()
            },
        )
        .unwrap();
        (d.netlist, db, grid)
    }

    #[test]
    fn every_net_gets_a_route_with_all_sinks() {
        let (netlist, db, _) = routed(MlsPolicy::Disabled);
        assert_eq!(db.nets.len(), netlist.net_count());
        for net in netlist.net_ids() {
            let r = db.route(net);
            assert_eq!(r.tree.sink_node.len(), netlist.sinks(net).len());
            assert_eq!(r.sink_elmore_ps.len(), netlist.sinks(net).len());
            assert!(r.total_cap_ff > 0.0, "sink pins always load the driver");
            for &d in &r.sink_elmore_ps {
                assert!(d.is_finite() && d >= 0.0);
            }
        }
    }

    #[test]
    fn no_mls_policy_never_produces_mls_nets() {
        let (netlist, db, grid) = routed(MlsPolicy::Disabled);
        assert_eq!(db.summary.mls_net_count, 0);
        // 2D nets stay on their die.
        for net in netlist.net_ids() {
            if let Some(home) = netlist.net_tier(net) {
                assert!(
                    !db.route(net).tree.uses_other_tier(&grid, home),
                    "net {net} escaped its die under Disabled"
                );
            }
        }
        // 3D nets still cross.
        let crossing = db.bond_crossing_nets().count();
        assert!(crossing > 0, "macro links must cross the bond");
    }

    #[test]
    fn sota_produces_mls_nets() {
        let (_, db, _) = routed(MlsPolicy::sota());
        assert!(
            db.summary.mls_net_count > 0,
            "region sharing should push some nets across"
        );
    }

    #[test]
    fn per_net_policy_limits_mls_to_selected_nets() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let netlist = &d.netlist;
        let p = place(netlist, &PlaceConfig::default()).unwrap();
        // Select the 20 longest 2D nets.
        let mut two_d: Vec<NetId> = netlist
            .net_ids()
            .filter(|&n| netlist.net_tier(n).is_some())
            .collect();
        two_d.sort_by(|&a, &b| net_hpwl_um(netlist, &p, b).total_cmp(&net_hpwl_um(netlist, &p, a)));
        let selected: Vec<NetId> = two_d.iter().copied().take(20).collect();
        let policy = MlsPolicy::per_net_from(netlist, selected.iter().copied());
        let (db, _) = route_design(netlist, &p, &tech, policy, RouteConfig::default()).unwrap();
        for r in db.mls_nets() {
            assert!(
                selected.contains(&r.net),
                "non-selected net {} used MLS",
                r.net
            );
        }
    }

    #[test]
    fn what_if_leaves_state_untouched() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
        let mut router = Router::new(
            &d.netlist,
            &p,
            &tech,
            MlsPolicy::Disabled,
            RouteConfig::default(),
        )
        .unwrap();
        router.route_all().unwrap();
        let before = router.db().unwrap();
        // What-if every 2D net with MLS allowed.
        let nets: Vec<NetId> = d
            .netlist
            .net_ids()
            .filter(|&n| d.netlist.net_tier(n).is_some())
            .take(50)
            .collect();
        let mut scratch = router.scratch();
        for n in nets {
            let _ = router.what_if(&mut scratch, n, MlsOverride::Allow);
        }
        let after = router.db().unwrap();
        assert_eq!(before.summary, after.summary);
        for (a, b) in before.nets.iter().zip(after.nets.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn restored_router_answers_what_if_bit_identically() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
        let cfg = RouteConfig {
            target_gcells: 24,
            ..RouteConfig::default()
        };
        let mut cold =
            Router::new(&d.netlist, &p, &tech, MlsPolicy::Disabled, cfg.clone()).unwrap();
        cold.route_all().unwrap();
        let db = cold.db().unwrap();
        let scale = cold.congestion_scale();

        let mut warm = Router::new(&d.netlist, &p, &tech, MlsPolicy::Disabled, cfg).unwrap();
        warm.restore_routes(&db, scale).unwrap();
        assert_eq!(warm.congestion_scale(), scale);
        assert_eq!(warm.db().unwrap(), db, "restored DB is byte-identical");

        let nets: Vec<NetId> = d
            .netlist
            .net_ids()
            .filter(|&n| d.netlist.net_tier(n).is_some())
            .take(40)
            .collect();
        let mut sc = cold.scratch();
        let mut sw = warm.scratch();
        for n in nets {
            let a = cold.what_if(&mut sc, n, MlsOverride::Allow);
            let b = warm.what_if(&mut sw, n, MlsOverride::Allow);
            match (a, b) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "what-if diverged on {n}"),
                (Err(_), Err(_)) => {}
                (a, b) => panic!("what-if outcome diverged on {n}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn budgeted_what_if_degrades_not_hangs() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
        let mut router = Router::new(
            &d.netlist,
            &p,
            &tech,
            MlsPolicy::Disabled,
            RouteConfig {
                target_gcells: 24,
                ..RouteConfig::default()
            },
        )
        .unwrap();
        router.route_all().unwrap();
        let net = d
            .netlist
            .net_ids()
            .find(|&n| d.netlist.net_tier(n).is_some())
            .unwrap();
        let mut scratch = router.scratch();
        // Full budget matches plain what_if bit-for-bit.
        let full = router
            .what_if(&mut scratch, net, MlsOverride::Deny)
            .unwrap();
        let budgeted = router
            .what_if_budgeted(
                &mut scratch,
                net,
                MlsOverride::Deny,
                router.config().max_expansions,
            )
            .unwrap();
        assert_eq!(full, budgeted);
        // A starved budget degrades to the pattern fallback instead of
        // searching forever.
        let starved = router
            .what_if_budgeted(&mut scratch, net, MlsOverride::Deny, 1)
            .unwrap();
        assert!(starved.pattern_sinks > 0, "starved budget must fall back");
    }

    #[test]
    fn commit_reroute_changes_the_route() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
        let mut router = Router::new(
            &d.netlist,
            &p,
            &tech,
            MlsPolicy::Disabled,
            RouteConfig::default(),
        )
        .unwrap();
        router.route_all().unwrap();
        // Find a 2D logic net that would cross under Allow.
        let mut scratch = router.scratch();
        let candidate = d.netlist.net_ids().find(|&n| {
            d.netlist.net_tier(n) == Some(Tier::Logic)
                && router
                    .what_if(&mut scratch, n, MlsOverride::Allow)
                    .unwrap()
                    .is_mls
        });
        if let Some(n) = candidate {
            assert!(router.commit_reroute(n, MlsOverride::Allow).unwrap());
            assert!(router.db().unwrap().route(n).is_mls);
        }
    }

    #[test]
    fn routing_is_deterministic() {
        let (_, a, _) = routed(MlsPolicy::Disabled);
        let (_, b, _) = routed(MlsPolicy::Disabled);
        assert_eq!(a.summary, b.summary);
    }

    #[test]
    fn what_if_overlay_matches_detached_reroute() {
        // The `&self` what-if (usage-exclusion overlay) must produce the
        // exact route of the historical mutate-and-restore detached
        // re-route, inlined here against the same router.
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
        let mut router = Router::new(
            &d.netlist,
            &p,
            &tech,
            MlsPolicy::Disabled,
            RouteConfig {
                target_gcells: 24,
                ..RouteConfig::default()
            },
        )
        .unwrap();
        router.route_all().unwrap();
        let mut scratch = router.scratch();
        let nets: Vec<NetId> = d.netlist.net_ids().take(40).collect();
        for net in nets {
            for ov in [MlsOverride::Allow, MlsOverride::Deny] {
                if matches!(ov, MlsOverride::Deny) && d.netlist.net_tier(net).is_none() {
                    continue; // 3D nets cannot be confined to one die
                }
                let got = router.what_if(&mut scratch, net, ov).unwrap();
                // Historical semantics: detach the net, re-route, restore.
                let saved = router.routes[net.index()].take();
                if let Some(r) = &saved {
                    router.apply_usage(&r.tree, -1);
                }
                let expected = router.route_net(net, ov, false).unwrap();
                if let Some(r) = &saved {
                    router.apply_usage(&r.tree, 1);
                }
                router.routes[net.index()] = saved;
                assert_eq!(expected, got, "net {net} ov {ov:?}");
            }
        }
    }

    #[test]
    fn ripup_rounds_identical_across_thread_counts() {
        // A congested config (tiny grid, extra rounds) exercises the
        // speculative parallel rip-up path; every thread count must
        // yield the serial result bit-for-bit.
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
        let route = |threads: usize| {
            let (db, _) = route_design(
                &d.netlist,
                &p,
                &tech,
                MlsPolicy::sota(),
                RouteConfig {
                    target_gcells: 16,
                    ripup_rounds: 3,
                    threads,
                    ..RouteConfig::default()
                },
            )
            .unwrap();
            db
        };
        let serial = route(1);
        for threads in [2, 4, 0] {
            let par = route(threads);
            assert_eq!(serial.summary, par.summary, "threads={threads}");
            for (a, b) in serial.nets.iter().zip(par.nets.iter()) {
                assert_eq!(a, b, "threads={threads}");
            }
        }
    }

    #[test]
    fn summary_utilization_is_sane() {
        let (_, db, grid) = routed(MlsPolicy::sota());
        assert_eq!(db.summary.layer_utilization.len(), grid.nz());
        for &u in &db.summary.layer_utilization {
            assert!(u >= 0.0 && u.is_finite());
        }
        assert!(db.summary.total_wirelength_m > 0.0);
        assert!(db.summary.f2f_utilization >= 0.0);
    }

    #[test]
    fn placement_mismatch_is_reported() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let fp = gnnmls_phys::Floorplan {
            width_um: 10.0,
            height_um: 10.0,
        };
        let p = Placement::from_locations(vec![gnnmls_phys::place::Point::new(0.0, 0.0)], fp);
        assert!(matches!(
            Router::new(
                &d.netlist,
                &p,
                &tech,
                MlsPolicy::Disabled,
                RouteConfig::default()
            ),
            Err(RouteError::PlacementMismatch { .. })
        ));
    }

    #[test]
    fn db_before_routing_is_a_typed_error() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
        let router = Router::new(
            &d.netlist,
            &p,
            &tech,
            MlsPolicy::Disabled,
            RouteConfig::default(),
        )
        .unwrap();
        assert!(matches!(
            router.db(),
            Err(RouteError::Incomplete { missing }) if missing == d.netlist.net_count()
        ));
    }

    #[test]
    fn tiny_expansion_budget_degrades_to_pattern_routes() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
        let (db, _) = route_design(
            &d.netlist,
            &p,
            &tech,
            MlsPolicy::Disabled,
            RouteConfig {
                max_expansions: 2,
                ..RouteConfig::default()
            },
        )
        .unwrap();
        assert!(
            db.summary.pattern_fallback_sinks > 0,
            "a 2-expansion budget must force pattern fallbacks"
        );
        assert!(db.summary.pattern_fallback_nets > 0);
        // Every net still connects every sink.
        for net in d.netlist.net_ids() {
            assert_eq!(
                db.route(net).tree.sink_node.len(),
                d.netlist.sinks(net).len()
            );
        }
    }

    #[test]
    fn injected_budget_exhaustion_is_reported_not_fatal() {
        use gnnmls_faults::{install, FaultPlan, FaultSite};
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
        let guard = install(&FaultPlan::single(FaultSite::RouteBudgetExhausted, 5));
        let (db, _) = route_design(
            &d.netlist,
            &p,
            &tech,
            MlsPolicy::Disabled,
            RouteConfig::default(),
        )
        .unwrap();
        drop(guard);
        assert!(
            db.summary.pattern_fallback_sinks >= 1,
            "injected exhaustion must surface as a recorded downgrade"
        );
    }

    /// A deliberately congested design: 48 two-pin nets pinched through
    /// the same pair of g-cells, far more demand than any layer stack
    /// can carry, so rip-up rounds are guaranteed to find victims.
    fn pinched_design() -> (gnnmls_netlist::Netlist, gnnmls_phys::Placement) {
        use gnnmls_netlist::tech::TechNode;
        use gnnmls_netlist::{CellLibrary, NetlistBuilder, Tier};
        use gnnmls_phys::place::Point;
        use gnnmls_phys::{Floorplan, Placement};

        let lib = CellLibrary::for_node(&TechNode::n16());
        let mut b = NetlistBuilder::new("pinch");
        let mut locs = Vec::new();
        for i in 0..48 {
            let a = b
                .add_cell(format!("a{i}"), lib.expect("PI"), Tier::Logic)
                .unwrap();
            let z = b
                .add_cell(format!("z{i}"), lib.expect("PO"), Tier::Logic)
                .unwrap();
            let n = b.add_net(format!("n{i}")).unwrap();
            b.connect_output(n, a, 0).unwrap();
            b.connect_input(n, z, 0).unwrap();
            locs.push(Point::new(2.0, 20.0));
            locs.push(Point::new(38.0, 20.0));
        }
        let netlist = b.finish().unwrap();
        let fp = Floorplan {
            width_um: 40.0,
            height_um: 40.0,
        };
        (netlist, Placement::from_locations(locs, fp))
    }

    #[test]
    fn injected_unroutable_net_is_isolated_in_ripup() {
        use gnnmls_faults::{install, FaultPlan, FaultSite};
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let (netlist, placement) = pinched_design();
        // Every injected reroute failure must restore the victim's old
        // route and be counted, not abort the round.
        let guard = install(&FaultPlan::single(FaultSite::UnroutableNet, 3));
        let (db, _) = route_design(
            &netlist,
            &placement,
            &tech,
            MlsPolicy::Disabled,
            RouteConfig {
                target_gcells: 64,
                ripup_rounds: 2,
                ..RouteConfig::default()
            },
        )
        .unwrap();
        drop(guard);
        assert_eq!(
            db.summary.isolated_failures, 3,
            "all injected reroute failures must be isolated and counted"
        );
        for net in netlist.net_ids() {
            assert_eq!(
                db.route(net).tree.sink_node.len(),
                netlist.sinks(net).len(),
                "isolated nets keep their previous complete route"
            );
        }
    }

    #[test]
    fn ripup_victims_survive_reroute_without_faults() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let (netlist, placement) = pinched_design();
        let (db, _) = route_design(
            &netlist,
            &placement,
            &tech,
            MlsPolicy::Disabled,
            RouteConfig {
                target_gcells: 64,
                ripup_rounds: 2,
                ..RouteConfig::default()
            },
        )
        .unwrap();
        assert_eq!(db.summary.isolated_failures, 0);
        // Demand exceeds physical capacity, so overflow survives rip-up;
        // what matters is that every net still connects.
        assert!(db.summary.overflowed_nets > 0);
        for net in netlist.net_ids() {
            assert_eq!(db.route(net).tree.sink_node.len(), netlist.sinks(net).len());
        }
    }

    #[test]
    fn commit_reroute_isolates_injected_failure() {
        use gnnmls_faults::{install, FaultPlan, FaultSite};
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
        let mut router = Router::new(
            &d.netlist,
            &p,
            &tech,
            MlsPolicy::Disabled,
            RouteConfig::default(),
        )
        .unwrap();
        router.route_all().unwrap();
        let net = d.netlist.net_ids().next().unwrap();
        let before = router.db().unwrap().route(net).clone();
        let guard = install(&FaultPlan::single(FaultSite::UnroutableNet, 1));
        let applied = router.commit_reroute(net, MlsOverride::Allow).unwrap();
        drop(guard);
        assert!(!applied, "injected failure must keep the old route");
        let after = router.db().unwrap();
        assert_eq!(&before, after.route(net));
        assert_eq!(after.summary.isolated_failures, 1);
    }

    #[test]
    fn builder_round_trips_and_validates() {
        // Defaults pass validation and equal Default.
        assert_eq!(
            RouteConfig::builder().build().unwrap(),
            RouteConfig::default()
        );
        // Setters land on the right fields.
        let cfg = RouteConfig::builder()
            .target_gcells(24)
            .ripup_rounds(3)
            .max_expansions(1000)
            .threads(2)
            .via_cost(2.5)
            .build()
            .unwrap();
        assert_eq!(cfg.target_gcells, 24);
        assert_eq!(cfg.ripup_rounds, 3);
        assert_eq!(cfg.max_expansions, 1000);
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.via_cost, 2.5);
        // to_builder reproduces the source config.
        assert_eq!(cfg.to_builder().build().unwrap(), cfg);
        assert_eq!(cfg.clone().with_threads(7).threads, 7);
        // Each invalid field is named in the error.
        let cases: [(RouteConfigBuilder, &str); 5] = [
            (RouteConfig::builder().target_gcells(1), "target_gcells"),
            (
                RouteConfig::builder().pdn_top_util_logic(1.0),
                "pdn_top_util_logic",
            ),
            (
                RouteConfig::builder().pdn_top_util_memory(-0.1),
                "pdn_top_util_memory",
            ),
            (RouteConfig::builder().via_cost(f64::NAN), "via_cost"),
            (RouteConfig::builder().max_expansions(0), "max_expansions"),
        ];
        for (builder, field) in cases {
            let err = builder.build().unwrap_err();
            assert_eq!(err.field, field);
            assert!(err.to_string().contains(field));
        }
    }

    #[test]
    fn routing_records_expansion_metrics() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
        let searches_before = super::ASTAR_SEARCHES.get();
        let expansions_before = super::ASTAR_EXPANSIONS.get();
        let (db, _) = route_design(
            &d.netlist,
            &p,
            &tech,
            MlsPolicy::Disabled,
            RouteConfig::default(),
        )
        .unwrap();
        assert!(!db.nets.is_empty());
        assert!(
            super::ASTAR_SEARCHES.get() > searches_before,
            "routing must count searches"
        );
        assert!(
            super::ASTAR_EXPANSIONS.get() > expansions_before,
            "routing must count expansions"
        );
    }
}

//! Route trees and Elmore-ready RC extraction.
//!
//! The router grows one tree per net: node 0 is the driver's grid node and
//! every subsequent path attaches to an existing tree node. Each tree edge
//! carries the R/C of the grid edge it traverses (wire segment, inter-layer
//! via, or F2F bond pad), so Elmore delays fall out of two linear passes.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use gnnmls_netlist::tech::{F2fParams, VIA_C_FF, VIA_R_KOHM};
use gnnmls_netlist::Tier;

use crate::grid::RoutingGrid;

/// A routed net's tree over grid nodes.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RouteTree {
    /// Grid node per tree node; index 0 is the root (driver).
    pub nodes: Vec<u32>,
    /// Parent tree-node index (`parent[0] == 0`).
    pub parent: Vec<u32>,
    /// Resistance of the edge from the parent, kΩ.
    pub edge_r: Vec<f64>,
    /// Capacitance of the edge from the parent, fF.
    pub edge_c: Vec<f64>,
    /// Whether the edge from the parent crosses the F2F bond.
    pub edge_f2f: Vec<bool>,
    /// Tree-node index per sink, aligned with `netlist.sinks(net)`.
    pub sink_node: Vec<u32>,
}

impl RouteTree {
    /// Total wire + via + pad capacitance of the tree, fF.
    pub fn wire_cap_ff(&self) -> f64 {
        self.edge_c.iter().sum()
    }

    /// Number of F2F bond crossings.
    pub fn f2f_crossings(&self) -> u32 {
        self.edge_f2f.iter().filter(|&&b| b).count() as u32
    }

    /// Routed wirelength in µm (in-layer edges only).
    pub fn wirelength_um(&self, grid: &RoutingGrid) -> f64 {
        let mut wl = 0.0;
        for i in 1..self.nodes.len() {
            let (_, _, za) = grid.coords(self.nodes[i]);
            let (_, _, zb) = grid.coords(self.nodes[self.parent[i] as usize]);
            if za == zb {
                wl += grid.gcell_um;
            }
        }
        wl
    }

    /// Bitmask of die-local metal indices used per tier (bit `m-1` set if
    /// the tree touches `Mm` of that tier): `(logic_mask, memory_mask)`.
    pub fn used_layers(&self, grid: &RoutingGrid) -> (u16, u16) {
        let mut masks = [0u16; 2];
        for &n in &self.nodes {
            let (_, _, z) = grid.coords(n);
            let layer = &grid.layers[z];
            masks[layer.tier.index()] |= 1 << (layer.metal - 1);
        }
        (masks[0], masks[1])
    }

    /// Whether the tree occupies any z-slice outside `home`'s die.
    pub fn uses_other_tier(&self, grid: &RoutingGrid, home: Tier) -> bool {
        self.nodes.iter().any(|&n| {
            let (_, _, z) = grid.coords(n);
            grid.tier_of_z(z) != home
        })
    }

    /// Elmore delay from the driver output to each sink, ps.
    ///
    /// `sink_pin_cap_ff[i]` is the pin capacitance of sink `i`. Edge
    /// capacitance is split half/half between its endpoints (π-model).
    /// The returned delays exclude the driver's own drive resistance; the
    /// timer adds `R_drv × total_cap` separately.
    ///
    /// # Panics
    ///
    /// Panics if `sink_pin_cap_ff.len() != self.sink_node.len()`.
    pub fn elmore_to_sinks_ps(&self, sink_pin_cap_ff: &[f64]) -> Vec<f64> {
        assert_eq!(
            sink_pin_cap_ff.len(),
            self.sink_node.len(),
            "one pin cap per sink"
        );
        let n = self.nodes.len();
        if n == 0 {
            return vec![0.0; sink_pin_cap_ff.len()];
        }
        // Node capacitance: half of each incident edge + sink pin caps.
        let mut node_cap = vec![0.0f64; n];
        for i in 1..n {
            node_cap[i] += self.edge_c[i] / 2.0;
            node_cap[self.parent[i] as usize] += self.edge_c[i] / 2.0;
        }
        for (s, &cap) in self.sink_node.iter().zip(sink_pin_cap_ff) {
            node_cap[*s as usize] += cap;
        }
        // Subtree capacitance (children always have larger indices).
        let mut sub = node_cap;
        for i in (1..n).rev() {
            let p = self.parent[i] as usize;
            let c = sub[i];
            sub[p] += c;
        }
        // Elmore accumulation root-down.
        let mut delay = vec![0.0f64; n];
        for i in 1..n {
            let p = self.parent[i] as usize;
            delay[i] = delay[p] + self.edge_r[i] * sub[i];
        }
        self.sink_node.iter().map(|&s| delay[s as usize]).collect()
    }
}

/// Incremental builder used by the router.
#[derive(Debug)]
pub struct RouteTreeBuilder<'a> {
    grid: &'a RoutingGrid,
    f2f: &'a F2fParams,
    tree: RouteTree,
    index_of: HashMap<u32, u32>,
}

impl<'a> RouteTreeBuilder<'a> {
    /// Starts a tree rooted at the driver's grid node.
    pub fn new(grid: &'a RoutingGrid, f2f: &'a F2fParams, root: u32) -> Self {
        let tree = RouteTree {
            nodes: vec![root],
            parent: vec![0],
            edge_r: vec![0.0],
            edge_c: vec![0.0],
            edge_f2f: vec![false],
            sink_node: Vec::new(),
        };
        let mut index_of = HashMap::new();
        index_of.insert(root, 0);
        Self {
            grid,
            f2f,
            tree,
            index_of,
        }
    }

    /// Whether a grid node is already part of the tree.
    pub fn contains(&self, grid_node: u32) -> bool {
        self.index_of.contains_key(&grid_node)
    }

    /// All grid nodes currently in the tree (A* source set).
    pub fn grid_nodes(&self) -> &[u32] {
        &self.tree.nodes
    }

    /// Attaches a path whose first element is an existing tree node and
    /// whose remaining elements are consecutive grid neighbors.
    ///
    /// # Panics
    ///
    /// Panics if `path[0]` is not in the tree or consecutive elements are
    /// not grid neighbors.
    pub fn add_path(&mut self, path: &[u32]) {
        assert!(
            self.contains(path[0]),
            "path must start at an existing tree node"
        );
        let mut prev_idx = self.index_of[&path[0]];
        for w in path.windows(2) {
            let (a, b) = (w[0], w[1]);
            if let Some(&existing) = self.index_of.get(&b) {
                prev_idx = existing;
                continue;
            }
            let (r, c, f2f) = self.edge_rc(a, b);
            let idx = self.tree.nodes.len() as u32;
            self.tree.nodes.push(b);
            self.tree.parent.push(prev_idx);
            self.tree.edge_r.push(r);
            self.tree.edge_c.push(c);
            self.tree.edge_f2f.push(f2f);
            self.index_of.insert(b, idx);
            prev_idx = idx;
        }
    }

    /// Records a sink at a grid node already in the tree.
    ///
    /// Returns `false` (without recording anything) if the node was
    /// never routed into the tree — the caller's signal that the net is
    /// unroutable as built.
    #[must_use]
    pub fn mark_sink(&mut self, grid_node: u32) -> bool {
        match self.index_of.get(&grid_node) {
            Some(&idx) => {
                self.tree.sink_node.push(idx);
                true
            }
            None => false,
        }
    }

    /// Finalizes the tree.
    pub fn finish(self) -> RouteTree {
        self.tree
    }

    /// R/C/F2F of the grid edge a→b.
    fn edge_rc(&self, a: u32, b: u32) -> (f64, f64, bool) {
        let (xa, ya, za) = self.grid.coords(a);
        let (xb, yb, zb) = self.grid.coords(b);
        if za == zb {
            debug_assert!(xa.abs_diff(xb) + ya.abs_diff(yb) == 1, "grid neighbors");
            let l = &self.grid.layers[za];
            (
                l.r_kohm_per_um * self.grid.gcell_um,
                l.c_ff_per_um * self.grid.gcell_um,
                false,
            )
        } else {
            debug_assert!(xa == xb && ya == yb && za.abs_diff(zb) == 1, "via move");
            if self.grid.is_f2f_via(za.min(zb)) {
                (self.f2f.r_kohm, self.f2f.c_ff, true)
            } else {
                (VIA_R_KOHM, VIA_C_FF, false)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmls_netlist::tech::TechConfig;
    use gnnmls_phys::Floorplan;

    fn grid() -> RoutingGrid {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let fp = Floorplan {
            width_um: 80.0,
            height_um: 80.0,
        };
        RoutingGrid::build(&fp, &tech, 16, 0.0, 0.0)
    }

    #[test]
    fn straight_wire_elmore_matches_hand_calc() {
        let g = grid();
        let f2f = F2fParams::default();
        let root = g.node(0, 0, 0);
        let mut b = RouteTreeBuilder::new(&g, &f2f, root);
        // Two M1 segments east.
        let p = vec![root, g.node(1, 0, 0), g.node(2, 0, 0)];
        b.add_path(&p);
        assert!(b.mark_sink(g.node(2, 0, 0)));
        let t = b.finish();

        let l = &g.layers[0];
        let (r, c) = (l.r_kohm_per_um * g.gcell_um, l.c_ff_per_um * g.gcell_um);
        let pin = 1.5;
        let d = t.elmore_to_sinks_ps(&[pin])[0];
        // Edge 1 sees c/2 (its far half) + c (edge 2) + pin; edge 2 sees
        // c/2 + pin.
        let expect = r * (c / 2.0 + c + pin) + r * (c / 2.0 + pin);
        assert!((d - expect).abs() < 1e-9, "{d} vs {expect}");
        assert!((t.wire_cap_ff() - 2.0 * c).abs() < 1e-12);
        assert_eq!(t.f2f_crossings(), 0);
        assert!((t.wirelength_um(&g) - 2.0 * g.gcell_um).abs() < 1e-12);
    }

    #[test]
    fn branching_tree_delays_are_per_sink() {
        let g = grid();
        let f2f = F2fParams::default();
        let root = g.node(2, 2, 0);
        let mut b = RouteTreeBuilder::new(&g, &f2f, root);
        b.add_path(&[root, g.node(3, 2, 0), g.node(4, 2, 0)]);
        b.add_path(&[g.node(3, 2, 0), g.node(3, 2, 1), g.node(3, 3, 1)]);
        assert!(b.mark_sink(g.node(4, 2, 0)));
        assert!(b.mark_sink(g.node(3, 3, 1)));
        let t = b.finish();
        let d = t.elmore_to_sinks_ps(&[1.0, 1.0]);
        assert_eq!(d.len(), 2);
        assert!(d[0] > 0.0 && d[1] > 0.0);
        // The nearer branch point gives each sink a distinct delay.
        assert_ne!(d[0], d[1]);
    }

    #[test]
    fn f2f_crossing_is_detected_and_costed() {
        let g = grid();
        let f2f = F2fParams::default();
        let bond_low = g.logic_layers - 1;
        let root = g.node(0, 0, bond_low);
        let mut b = RouteTreeBuilder::new(&g, &f2f, root);
        b.add_path(&[root, g.node(0, 0, bond_low + 1)]);
        assert!(b.mark_sink(g.node(0, 0, bond_low + 1)));
        let t = b.finish();
        assert_eq!(t.f2f_crossings(), 1);
        assert!((t.wire_cap_ff() - f2f.c_ff).abs() < 1e-12);
        assert!(t.uses_other_tier(&g, Tier::Logic));
        assert!(t.uses_other_tier(&g, Tier::Memory));
        let (lm, mm) = t.used_layers(&g);
        assert_eq!(lm, 1 << 5, "logic M6");
        assert_eq!(mm, 1 << 5, "memory M6");
        assert_eq!(t.wirelength_um(&g), 0.0, "vias add no lateral length");
    }

    #[test]
    fn single_node_tree_has_zero_delay() {
        let g = grid();
        let f2f = F2fParams::default();
        let root = g.node(1, 1, 0);
        let mut b = RouteTreeBuilder::new(&g, &f2f, root);
        assert!(b.mark_sink(root));
        assert!(b.mark_sink(root));
        let t = b.finish();
        let d = t.elmore_to_sinks_ps(&[1.0, 2.0]);
        assert_eq!(d, vec![0.0, 0.0]);
        assert_eq!(t.wire_cap_ff(), 0.0);
    }

    #[test]
    fn add_path_deduplicates_shared_prefixes() {
        let g = grid();
        let f2f = F2fParams::default();
        let root = g.node(0, 0, 0);
        let mut b = RouteTreeBuilder::new(&g, &f2f, root);
        b.add_path(&[root, g.node(1, 0, 0), g.node(2, 0, 0)]);
        let before = b.grid_nodes().len();
        // Re-adding an already-present path must not duplicate nodes.
        b.add_path(&[root, g.node(1, 0, 0), g.node(2, 0, 0)]);
        assert_eq!(b.grid_nodes().len(), before);
    }

    #[test]
    #[should_panic(expected = "existing tree node")]
    fn detached_path_panics() {
        let g = grid();
        let f2f = F2fParams::default();
        let mut b = RouteTreeBuilder::new(&g, &f2f, g.node(0, 0, 0));
        b.add_path(&[g.node(5, 5, 0), g.node(6, 5, 0)]);
    }
}

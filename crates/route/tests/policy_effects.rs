//! Routing-policy effects that span modules: confiscation really removes
//! capacity, rip-up really reduces overflow, and the fallback path is
//! exercised under a starved expansion budget.

use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
use gnnmls_netlist::tech::TechConfig;
use gnnmls_netlist::Tier;
use gnnmls_phys::{place, PlaceConfig};
use gnnmls_route::{route_design, MlsPolicy, RouteConfig, Router};

fn setup() -> (gnnmls_netlist::Netlist, gnnmls_phys::Placement, TechConfig) {
    let tech = TechConfig::heterogeneous_16_28(6, 6);
    let d = generate_maeri(&MaeriConfig::new(32, 4), &tech).unwrap();
    let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
    (d.netlist, p, tech)
}

#[test]
fn starved_expansion_budget_still_routes_everything() {
    let (netlist, placement, tech) = setup();
    let cfg = RouteConfig::builder()
        .max_expansions(10) // force the pattern-route fallback everywhere
        .build()
        .unwrap();
    let (db, _) = route_design(&netlist, &placement, &tech, MlsPolicy::Disabled, cfg).unwrap();
    for net in netlist.net_ids() {
        assert_eq!(
            db.route(net).tree.sink_node.len(),
            netlist.sinks(net).len(),
            "fallback must still connect net {net}"
        );
    }
    // Fallback ignores congestion, so overflow is expected — and must be
    // *higher* than the maze router's.
    let (maze, _) = route_design(
        &netlist,
        &placement,
        &tech,
        MlsPolicy::Disabled,
        RouteConfig::default(),
    )
    .unwrap();
    assert!(db.summary.overflowed_nets >= maze.summary.overflowed_nets);
}

#[test]
fn ripup_rounds_do_not_increase_overflow() {
    let (netlist, placement, tech) = setup();
    let run = |rounds: usize| {
        let cfg = RouteConfig::builder()
            .ripup_rounds(rounds)
            .target_gcells(16) // tight grid: provoke congestion
            .build()
            .unwrap();
        route_design(&netlist, &placement, &tech, MlsPolicy::Disabled, cfg)
            .unwrap()
            .0
            .summary
            .overflowed_nets
    };
    let none = run(0);
    let two = run(2);
    assert!(
        two <= none,
        "ripup must help or at least not hurt: {two} vs {none}"
    );
}

#[test]
fn sota_confiscation_moves_wirelength_across_the_bond() {
    let (netlist, placement, tech) = setup();
    let (disabled, grid) = route_design(
        &netlist,
        &placement,
        &tech,
        MlsPolicy::Disabled,
        RouteConfig::default(),
    )
    .unwrap();
    let (sota, grid2) = route_design(
        &netlist,
        &placement,
        &tech,
        MlsPolicy::sota(),
        RouteConfig::default(),
    )
    .unwrap();
    // Under sharing, logic nets offload onto the memory die: its share of
    // wirelength grows.
    let mem_disabled = disabled.tier_wirelength_um(&grid, Tier::Memory);
    let mem_sota = sota.tier_wirelength_um(&grid2, Tier::Memory);
    assert!(
        mem_sota > mem_disabled,
        "memory-die wirelength should grow under SOTA: {mem_sota:.0} vs {mem_disabled:.0}"
    );
    assert!(sota.summary.mls_net_count > 0);
    // F2F pads are consumed by both 3D nets and MLS crossings.
    assert!(sota.summary.f2f_pads > disabled.summary.f2f_pads);
}

#[test]
fn what_if_deny_matches_disabled_for_2d_nets() {
    let (netlist, placement, tech) = setup();
    let mut router = Router::new(
        &netlist,
        &placement,
        &tech,
        MlsPolicy::Disabled,
        RouteConfig::default(),
    )
    .unwrap();
    router.route_all().unwrap();
    let mut scratch = router.scratch();
    for net in netlist.net_ids().take(100) {
        if netlist.net_tier(net).is_none() {
            continue;
        }
        let denied = router
            .what_if(&mut scratch, net, gnnmls_route::router::MlsOverride::Deny)
            .unwrap();
        assert!(!denied.is_mls, "deny must confine net {net}");
        assert_eq!(denied.f2f_crossings, 0);
    }
}

#[test]
fn summary_serializes_to_json() {
    let (netlist, placement, tech) = setup();
    let (db, _) = route_design(
        &netlist,
        &placement,
        &tech,
        MlsPolicy::sota(),
        RouteConfig::default(),
    )
    .unwrap();
    let s = serde_json::to_string(&db.summary).unwrap();
    let back: gnnmls_route::RouteSummary = serde_json::from_str(&s).unwrap();
    // JSON float printing may differ in the last ulp; compare field-wise
    // with tolerance.
    assert_eq!(back.mls_net_count, db.summary.mls_net_count);
    assert_eq!(back.f2f_pads, db.summary.f2f_pads);
    assert_eq!(back.overflowed_nets, db.summary.overflowed_nets);
    assert!((back.total_wirelength_m - db.summary.total_wirelength_m).abs() < 1e-12);
    assert_eq!(
        back.layer_utilization.len(),
        db.summary.layer_utilization.len()
    );
    for (a, b) in back
        .layer_utilization
        .iter()
        .zip(&db.summary.layer_utilization)
    {
        assert!((a - b).abs() < 1e-12);
    }
}

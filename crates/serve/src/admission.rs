//! Admission control: deep request validation and a cost-budget meter.
//!
//! Every request is vetted **before** it takes a queue slot or the
//! build lock:
//!
//! 1. [`validate_request`] deep-checks the [`SessionSpec`](gnn_mls::session::SessionSpec) (design and
//!    tech must exist, the target frequency must be finite and within
//!    bounds) and the per-kind parameters (a `WhatIf` needs a net and a
//!    sane expansion budget, an `InferMls` a sane path count). Failures
//!    are typed [`ValidationError`]s and surface on the wire as
//!    `Rejected` — permanent, never worth retrying verbatim.
//! 2. [`request_cost`] estimates how expensive serving the request will
//!    be, in abstract cost units calibrated so a warm cache hit is 1.
//!    The [`AdmissionMeter`] tracks the units currently in flight
//!    against a configurable budget and sheds work (`Busy` on the
//!    wire, counted separately as `shed`) when admitting more would
//!    exceed it — with the carve-out that an idle server always admits
//!    one request, however large, so a budget smaller than the biggest
//!    legitimate job cannot starve it forever.

use std::sync::atomic::{AtomicU64, Ordering};

use gnn_mls::session::ValidationError;

use crate::protocol::{Request, RequestKind};

/// Upper bound accepted for `Request::deadline_expansions`.
pub const MAX_DEADLINE_EXPANSIONS: u64 = 10_000_000;

/// Upper bound accepted for `Request::paths`.
pub const MAX_INFER_PATHS: u64 = 4_096;

/// Deep-validates a request before admission.
///
/// # Errors
///
/// Returns the first [`ValidationError`] found; `Ok(())` means the
/// request is structurally serviceable (it may still fail to build).
pub fn validate_request(req: &Request) -> Result<(), ValidationError> {
    // Health and Shutdown carry a dummy spec; nothing to validate.
    if matches!(req.kind, RequestKind::Health | RequestKind::Shutdown) {
        return Ok(());
    }
    req.spec.validate()?;
    match req.kind {
        RequestKind::WhatIf => {
            if req.net.is_none() {
                return Err(ValidationError::MissingNet);
            }
            if let Some(d) = req.deadline_expansions {
                if d == 0 || d > MAX_DEADLINE_EXPANSIONS {
                    return Err(ValidationError::BadDeadline(d));
                }
            }
        }
        RequestKind::InferMls => {
            if let Some(p) = req.paths {
                if p == 0 || p > MAX_INFER_PATHS {
                    return Err(ValidationError::BadPaths {
                        got: p,
                        max: MAX_INFER_PATHS,
                    });
                }
            }
        }
        _ => {}
    }
    Ok(())
}

/// Estimates the cost of serving `req`, in abstract units.
///
/// A query against a warm session is 1 unit regardless of the spec —
/// the expensive part already happened. A cold build scales with the
/// design size, a full-quality (non-fast) flow is ~20x a fast one, a
/// GNN-MLS policy adds oracle labeling and training on top, and a
/// `RunFlow` runs the whole flow rather than stopping at the session.
pub fn request_cost(req: &Request, warm: bool) -> u64 {
    match req.kind {
        // Answered inline or from counters; effectively free.
        RequestKind::Stats | RequestKind::Health | RequestKind::Shutdown => return 0,
        _ => {}
    }
    if warm && req.kind != RequestKind::RunFlow {
        return 1;
    }
    let design: u64 = match req.spec.design.as_str() {
        "maeri16" => 1,
        "maeri128" => 8,
        "a7" => 16,
        // maeri256 and anything unknown (caught by validation anyway).
        _ => 32,
    };
    let speed: u64 = if req.spec.fast { 1 } else { 20 };
    let policy: u64 = match req.spec.policy {
        gnn_mls::flow::FlowPolicy::GnnMls => 3,
        _ => 1,
    };
    let kind: u64 = if req.kind == RequestKind::RunFlow {
        2
    } else {
        1
    };
    design * speed * policy * kind
}

/// Tracks admission cost units in flight against a budget.
///
/// Lock-free: admission is a CAS loop over one counter. The meter
/// always admits when nothing is in flight, so one oversized job can
/// run alone rather than being unserviceable.
#[derive(Debug)]
pub struct AdmissionMeter {
    in_flight: AtomicU64,
    budget: u64,
}

impl AdmissionMeter {
    /// A meter enforcing `budget` cost units in flight.
    pub fn new(budget: u64) -> Self {
        Self {
            in_flight: AtomicU64::new(0),
            budget,
        }
    }

    /// The configured budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Cost units currently admitted.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Acquire)
    }

    /// Tries to admit `cost` units; `false` means shed the request.
    pub fn try_admit(&self, cost: u64) -> bool {
        self.in_flight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                if cur == 0 || cur.saturating_add(cost) <= self.budget {
                    Some(cur.saturating_add(cost))
                } else {
                    None
                }
            })
            .is_ok()
    }

    /// Returns `cost` units to the budget.
    pub fn release(&self, cost: u64) {
        self.in_flight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                Some(cur.saturating_sub(cost))
            })
            .ok();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_mls::session::SessionSpec;

    #[test]
    fn valid_requests_pass_invalid_are_typed() {
        let spec = SessionSpec::fast("maeri16");
        validate_request(&Request::what_if(1, spec.clone(), 0, true, Some(1000))).unwrap();
        validate_request(&Request::infer(2, spec.clone(), Some(8))).unwrap();
        validate_request(&Request::stats(3, spec.clone())).unwrap();
        validate_request(&Request::health(4)).unwrap();

        // Missing net on a what-if.
        let mut r = Request::what_if(5, spec.clone(), 0, true, None);
        r.net = None;
        assert!(matches!(
            validate_request(&r),
            Err(ValidationError::MissingNet)
        ));
        // Deadline of zero and beyond the cap.
        for d in [0, MAX_DEADLINE_EXPANSIONS + 1] {
            let r = Request::what_if(6, spec.clone(), 0, true, Some(d));
            assert!(matches!(
                validate_request(&r),
                Err(ValidationError::BadDeadline(_))
            ));
        }
        // Path counts of zero and beyond the cap.
        for p in [0, MAX_INFER_PATHS + 1] {
            let r = Request::infer(7, spec.clone(), Some(p));
            assert!(matches!(
                validate_request(&r),
                Err(ValidationError::BadPaths { .. })
            ));
        }
        // Unknown design, bad frequency.
        let r = Request::stats(8, SessionSpec::fast("nonesuch"));
        assert!(matches!(
            validate_request(&r),
            Err(ValidationError::UnknownDesign(_))
        ));
        let mut bad = spec.clone();
        bad.target_freq_mhz = f64::NAN;
        assert!(matches!(
            validate_request(&Request::stats(9, bad)),
            Err(ValidationError::BadFrequency(_))
        ));
        // A shutdown spec is never validated.
        validate_request(&Request::shutdown(10)).unwrap();
    }

    #[test]
    fn costs_rank_sanely() {
        let fast16 = Request::what_if(1, SessionSpec::fast("maeri16"), 0, true, None);
        let full16 = Request::what_if(1, SessionSpec::new("maeri16"), 0, true, None);
        let fast256 = Request::infer(1, SessionSpec::fast("maeri256"), None);
        assert_eq!(request_cost(&fast16, false), 1);
        assert!(request_cost(&full16, false) > request_cost(&fast16, false));
        assert!(request_cost(&fast256, false) > request_cost(&fast16, false));
        // Warm hits are unit cost no matter the spec.
        assert_eq!(request_cost(&fast256, true), 1);
        // Control-plane requests are free.
        assert_eq!(request_cost(&Request::health(2), false), 0);
        assert_eq!(
            request_cost(&Request::stats(3, SessionSpec::fast("maeri256")), false),
            0
        );
    }

    #[test]
    fn meter_sheds_over_budget_but_never_starves() {
        let m = AdmissionMeter::new(10);
        assert!(m.try_admit(6));
        assert!(m.try_admit(4));
        assert_eq!(m.in_flight(), 10);
        assert!(!m.try_admit(1), "over budget must shed");
        m.release(4);
        assert!(m.try_admit(1));
        m.release(6);
        m.release(1);
        assert_eq!(m.in_flight(), 0);
        // An idle meter admits even a job larger than the whole budget.
        assert!(m.try_admit(1_000));
        assert!(!m.try_admit(1));
        m.release(1_000);
        assert_eq!(m.in_flight(), 0);
    }
}

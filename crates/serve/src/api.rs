//! Unified serving facade: one typed error taxonomy and a typed client.
//!
//! The wire protocol answers every request with a [`Response`] whose
//! [`ResponseKind`] mixes five outcomes — the real answer, two flavors
//! of shed work (`Busy`, `Quarantined`), an admission refusal
//! (`Rejected`), and request- or connection-level errors — and callers
//! historically pattern-matched that mix by hand at every site.
//! [`classify`] folds the non-`Ok` outcomes into one [`ServeError`]
//! taxonomy with `retry_after_ms` first-class, so retry loops ask
//! [`ServeError::is_transient`] instead of re-deriving the rules, and
//! [`Client`] wraps the blocking client with per-request-kind methods
//! that return the typed payload (a [`WhatIfResult`], a
//! [`HealthStatus`], …) instead of a raw envelope.
//!
//! The mapping from wire kinds to this taxonomy is documented in
//! `docs/PROTOCOL.md`; the raw-envelope client remains available as
//! [`crate::client::Client`] for callers that forward wire JSON
//! verbatim (the CLI does).

use std::fmt;
use std::net::ToSocketAddrs;

use gnn_mls::session::{InferResult, SessionSpec, WhatIfResult};

use crate::client::{Client as WireClient, ClientError, RetryPolicy};
use crate::protocol::{
    FrameError, HealthStatus, ModelSwapResult, Request, Response, ResponseKind, ServerStats,
};

/// Every way a serving request can fail, unified across the daemon and
/// the cluster front.
///
/// The first three variants are typed forms of the wire's shed/refusal
/// kinds; `Notice` and `Transport` are connection-level; `GaveUp` is
/// the client-side verdict after a retry budget is exhausted. Backoff
/// hints ride along: [`ServeError::retry_after_ms`] surfaces the
/// server's cooldown floor for any variant that carries one.
#[derive(Debug)]
pub enum ServeError {
    /// The server shed the request (queue full / admission budget
    /// exhausted); transient — retry after backoff.
    Busy {
        /// Server-suggested backoff floor, when it sent one.
        retry_after_ms: Option<u64>,
    },
    /// The spec's quarantine circuit is open; transient, but probing
    /// before `retry_after_ms` elapses is wasted work.
    Quarantined {
        /// The server's explanation (strike count, cooldown).
        why: String,
        /// How long the circuit stays open.
        retry_after_ms: Option<u64>,
    },
    /// Admission control refused the request outright (malformed or
    /// over-budget); permanent — retrying the same request is futile.
    Rejected {
        /// The server's refusal reason.
        why: String,
    },
    /// The request itself failed on the server (flow error, unknown
    /// model, …); permanent.
    Request {
        /// The server's error text.
        why: String,
    },
    /// A connection-level notice (id 0): the server reported a stall or
    /// malformed frame and may have closed the stream. Transient after
    /// a reconnect.
    Notice {
        /// The notice text.
        why: String,
    },
    /// The transport failed (socket error, truncated or malformed
    /// frame, protocol version mismatch).
    Transport(FrameError),
    /// Every attempt in the retry budget was transient.
    GaveUp {
        /// Attempts made.
        attempts: u32,
        /// What the final attempt saw.
        last: String,
    },
}

impl ServeError {
    /// Whether retrying (possibly after reconnect and backoff) can
    /// succeed: `Busy`, `Quarantined`, `Notice`, and `Transport` are
    /// transient; `Rejected`, `Request`, and `GaveUp` are not.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ServeError::Busy { .. }
                | ServeError::Quarantined { .. }
                | ServeError::Notice { .. }
                | ServeError::Transport(_)
        )
    }

    /// The server's backoff floor, when this outcome carries one. A
    /// retry loop should not probe again before this elapses.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ServeError::Busy { retry_after_ms }
            | ServeError::Quarantined { retry_after_ms, .. } => *retry_after_ms,
            _ => None,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Busy { retry_after_ms } => match retry_after_ms {
                Some(ms) => write!(f, "server busy; retry after {ms}ms"),
                None => f.write_str("server busy"),
            },
            ServeError::Quarantined {
                why,
                retry_after_ms,
            } => match retry_after_ms {
                Some(ms) => write!(f, "quarantined: {why} (retry after {ms}ms)"),
                None => write!(f, "quarantined: {why}"),
            },
            ServeError::Rejected { why } => write!(f, "rejected: {why}"),
            ServeError::Request { why } => write!(f, "request failed: {why}"),
            ServeError::Notice { why } => write!(f, "connection notice: {why}"),
            ServeError::Transport(e) => write!(f, "transport: {e}"),
            ServeError::GaveUp { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last: {last}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for ServeError {
    fn from(e: FrameError) -> Self {
        ServeError::Transport(e)
    }
}

impl From<ClientError> for ServeError {
    fn from(e: ClientError) -> Self {
        match e {
            ClientError::Frame(e) => ServeError::Transport(e),
            ClientError::GaveUp { attempts, last } => ServeError::GaveUp { attempts, last },
        }
    }
}

/// Folds a response envelope into the [`ServeError`] taxonomy:
/// `None` for a real answer, `Some` for every other outcome.
/// `request_id` distinguishes a request-level `Error` from a
/// connection-level notice (the server reports stalls and malformed
/// frames with id 0, which can never match a real request id).
pub fn classify(resp: &Response, request_id: u64) -> Option<ServeError> {
    let why = |fallback: &str| resp.error.clone().unwrap_or_else(|| fallback.to_string());
    match resp.kind {
        ResponseKind::Ok => None,
        ResponseKind::Busy => Some(ServeError::Busy {
            retry_after_ms: resp.retry_after_ms,
        }),
        ResponseKind::Quarantined => Some(ServeError::Quarantined {
            why: why("quarantined"),
            retry_after_ms: resp.retry_after_ms,
        }),
        ResponseKind::Rejected => Some(ServeError::Rejected {
            why: why("rejected"),
        }),
        ResponseKind::Error if resp.id == 0 && request_id != 0 => Some(ServeError::Notice {
            why: why("connection notice"),
        }),
        ResponseKind::Error => Some(ServeError::Request {
            why: why("unspecified error"),
        }),
    }
}

/// An MLS inference answer with the model version that produced it.
#[derive(Clone, Debug)]
pub struct Inference {
    /// The per-path sharing verdicts and projected QoR delta.
    pub result: InferResult,
    /// Which model-zoo version answered, when the server reports it.
    pub model_version: Option<String>,
}

/// Typed client for the serving plane: one connection, per-request-kind
/// methods, retries built in.
///
/// Every method sends one request under the configured [`RetryPolicy`]
/// (transient outcomes are retried with capped jittered backoff,
/// honoring `retry_after_ms` floors) and returns either the typed
/// payload or a [`ServeError`]. Works identically against a single
/// daemon and a cluster front — the taxonomy is the same on both.
pub struct Client {
    inner: WireClient,
    policy: RetryPolicy,
    next_id: u64,
}

impl Client {
    /// Connects with the default [`RetryPolicy`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Transport`] when the server is unreachable.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ServeError> {
        let inner =
            WireClient::connect(addr).map_err(|e| ServeError::Transport(FrameError::Io(e)))?;
        Ok(Self {
            inner,
            policy: RetryPolicy::default(),
            next_id: 1,
        })
    }

    /// Replaces the retry policy (builder-style).
    #[must_use]
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    fn take_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// One request under the retry policy, classified: a real answer
    /// comes back `Ok`, everything else as a typed [`ServeError`]. A
    /// still-quarantined final attempt surfaces as
    /// [`ServeError::Quarantined`] with its `retry_after_ms` intact.
    fn exchange(&mut self, req: &Request) -> Result<Response, ServeError> {
        let resp = self.inner.request_with_retry(req, &self.policy)?;
        match classify(&resp, req.id) {
            None => Ok(resp),
            Some(e) => Err(e),
        }
    }

    /// What-if routes `net` of `spec` with MLS forced on or off,
    /// optionally under an A* expansion budget.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`]; `Rejected` when the request fails admission.
    pub fn what_if(
        &mut self,
        spec: &SessionSpec,
        net: u32,
        allow_mls: bool,
        deadline_expansions: Option<u64>,
    ) -> Result<WhatIfResult, ServeError> {
        let id = self.take_id();
        let resp = self.exchange(&Request::what_if(
            id,
            spec.clone(),
            net,
            allow_mls,
            deadline_expansions,
        ))?;
        payload(resp.what_if, "what_if")
    }

    /// Runs MLS inference over the worst `paths` paths of `spec`.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`].
    pub fn infer(
        &mut self,
        spec: &SessionSpec,
        paths: Option<u64>,
    ) -> Result<Inference, ServeError> {
        let id = self.take_id();
        let resp = self.exchange(&Request::infer(id, spec.clone(), paths))?;
        let model_version = resp.model_version.clone();
        Ok(Inference {
            result: payload(resp.infer, "infer")?,
            model_version,
        })
    }

    /// Runs the full flow for `spec` on the server; returns the flow
    /// report as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`].
    pub fn run_flow(&mut self, spec: &SessionSpec) -> Result<String, ServeError> {
        let id = self.take_id();
        let resp = self.exchange(&Request::run_flow(id, spec.clone()))?;
        payload(resp.report_json, "run_flow report")
    }

    /// Fetches server stats (plus session stats for `spec` if cached).
    ///
    /// # Errors
    ///
    /// Any [`ServeError`].
    pub fn stats(&mut self, spec: &SessionSpec) -> Result<ServerStats, ServeError> {
        let id = self.take_id();
        let resp = self.exchange(&Request::stats(id, spec.clone()))?;
        payload(resp.stats, "stats")
    }

    /// Fetches the server's health verdict; answered inline even under
    /// full load.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`].
    pub fn health(&mut self) -> Result<HealthStatus, ServeError> {
        let id = self.take_id();
        let resp = self.exchange(&Request::health(id))?;
        payload(resp.health, "health")
    }

    /// Fetches the metrics registry as Prometheus-style text
    /// exposition; answered inline even under full load.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`].
    pub fn metrics(&mut self) -> Result<String, ServeError> {
        let id = self.take_id();
        let resp = self.exchange(&Request::metrics(id))?;
        payload(resp.metrics, "metrics")
    }

    /// Hot-swaps the model for the family of the checkpoint at `path`.
    /// Against a cluster front this broadcasts to every shard.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`]; `Request` when a shard refuses the swap.
    pub fn load_model(&mut self, path: impl Into<String>) -> Result<ModelSwapResult, ServeError> {
        let id = self.take_id();
        let resp = self.exchange(&Request::load_model(id, path))?;
        payload(resp.model_swap, "model swap")
    }

    /// Asks the server to drain and exit.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`].
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        let id = self.take_id();
        self.exchange(&Request::shutdown(id))?;
        Ok(())
    }
}

fn payload<T>(field: Option<T>, what: &str) -> Result<T, ServeError> {
    field.ok_or_else(|| ServeError::Request {
        why: format!("ok response missing {what} payload"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_maps_every_kind() {
        let ok = Response::ok(3);
        assert!(classify(&ok, 3).is_none());

        let busy = Response {
            retry_after_ms: Some(25),
            ..Response::busy(4)
        };
        match classify(&busy, 4) {
            Some(ServeError::Busy { retry_after_ms }) => assert_eq!(retry_after_ms, Some(25)),
            other => panic!("busy misclassified: {other:?}"),
        }

        let quar = Response::quarantined(5, "strike 3", 1_500);
        match classify(&quar, 5) {
            Some(ServeError::Quarantined {
                why,
                retry_after_ms,
            }) => {
                assert!(why.contains("strike 3"));
                assert_eq!(retry_after_ms, Some(1_500));
            }
            other => panic!("quarantined misclassified: {other:?}"),
        }

        let rej = Response::rejected(6, "cost over budget");
        match classify(&rej, 6) {
            Some(ServeError::Rejected { why }) => assert!(why.contains("cost")),
            other => panic!("rejected misclassified: {other:?}"),
        }

        let err = Response::error(7, "flow failed");
        match classify(&err, 7) {
            Some(ServeError::Request { why }) => assert!(why.contains("flow failed")),
            other => panic!("error misclassified: {other:?}"),
        }

        // Id 0 against a nonzero request id is a connection notice.
        let notice = Response::error(0, "connection stalled mid-frame");
        match classify(&notice, 7) {
            Some(ServeError::Notice { why }) => assert!(why.contains("stalled")),
            other => panic!("notice misclassified: {other:?}"),
        }
        // ... but a request sent with id 0 owns its id-0 error.
        match classify(&notice, 0) {
            Some(ServeError::Request { .. }) => {}
            other => panic!("id-0 request misclassified: {other:?}"),
        }
    }

    #[test]
    fn transience_and_backoff_hints() {
        let busy = ServeError::Busy {
            retry_after_ms: Some(10),
        };
        let quar = ServeError::Quarantined {
            why: "open".into(),
            retry_after_ms: Some(2_000),
        };
        let rej = ServeError::Rejected { why: "no".into() };
        let req = ServeError::Request { why: "bad".into() };
        let notice = ServeError::Notice {
            why: "stall".into(),
        };
        let frame = ServeError::Transport(FrameError::Closed);
        let gave = ServeError::GaveUp {
            attempts: 5,
            last: "busy".into(),
        };
        assert!(busy.is_transient() && quar.is_transient());
        assert!(notice.is_transient() && frame.is_transient());
        assert!(!rej.is_transient() && !req.is_transient() && !gave.is_transient());
        assert_eq!(busy.retry_after_ms(), Some(10));
        assert_eq!(quar.retry_after_ms(), Some(2_000));
        assert_eq!(rej.retry_after_ms(), None);
        assert_eq!(frame.retry_after_ms(), None);
    }

    #[test]
    fn display_is_specific() {
        let s = ServeError::Quarantined {
            why: "3 strikes".into(),
            retry_after_ms: Some(750),
        }
        .to_string();
        assert!(s.contains("3 strikes") && s.contains("750"), "{s}");
        let s = ServeError::GaveUp {
            attempts: 4,
            last: "busy".into(),
        }
        .to_string();
        assert!(s.contains('4') && s.contains("busy"), "{s}");
        let s = ServeError::Transport(FrameError::Closed).to_string();
        assert!(s.contains("connection closed"), "{s}");
    }
}

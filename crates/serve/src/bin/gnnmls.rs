//! `gnnmls` — command-line front end to the GNN-MLS flow and daemon.
//!
//! ```sh
//! gnnmls flow --design maeri128 --tech hetero --policy gnn-mls --freq 2500 \
//!        [--dft net|wire] [--json report.json] [--save-model model.json] \
//!        [--load-model model.json] [--verilog netlist.v]
//! gnnmls serve  [--addr 127.0.0.1:7117] [--queue N] [--workers N] [--cache N]
//! gnnmls client <whatif|infer|stats|flow|shutdown> [--addr ...] [--design ...]
//! gnnmls bench suite [--manifest bench/suite.toml] [--profile ci]
//!                    [--out target/bench/BENCH_suite.json] [--commit-baseline]
//! gnnmls bench diff  [--baseline bench/baseline.json] [--fresh target/bench/BENCH_suite.json]
//! gnnmls designs      # list available designs
//! ```
//!
//! Argument parsing is hand-rolled (the workspace is dependency-minimal).

use std::collections::HashMap;
use std::process::ExitCode;

use gnn_mls::checkpoint::ModelVersion;
use gnn_mls::flow::{run_flow, FlowConfig, FlowPolicy};
use gnn_mls::session::{build_design, build_tech, SessionSpec, DESIGNS};
use gnn_mls::{GnnMls, ModelConfig};
use gnnmls_dft::DftMode;
use gnnmls_netlist::verilog::write_verilog;
use gnnmls_serve::cluster::{ClusterConfig, ClusterFront, ShardBackendSpec, ShardSpawnSpec};
use gnnmls_serve::protocol::{Request, Response, ResponseKind};
use gnnmls_serve::{
    run_cluster_bench, run_zoo_bench, Client, ClusterBenchConfig, RetryPolicy, ServeConfig,
    ServeConfigBuilder, Server, ZooBenchConfig,
};
use gnnmls_zoo::{CorpusConfig, Registry};

const DEFAULT_ADDR: &str = "127.0.0.1:7117";

fn usage() -> &'static str {
    "usage:\n  gnnmls flow --design <name> [--tech hetero|homo] [--policy no-mls|sota|gnn-mls]\n              [--freq <MHz>] [--dft net|wire] [--json <path>] [--verilog <path>]\n              [--save-model <path>] [--load-model <path>] [--resume <dir>] [--fast]\n  gnnmls serve [--addr 127.0.0.1:7117] [--queue <jobs>] [--workers <n>]\n               [--cache <sessions>] [--checkpoint <dir>] [--admit <cost units>]\n  gnnmls serve --cluster [--shards <n>] [--addr 127.0.0.1:7117]\n               [--queue <jobs>] [--workers <n>] [--cache <sessions>]\n               [--admit <cost units>] [--checkpoint <dir>]\n               # spawns <n> shard daemons, routes v2 frames by spec hash,\n               # fails over through per-shard circuit breakers\n  gnnmls bench suite [--manifest bench/suite.toml] [--profile ci]\n                     [--out target/bench/BENCH_suite.json] [--commit-baseline]\n  gnnmls bench diff  [--baseline bench/baseline.json]\n                     [--fresh target/bench/BENCH_suite.json]\n                     [--perturb <scenario>:<metric>:<delta>]   # gate self-test\n  gnnmls bench cluster [--shards <n>] [--clients <n>] [--requests <n>]\n                       [--seed <n>] [--no-kill]\n                       # mixed whatif/infer load with a kill-one-shard\n                       # schedule; writes target/bench/BENCH_cluster.json\n  gnnmls bench zoo [--swap-iters <n>] [--target-accuracy <frac>] [--max-epochs <n>]\n                   # pretrain-vs-scratch convergence + warm-swap latency;\n                   # writes target/bench/BENCH_zoo.json\n  gnnmls model train   [--corpus tiny|full] [--dir zoo] [--threads <n>]\n                       # build the cross-design corpus, DGI-pretrain once,\n                       # fine-tune per family, publish versioned checkpoints\n  gnnmls model list    [--dir zoo]\n  gnnmls model inspect --family <f> [--version <x.y.z>] [--dir zoo]\n  gnnmls model verify  [--dir zoo]    # re-hash every checkpoint vs the manifest\n  gnnmls fsck <dir> [--json <path>]   # crash-recovery scrub of a checkpoint,\n                       # registry, or ledger directory: deletes orphan *.tmp,\n                       # quarantines torn/hash-mismatched files to *.damaged,\n                       # rolls the zoo manifest back to last-good; exits\n                       # nonzero only when damage was unrepairable\n  gnnmls client whatif   [--addr <addr>] <spec flags> --net <id> [--no-mls] [--budget <expansions>]\n  gnnmls client infer    [--addr <addr>] <spec flags> [--paths <k>]\n  gnnmls client stats    [--addr <addr>] [<spec flags>]\n  gnnmls client flow     [--addr <addr>] <spec flags>\n  gnnmls client health   [--addr <addr>]\n  gnnmls client metrics  [--addr <addr>]\n  gnnmls client load-model [--addr <addr>] --model <checkpoint.ckpt>\n                       # hot-swap the checkpoint's family on a live daemon\n                       # (broadcasts to every shard through a cluster front)\n  gnnmls client shutdown [--addr <addr>]\n  gnnmls designs\n\n<spec flags>: [--design <name>] [--tech hetero|homo] [--policy no-mls|sota|gnn-mls]\n              [--freq <MHz>] [--fast]\nclient flags: [--retries <n>] [--retry-seed <n>] retry shed/stalled requests\n              with capped exponential backoff and deterministic jitter\n\nGNNMLS_THREADS=<n> caps worker-thread fan-out. Precedence: an explicit\nnon-zero FlowConfig::threads (or RouteConfig::threads) knob wins; when\nthe knob is 0 (auto, the default everywhere), GNNMLS_THREADS overrides\nthe all-cores default. A non-numeric value is rejected at startup.\nGNNMLS_FAULTS=<site:shots,...|seed:N> arms the deterministic fault harness.\nGNNMLS_TRACE=<path> appends structured spans/events/metrics as JSONL;\n`gnnmls client metrics` scrapes a live daemon's registry as text exposition.\n"
}

fn main() -> ExitCode {
    // Armed only when GNNMLS_FAULTS is set; the guard must outlive the run.
    let _faults = gnnmls_faults::install_from_env();
    // Armed only when GNNMLS_TRACE is set: every span/event/metric from
    // this process appends to that JSONL file.
    if let Err(e) = gnnmls_obs::init_from_env() {
        eprintln!("gnnmls: could not open {} sink: {e}", gnnmls_obs::TRACE_ENV);
        return ExitCode::FAILURE;
    }
    // Reject a malformed GNNMLS_THREADS up front with a typed message
    // instead of silently running on all cores.
    if let Err(e) = gnnmls_par::env_threads() {
        eprintln!("gnnmls: {e}");
        return ExitCode::FAILURE;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("designs") => {
            for (name, desc) in DESIGNS {
                println!("{name:10} {desc}");
            }
            ExitCode::SUCCESS
        }
        Some("flow") => run_flow_cmd(&args[1..]),
        Some("serve") => serve_cmd(&args[1..]),
        Some("client") => client_cmd(&args[1..]),
        Some("bench") => bench_cmd(&args[1..]),
        Some("model") => model_cmd(&args[1..]),
        Some("fsck") => fsck_cmd(&args[1..]),
        _ => {
            eprint!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

/// Parses `--key value` pairs (plus bare flags listed in `flags`).
fn parse_opts<'a>(
    args: &'a [String],
    keys: &[&str],
    flags: &[&str],
) -> Result<(HashMap<&'a str, &'a str>, Vec<&'a str>), String> {
    let mut opts = HashMap::new();
    let mut seen_flags = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument `{a}`"));
        };
        if flags.contains(&key) {
            seen_flags.push(key);
            continue;
        }
        if !keys.contains(&key) {
            return Err(format!("unknown option --{key}"));
        }
        let Some(v) = it.next() else {
            return Err(format!("missing value for --{key}"));
        };
        opts.insert(key, v.as_str());
    }
    Ok((opts, seen_flags))
}

/// Builds a [`SessionSpec`] from the shared spec flags.
fn spec_from_opts(opts: &HashMap<&str, &str>, fast: bool) -> Result<SessionSpec, String> {
    let design = opts.get("design").copied().unwrap_or("maeri16");
    let mut spec = SessionSpec::new(design);
    spec.fast = fast;
    if let Some(tech) = opts.get("tech") {
        match *tech {
            "hetero" | "homo" => spec.tech = (*tech).to_string(),
            other => return Err(format!("unknown tech `{other}` (hetero|homo)")),
        }
    }
    if let Some(policy) = opts.get("policy") {
        spec.policy = match *policy {
            "no-mls" => FlowPolicy::NoMls,
            "sota" => FlowPolicy::Sota,
            "gnn-mls" => FlowPolicy::GnnMls,
            other => return Err(format!("unknown policy `{other}` (no-mls|sota|gnn-mls)")),
        };
    }
    if let Some(freq) = opts.get("freq") {
        match freq.parse::<f64>() {
            Ok(f) if f > 0.0 => spec.target_freq_mhz = f,
            _ => return Err("--freq must be a positive number (MHz)".to_string()),
        }
    }
    Ok(spec)
}

fn serve_cmd(args: &[String]) -> ExitCode {
    let (opts, flags) = match parse_opts(
        args,
        &[
            "addr",
            "queue",
            "workers",
            "cache",
            "checkpoint",
            "admit",
            "shards",
        ],
        &["cluster"],
    ) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    if flags.contains(&"cluster") {
        return serve_cluster_cmd(&opts);
    }
    if opts.contains_key("shards") {
        eprintln!("--shards only applies with --cluster");
        return ExitCode::FAILURE;
    }
    let mut builder = ServeConfig::builder().addr(
        opts.get("addr")
            .copied()
            .unwrap_or(DEFAULT_ADDR)
            .to_string(),
    );
    for (key, set) in [
        (
            "queue",
            (|b: ServeConfigBuilder, n| b.queue_capacity(n)) as fn(ServeConfigBuilder, usize) -> _,
        ),
        ("workers", |b, n| b.workers(n)),
        ("cache", |b, n| b.cache_capacity(n)),
    ] {
        if let Some(v) = opts.get(key) {
            match v.parse::<usize>() {
                Ok(n) if n > 0 => builder = set(builder, n),
                _ => {
                    eprintln!("--{key} must be a positive integer");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if let Some(v) = opts.get("admit") {
        match v.parse::<u64>() {
            Ok(n) if n > 0 => builder = builder.admission_budget(n),
            _ => {
                eprintln!("--admit must be a positive cost-unit count");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(dir) = opts.get("checkpoint") {
        builder = builder.checkpoint_dir(Some(std::path::PathBuf::from(dir)));
    }
    let cfg = match builder.build() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("gnnmls serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gnnmls serve: could not bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("gnnmls-serve listening on {}", server.local_addr());
    let stats = server.wait();
    eprintln!(
        "gnnmls-serve drained: {} served, {} busy, {} errors, {} cache hits / {} misses",
        stats.served, stats.busy, stats.errors, stats.cache_hits, stats.cache_misses
    );
    match serde_json::to_string_pretty(&stats) {
        Ok(json) => println!("{json}"),
        Err(e) => eprintln!("could not serialize final stats: {e}"),
    }
    ExitCode::SUCCESS
}

/// `gnnmls serve --cluster`: spawn `--shards` copies of this binary as
/// backend daemons (forwarding the serve knobs), route by spec hash,
/// and print the merged stats envelope after drain.
fn serve_cluster_cmd(opts: &HashMap<&str, &str>) -> ExitCode {
    let shards = match opts.get("shards").map(|v| v.parse::<usize>()) {
        None => 3,
        Some(Ok(n)) if n > 0 => n,
        Some(_) => {
            eprintln!("--shards must be a positive shard count");
            return ExitCode::FAILURE;
        }
    };
    // Serve knobs are forwarded verbatim to every shard; each shard
    // validates them itself at startup.
    let mut shard_args = vec!["serve".to_string()];
    for key in ["queue", "workers", "cache", "admit"] {
        if let Some(v) = opts.get(key) {
            shard_args.push(format!("--{key}"));
            shard_args.push((*v).to_string());
        }
    }
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("gnnmls serve --cluster: cannot locate own binary: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = ClusterConfig {
        addr: opts
            .get("addr")
            .copied()
            .unwrap_or(DEFAULT_ADDR)
            .to_string(),
        checkpoint_dir: opts.get("checkpoint").map(std::path::PathBuf::from),
        ..ClusterConfig::default()
    };
    let backends = (0..shards)
        .map(|_| {
            ShardBackendSpec::Spawn(ShardSpawnSpec {
                exe: exe.clone(),
                args: shard_args.clone(),
            })
        })
        .collect();
    let front = match ClusterFront::start(cfg, backends) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("gnnmls serve --cluster: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("gnnmls-cluster front listening on {}", front.local_addr());
    for ((id, addr), pid) in front
        .shard_addrs()
        .iter()
        .enumerate()
        .zip(front.shard_pids())
    {
        match pid {
            Some(pid) => eprintln!("  shard {id}: {addr} (pid {pid})"),
            None => eprintln!("  shard {id}: {addr}"),
        }
    }
    let stats = front.wait();
    eprintln!(
        "gnnmls-cluster drained: {} requests, {} ok, {} failovers ({} cold), \
         {} lost after retry, {} shard crashes / {} respawns",
        stats.requests,
        stats.relayed_ok,
        stats.failovers,
        stats.failover_cold,
        stats.lost_after_retry,
        stats.shard_crashes,
        stats.shard_respawns
    );
    match serde_json::to_string_pretty(&stats) {
        Ok(json) => println!("{json}"),
        Err(e) => eprintln!("could not serialize final cluster stats: {e}"),
    }
    ExitCode::SUCCESS
}

fn print_response(resp: &Response) -> ExitCode {
    match serde_json::to_string_pretty(resp) {
        // Tolerate a closed stdout (e.g. `gnnmls client stats | head`).
        Ok(json) => {
            use std::io::Write;
            let _ = writeln!(std::io::stdout(), "{json}");
        }
        Err(e) => {
            eprintln!("could not serialize response: {e}");
            return ExitCode::FAILURE;
        }
    }
    match resp.kind {
        ResponseKind::Ok => ExitCode::SUCCESS,
        ResponseKind::Busy
        | ResponseKind::Rejected
        | ResponseKind::Quarantined
        | ResponseKind::Error => ExitCode::FAILURE,
    }
}

fn client_cmd(args: &[String]) -> ExitCode {
    let Some(verb) = args.first().map(String::as_str) else {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    };
    let (opts, flags) = match parse_opts(
        &args[1..],
        &[
            "addr",
            "design",
            "tech",
            "policy",
            "freq",
            "net",
            "budget",
            "paths",
            "model",
            "retries",
            "retry-seed",
        ],
        &["fast", "no-mls"],
    ) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let spec = match spec_from_opts(&opts, flags.contains(&"fast")) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = opts.get("addr").copied().unwrap_or(DEFAULT_ADDR);
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("gnnmls client: could not connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut retry = RetryPolicy::default();
    if let Some(v) = opts.get("retries") {
        match v.parse::<u32>() {
            Ok(n) if n > 0 => retry.max_attempts = n,
            _ => {
                eprintln!("--retries must be a positive attempt count");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(v) = opts.get("retry-seed") {
        match v.parse::<u64>() {
            Ok(n) => retry.seed = n,
            Err(_) => {
                eprintln!("--retry-seed must be an integer");
                return ExitCode::FAILURE;
            }
        }
    }
    let req = match verb {
        "whatif" => {
            let net = match opts.get("net").map(|v| v.parse::<u32>()) {
                Some(Ok(n)) => n,
                _ => {
                    eprintln!("whatif requires --net <id>");
                    return ExitCode::FAILURE;
                }
            };
            let budget = match opts.get("budget").map(|v| v.parse::<u64>()) {
                None => None,
                Some(Ok(b)) => Some(b),
                Some(Err(_)) => {
                    eprintln!("--budget must be an integer expansion count");
                    return ExitCode::FAILURE;
                }
            };
            Request::what_if(1, spec, net, !flags.contains(&"no-mls"), budget)
        }
        "infer" => {
            let paths = match opts.get("paths").map(|v| v.parse::<u64>()) {
                None => None,
                Some(Ok(k)) => Some(k),
                Some(Err(_)) => {
                    eprintln!("--paths must be an integer");
                    return ExitCode::FAILURE;
                }
            };
            Request::infer(1, spec, paths)
        }
        "stats" => Request::stats(1, spec),
        "flow" => Request::run_flow(1, spec),
        "health" => Request::health(1),
        "metrics" => Request::metrics(1),
        "load-model" => {
            let Some(path) = opts.get("model") else {
                eprintln!("load-model requires --model <checkpoint.ckpt>");
                return ExitCode::FAILURE;
            };
            Request::load_model(1, *path)
        }
        "shutdown" => Request::shutdown(1),
        other => {
            eprintln!("unknown client verb `{other}`\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    // Shutdown is not retried: resending it to a draining daemon only
    // races the drain.
    if verb == "shutdown" {
        return match client.request(&req) {
            Ok(resp) => print_response(&resp),
            Err(e) => {
                eprintln!("gnnmls client: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match client.request_with_retry(&req, &retry) {
        // Metrics prints the exposition text raw so the output pipes
        // straight into a Prometheus-style scraper.
        Ok(resp) if verb == "metrics" && resp.kind == ResponseKind::Ok => {
            use std::io::Write;
            let text = resp.metrics.unwrap_or_default();
            let _ = write!(std::io::stdout(), "{text}");
            ExitCode::SUCCESS
        }
        Ok(resp) => print_response(&resp),
        Err(e) => {
            eprintln!("gnnmls client: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Default output path for a fresh suite run — under `target/` so local
/// runs never dirty the committed ledger; `--commit-baseline` is the
/// only way to update `bench/baseline.json`.
const SUITE_FRESH_PATH: &str = "target/bench/BENCH_suite.json";
/// The committed regression baseline `bench diff` gates against.
const SUITE_BASELINE_PATH: &str = "bench/baseline.json";
/// The committed scenario manifest.
const SUITE_MANIFEST_PATH: &str = "bench/suite.toml";

fn bench_cmd(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("suite") => bench_suite_cmd(&args[1..]),
        Some("diff") => bench_diff_cmd(&args[1..]),
        Some("cluster") => bench_cluster_cmd(&args[1..]),
        Some("zoo") => bench_zoo_cmd(&args[1..]),
        other => {
            eprintln!(
                "unknown bench verb `{}` (suite|diff|cluster|zoo)\n{}",
                other.unwrap_or(""),
                usage()
            );
            ExitCode::FAILURE
        }
    }
}

fn bench_suite_cmd(args: &[String]) -> ExitCode {
    let (opts, flags) =
        match parse_opts(args, &["manifest", "profile", "out"], &["commit-baseline"]) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{e}\n{}", usage());
                return ExitCode::FAILURE;
            }
        };
    let manifest_path = opts.get("manifest").copied().unwrap_or(SUITE_MANIFEST_PATH);
    let profile = opts.get("profile").copied().unwrap_or("ci");
    let out = opts.get("out").copied().unwrap_or(SUITE_FRESH_PATH);
    let manifest = match gnnmls_bench::load_manifest(std::path::Path::new(manifest_path)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("gnnmls bench suite: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match gnnmls_bench::run_suite(&manifest, profile) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gnnmls bench suite: {e}");
            return ExitCode::FAILURE;
        }
    };
    for s in &report.scenarios {
        let wns = s.metrics.get("wns_ps").copied().unwrap_or(f64::NAN);
        let wl = s.metrics.get("wirelength_m").copied().unwrap_or(f64::NAN);
        let f2f = s.metrics.get("f2f_pads").copied().unwrap_or(f64::NAN);
        println!(
            "{:24} {:8} {:8} WNS {wns:9.1} ps  WL {wl:7.3} m  F2F {f2f:6.0}  ({:.1}s)",
            s.name, s.design, s.policy, s.wall_clock_s
        );
    }
    let mut targets = vec![std::path::PathBuf::from(out)];
    if flags.contains(&"commit-baseline") {
        targets.push(std::path::PathBuf::from(SUITE_BASELINE_PATH));
    }
    for path in targets {
        if let Err(e) = gnnmls_bench::write_report(&report, &path) {
            eprintln!("gnnmls bench suite: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("suite ledger written to {}", path.display());
    }
    ExitCode::SUCCESS
}

/// `gnnmls bench cluster`: spawn a front + shards, drive mixed load
/// with a kill-one-shard-mid-run schedule, and write the latency /
/// failover ledger to `target/bench/BENCH_cluster.json`.
fn bench_cluster_cmd(args: &[String]) -> ExitCode {
    let (opts, flags) = match parse_opts(
        args,
        &["shards", "clients", "requests", "specs", "seed"],
        &["no-kill"],
    ) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let mut cfg = ClusterBenchConfig::default();
    for (key, slot) in [
        ("shards", &mut cfg.shards as &mut usize),
        ("clients", &mut cfg.clients),
        ("requests", &mut cfg.requests),
        ("specs", &mut cfg.specs),
    ] {
        if let Some(v) = opts.get(key) {
            match v.parse::<usize>() {
                Ok(n) if n > 0 => *slot = n,
                _ => {
                    eprintln!("--{key} must be a positive integer");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if let Some(v) = opts.get("seed") {
        match v.parse::<u64>() {
            Ok(n) => cfg.seed = n,
            Err(_) => {
                eprintln!("--seed must be an integer");
                return ExitCode::FAILURE;
            }
        }
    }
    cfg.kill_mid_run = !flags.contains(&"no-kill");
    cfg.shard_exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("gnnmls bench cluster: cannot locate own binary: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match run_cluster_bench(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gnnmls bench cluster: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "cluster bench: {} shards, {} clients, {} requests  p50 {:.1} ms  p99 {:.1} ms",
        report.shards, report.clients, report.requests, report.p50_ms, report.p99_ms
    );
    println!(
        "  ok {}  shed {}  errored {}  shed-rate {:.3}  failovers {} ({} cold)  \
         respawns {}  lost-after-retry {}",
        report.ok,
        report.shed,
        report.errored,
        report.shed_rate,
        report.failovers,
        report.failover_cold,
        report.shard_respawns,
        report.lost_after_retry
    );
    for s in &report.per_shard {
        println!(
            "  shard {}: served {}  hit-rate {:.3}  crashes {}  respawns {}",
            s.id, s.served, s.hit_rate, s.crashes, s.respawns
        );
    }
    eprintln!("cluster ledger written to target/bench/BENCH_cluster.json");
    // The run is a robustness gate, not just a ledger: a request lost
    // after exhausting retries fails the command.
    if report.lost_after_retry > 0 {
        eprintln!(
            "gnnmls bench cluster: {} request(s) lost after retry",
            report.lost_after_retry
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `gnnmls bench zoo`: pretrain-vs-scratch convergence probe plus
/// warm-swap latency against a freshly booted daemon; writes
/// `target/bench/BENCH_zoo.json`.
fn bench_zoo_cmd(args: &[String]) -> ExitCode {
    let (opts, _) = match parse_opts(
        args,
        &["swap-iters", "target-accuracy", "max-epochs", "threads"],
        &[],
    ) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let mut cfg = ZooBenchConfig::default();
    for (key, slot) in [
        ("swap-iters", &mut cfg.swap_iters as &mut usize),
        ("max-epochs", &mut cfg.max_epochs),
        ("threads", &mut cfg.threads),
    ] {
        if let Some(v) = opts.get(key) {
            match v.parse::<usize>() {
                Ok(n) if n > 0 || key == "threads" => *slot = n,
                _ => {
                    eprintln!("--{key} must be a positive integer");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if let Some(v) = opts.get("target-accuracy") {
        match v.parse::<f64>() {
            Ok(f) if f > 0.0 && f <= 1.0 => cfg.target_accuracy = f,
            _ => {
                eprintln!("--target-accuracy must be in (0, 1]");
                return ExitCode::FAILURE;
            }
        }
    }
    let report = match run_zoo_bench(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gnnmls bench zoo: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "zoo bench: {} designs / {} samples, families {:?}, DGI loss {:.4}",
        report.corpus_designs, report.corpus_samples, report.families, report.pretrain_loss
    );
    println!(
        "  to {:.0}% accuracy: scratch {} epochs (acc {:.3}, converged {})  \
         pretrained {} epochs (acc {:.3}, converged {})",
        report.target_accuracy * 100.0,
        report.scratch.epochs,
        report.scratch.accuracy,
        report.scratch.converged,
        report.pretrained.epochs,
        report.pretrained.accuracy,
        report.pretrained.converged
    );
    println!(
        "  warm swap over {} iters: p50 {} us  max {} us",
        report.swap_iters, report.swap_p50_us, report.swap_max_us
    );
    eprintln!("zoo ledger written to target/bench/BENCH_zoo.json");
    ExitCode::SUCCESS
}

/// Default on-disk model registry directory.
const ZOO_DIR: &str = "zoo";

fn model_cmd(args: &[String]) -> ExitCode {
    let Some(verb) = args.first().map(String::as_str) else {
        eprintln!(
            "model wants a verb (train|list|inspect|verify)\n{}",
            usage()
        );
        return ExitCode::FAILURE;
    };
    let (opts, _) = match parse_opts(
        &args[1..],
        &["corpus", "dir", "threads", "family", "version"],
        &[],
    ) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let registry = Registry::open(opts.get("dir").copied().unwrap_or(ZOO_DIR));
    match verb {
        "train" => model_train_cmd(&registry, &opts),
        "list" => model_list_cmd(&registry),
        "inspect" => model_inspect_cmd(&registry, &opts),
        "verify" => model_verify_cmd(&registry),
        other => {
            eprintln!("unknown model verb `{other}` (train|list|inspect|verify)");
            ExitCode::FAILURE
        }
    }
}

/// `gnnmls model train`: sweep the seeded generators into a corpus,
/// DGI-pretrain across every design, fine-tune per family, and publish
/// each model at the registry's next version.
fn model_train_cmd(registry: &Registry, opts: &HashMap<&str, &str>) -> ExitCode {
    let mut corpus_cfg = match opts.get("corpus").copied().unwrap_or("tiny") {
        "tiny" => CorpusConfig::tiny(),
        "full" => CorpusConfig::full(),
        other => {
            eprintln!("unknown corpus `{other}` (tiny|full)");
            return ExitCode::FAILURE;
        }
    };
    if let Some(v) = opts.get("threads") {
        match v.parse::<usize>() {
            Ok(n) => corpus_cfg.threads = n,
            Err(_) => {
                eprintln!("--threads must be an integer (0 = auto)");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!(
        "building corpus: families {:?}, {} seed(s) x {} variant(s)...",
        corpus_cfg.families,
        corpus_cfg.seeds.len(),
        corpus_cfg.variants_per_family
    );
    let corpus = match gnnmls_zoo::build_corpus(&corpus_cfg) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("gnnmls model train: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "corpus: {} designs, {} unlabeled samples; pretraining...",
        corpus.designs.len(),
        corpus.len()
    );
    let models = match gnnmls_zoo::train_zoo(&corpus, &ModelConfig::default(), corpus_cfg.threads) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("gnnmls model train: {e}");
            return ExitCode::FAILURE;
        }
    };
    for fam in &models {
        let version = match registry.next_version(&fam.family) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("gnnmls model train: {e}");
                return ExitCode::FAILURE;
            }
        };
        match registry.publish(&fam.to_zoo_checkpoint(version)) {
            Ok(entry) => println!(
                "{:6} v{}  {} params  f1 {:.3}  -> {}",
                entry.family,
                entry.version,
                entry.parameter_count,
                fam.metrics.f1(),
                registry.entry_path(&entry).display()
            ),
            Err(e) => {
                eprintln!("gnnmls model train: publish {}: {e}", fam.family);
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn model_list_cmd(registry: &Registry) -> ExitCode {
    let manifest = match registry.manifest() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("gnnmls model list: {e}");
            return ExitCode::FAILURE;
        }
    };
    if manifest.entries.is_empty() {
        eprintln!("no models published under {}", registry.dir().display());
        return ExitCode::SUCCESS;
    }
    for e in &manifest.entries {
        println!(
            "{:6} v{:8} {:10} params  {} corpus design(s)  {}",
            e.family, e.version, e.parameter_count, e.corpus_designs, e.file
        );
    }
    ExitCode::SUCCESS
}

fn model_inspect_cmd(registry: &Registry, opts: &HashMap<&str, &str>) -> ExitCode {
    let Some(family) = opts.get("family") else {
        eprintln!("model inspect requires --family <f>");
        return ExitCode::FAILURE;
    };
    let version = match opts.get("version") {
        None => None,
        Some(v) => match ModelVersion::parse(v) {
            Some(v) => Some(v),
            None => {
                eprintln!("--version wants <major>.<minor>.<patch>");
                return ExitCode::FAILURE;
            }
        },
    };
    let cp = match registry.load(family, version) {
        Ok(cp) => cp,
        Err(e) => {
            eprintln!("gnnmls model inspect: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("family:           {}", cp.family);
    println!("version:          {}", cp.version);
    println!("pretrain epochs:  {}", cp.pretrain_epochs);
    println!("finetune epochs:  {}", cp.finetune_epochs);
    println!("corpus designs:   {}", cp.corpus_hashes.len());
    for h in &cp.corpus_hashes {
        println!("  content hash:   {h:016x}");
    }
    match GnnMls::from_checkpoint(cp.model) {
        Ok(model) => {
            println!("parameters:       {}", model.parameter_count());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("gnnmls model inspect: checkpoint does not restore: {e}");
            ExitCode::FAILURE
        }
    }
}

fn model_verify_cmd(registry: &Registry) -> ExitCode {
    let report = match registry.verify() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gnnmls model verify: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "checked {} checkpoint(s) under {}",
        report.checked,
        registry.dir().display()
    );
    if report.ok() {
        println!("all checkpoints match the manifest");
        ExitCode::SUCCESS
    } else {
        for p in &report.problems {
            eprintln!("  PROBLEM: {p}");
        }
        ExitCode::FAILURE
    }
}

fn fsck_cmd(args: &[String]) -> ExitCode {
    let Some(dir) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: gnnmls fsck <dir> [--json <path>]");
        return ExitCode::FAILURE;
    };
    let (opts, _) = match parse_opts(&args[1..], &["json"], &[]) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}\nusage: gnnmls fsck <dir> [--json <path>]");
            return ExitCode::FAILURE;
        }
    };
    let path = std::path::Path::new(dir);
    // A directory that carries (or carried) a zoo manifest gets the
    // registry-aware scrub — rollback to last-good, orphan adoption,
    // manifest rebuild. Anything else (resume dirs, bench ledgers,
    // drain-stats dirs) gets the generic artifact scrub.
    let manifest = path.join(gnnmls_zoo::MANIFEST_FILE);
    let registry_mode = manifest.exists()
        || gnn_mls::store::damaged_path(&manifest).exists()
        || gnn_mls::store::tmp_path(&manifest).exists();
    let report = if registry_mode {
        match Registry::open_unscrubbed(path).scrub() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("gnnmls fsck: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match gnn_mls::store::scrub_dir(path) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("gnnmls fsck: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    println!(
        "fsck {}: {} artifact(s) scanned, {} valid, {} repaired, {} unrepairable",
        report.dir, report.scanned, report.valid, report.repaired, report.unrepairable
    );
    for f in &report.findings {
        println!(
            "  {:<16} {:<16} {}  ({})",
            f.class, f.action, f.file, f.detail
        );
    }
    if let Some(out) = opts.get("json") {
        if let Err(e) = gnn_mls::checkpoint::write_json_file(std::path::Path::new(out), &report) {
            eprintln!("gnnmls fsck: could not write report to {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("fsck report written to {out}");
    }
    if report.consistent() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn bench_diff_cmd(args: &[String]) -> ExitCode {
    let (opts, _) = match parse_opts(args, &["baseline", "fresh", "perturb"], &[]) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let baseline_path = opts.get("baseline").copied().unwrap_or(SUITE_BASELINE_PATH);
    let fresh_path = opts.get("fresh").copied().unwrap_or(SUITE_FRESH_PATH);
    let baseline = match gnnmls_bench::load_report(std::path::Path::new(baseline_path)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gnnmls bench diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut fresh = match gnnmls_bench::load_report(std::path::Path::new(fresh_path)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gnnmls bench diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Gate self-test: inject a known QoR drift into the fresh report and
    // prove the diff catches it (used by CI to keep the gate honest).
    if let Some(spec) = opts.get("perturb") {
        let parts: Vec<&str> = spec.splitn(3, ':').collect();
        let (scenario, metric, delta) = match parts.as_slice() {
            [s, m, d] => match d.parse::<f64>() {
                Ok(delta) => (*s, *m, delta),
                Err(_) => {
                    eprintln!("--perturb delta must be a number (got `{spec}`)");
                    return ExitCode::FAILURE;
                }
            },
            _ => {
                eprintln!("--perturb wants <scenario>:<metric>:<delta> (got `{spec}`)");
                return ExitCode::FAILURE;
            }
        };
        let Some(v) = fresh
            .scenarios
            .iter_mut()
            .find(|s| s.name == scenario)
            .and_then(|s| s.metrics.get_mut(metric))
        else {
            eprintln!("--perturb target `{scenario}:{metric}` not in the fresh report");
            return ExitCode::FAILURE;
        };
        *v += delta;
        eprintln!("perturbed {scenario}:{metric} by {delta:+}");
    }
    let diff = gnnmls_bench::diff_reports(&baseline, &fresh);
    println!("{diff}");
    if diff.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_flow_cmd(args: &[String]) -> ExitCode {
    let mut opts: HashMap<&str, &str> = HashMap::new();
    let mut fast = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--fast" {
            fast = true;
            continue;
        }
        let Some(key) = a.strip_prefix("--") else {
            eprintln!("unexpected argument `{a}`\n{}", usage());
            return ExitCode::FAILURE;
        };
        let Some(v) = it.next() else {
            eprintln!("missing value for --{key}");
            return ExitCode::FAILURE;
        };
        opts.insert(
            match key {
                "design" | "tech" | "policy" | "freq" | "dft" | "json" | "verilog"
                | "save-model" | "load-model" | "resume" => key,
                other => {
                    eprintln!("unknown option --{other}\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            v,
        );
    }

    let design_name = opts.get("design").copied().unwrap_or("maeri16");
    let is_a7 = design_name.starts_with("a7");
    let Some(tech) = build_tech(opts.get("tech").copied().unwrap_or("hetero"), design_name) else {
        eprintln!(
            "unknown tech `{}` (hetero|homo)",
            opts.get("tech").copied().unwrap_or("hetero")
        );
        return ExitCode::FAILURE;
    };
    let Some(design) = build_design(design_name, &tech) else {
        eprintln!("unknown design `{design_name}`; see `gnnmls designs`");
        return ExitCode::FAILURE;
    };

    let policy = match opts.get("policy").copied().unwrap_or("gnn-mls") {
        "no-mls" => FlowPolicy::NoMls,
        "sota" => FlowPolicy::Sota,
        "gnn-mls" => FlowPolicy::GnnMls,
        other => {
            eprintln!("unknown policy `{other}` (no-mls|sota|gnn-mls)");
            return ExitCode::FAILURE;
        }
    };
    let freq: f64 = match opts
        .get("freq")
        .copied()
        .unwrap_or(if is_a7 { "2000" } else { "2500" })
        .parse()
    {
        Ok(f) if f > 0.0 => f,
        _ => {
            eprintln!("--freq must be a positive number (MHz)");
            return ExitCode::FAILURE;
        }
    };

    let mut cfg = if fast {
        FlowConfig::fast_test(freq)
    } else {
        FlowConfig::new(freq)
    };
    match opts.get("dft").copied() {
        None => {}
        Some("net") => cfg.dft = Some(DftMode::NetBased),
        Some("wire") => cfg.dft = Some(DftMode::WireBased),
        Some(other) => {
            eprintln!("unknown dft mode `{other}` (net|wire)");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = opts.get("save-model") {
        cfg.save_model = Some(std::path::PathBuf::from(path));
    }
    if let Some(dir) = opts.get("resume") {
        cfg.resume = Some(std::path::PathBuf::from(dir));
    }
    if let Some(path) = opts.get("load-model") {
        match GnnMls::load_json(path) {
            Ok(m) => cfg.pretrained = Some(m.to_checkpoint()),
            Err(e) => {
                eprintln!("could not load model from {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = opts.get("verilog") {
        let verilog = write_verilog(&design.netlist);
        if let Err(e) =
            gnn_mls::store::durable_write(std::path::Path::new(path), verilog.as_bytes())
        {
            eprintln!("could not write verilog to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("netlist written to {path}");
    }

    eprintln!(
        "running {} [{}] @ {freq} MHz ({})...",
        design.netlist.name(),
        policy.name(),
        tech.name
    );
    let report = match run_flow(&design, &cfg, policy) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("flow failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{report}");

    if let Some(path) = opts.get("json") {
        match serde_json::to_string_pretty(&report) {
            Ok(s) => {
                if let Err(e) =
                    gnn_mls::store::durable_write(std::path::Path::new(path), s.as_bytes())
                {
                    eprintln!("could not write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("report written to {path}");
            }
            Err(e) => eprintln!("serialize failed: {e}"),
        }
    }
    if let Some(path) = opts.get("save-model") {
        eprintln!("trained model checkpointed to {path}");
    }
    ExitCode::SUCCESS
}

//! Blocking client for the serve wire protocol.

use std::net::{TcpStream, ToSocketAddrs};

use gnn_mls::session::SessionSpec;

use crate::protocol::{read_frame, write_frame, FrameError, Request, Response};

/// One connection to a `gnnmls-serve` daemon. Requests are synchronous:
/// each call writes one frame and blocks for the matching response.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Returns the socket error when the daemon is unreachable.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Self { stream, next_id: 1 })
    }

    fn take_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Sends a request and blocks for its response.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] when either direction of the exchange
    /// fails.
    pub fn request(&mut self, req: &Request) -> Result<Response, FrameError> {
        write_frame(&mut self.stream, req)?;
        read_frame(&mut self.stream)
    }

    /// What-if routes `net` of `spec` with MLS forced on or off,
    /// optionally under an A* expansion budget (the request deadline).
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] on a transport failure.
    pub fn what_if(
        &mut self,
        spec: &SessionSpec,
        net: u32,
        allow_mls: bool,
        deadline_expansions: Option<u64>,
    ) -> Result<Response, FrameError> {
        let id = self.take_id();
        self.request(&Request::what_if(
            id,
            spec.clone(),
            net,
            allow_mls,
            deadline_expansions,
        ))
    }

    /// Runs MLS inference over the worst `paths` paths of `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] on a transport failure.
    pub fn infer(
        &mut self,
        spec: &SessionSpec,
        paths: Option<u64>,
    ) -> Result<Response, FrameError> {
        let id = self.take_id();
        self.request(&Request::infer(id, spec.clone(), paths))
    }

    /// Fetches server stats (plus session stats for `spec` if cached).
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] on a transport failure.
    pub fn stats(&mut self, spec: &SessionSpec) -> Result<Response, FrameError> {
        let id = self.take_id();
        self.request(&Request::stats(id, spec.clone()))
    }

    /// Runs the full flow for `spec` on the daemon.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] on a transport failure.
    pub fn run_flow(&mut self, spec: &SessionSpec) -> Result<Response, FrameError> {
        let id = self.take_id();
        self.request(&Request::run_flow(id, spec.clone()))
    }

    /// Asks the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] on a transport failure.
    pub fn shutdown(&mut self) -> Result<Response, FrameError> {
        let id = self.take_id();
        self.request(&Request::shutdown(id))
    }
}

//! Blocking client for the serve wire protocol, with capped,
//! seeded-jitter retries.
//!
//! A busy daemon sheds work with typed `Busy` responses and a wedged
//! connection is closed with a typed stall notice; both are transient.
//! [`Client::request_with_retry`] retries exactly those cases under a
//! [`RetryPolicy`]: capped exponential backoff whose jitter comes from
//! a deterministic seeded mixer, so two clients given different seeds
//! desynchronize while every run of the same client is reproducible.
//! `Quarantined` responses are also retried, honoring the server's
//! `retry_after_ms` hint as the backoff floor — the client never probes
//! an open circuit earlier than the server asked it to. When the
//! attempts are exhausted it returns a typed [`ClientError::GaveUp`]
//! carrying the attempt count — the caller always knows how hard it
//! tried.

use std::fmt;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use gnn_mls::session::SessionSpec;
use gnnmls_par::rng::splitmix64;

use crate::api::{classify, ServeError};
use crate::protocol::{read_frame, write_frame, FrameError, Request, Response};

/// Retry schedule for [`Client::request_with_retry`].
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts (first try included); at least 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per retry.
    pub base_delay_ms: u64,
    /// Backoff ceiling.
    pub max_delay_ms: u64,
    /// Jitter seed; deterministic per (seed, attempt).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            base_delay_ms: 10,
            max_delay_ms: 500,
            seed: 0x00C0_FFEE,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (0-based): capped
    /// exponential, half fixed and half deterministic jitter.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let exp = self
            .base_delay_ms
            .max(1)
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.max_delay_ms.max(1));
        let jitter = splitmix64(self.seed ^ u64::from(attempt)) % (exp / 2 + 1);
        (exp / 2 + jitter).min(self.max_delay_ms.max(1))
    }

    /// [`delay_ms`](Self::delay_ms) with a server-imposed floor: a
    /// `Quarantined` response carries `retry_after_ms` (how long the
    /// circuit stays open), and probing earlier is pointless, so the
    /// floor wins over the jittered schedule — even over
    /// `max_delay_ms`.
    pub fn delay_with_floor(&self, attempt: u32, floor_ms: Option<u64>) -> u64 {
        self.delay_ms(attempt).max(floor_ms.unwrap_or(0))
    }
}

/// Errors from the retrying request path.
#[derive(Debug)]
pub enum ClientError {
    /// A non-retryable transport failure (e.g. the request itself could
    /// not be encoded).
    Frame(FrameError),
    /// Every attempt was shed or stalled.
    GaveUp {
        /// Attempts made (== `RetryPolicy::max_attempts`).
        attempts: u32,
        /// What the final attempt saw.
        last: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "client: {e}"),
            ClientError::GaveUp { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// One connection to a `gnnmls-serve` daemon. Requests are synchronous:
/// each call writes one frame and blocks for the matching response.
pub struct Client {
    stream: TcpStream,
    peer: SocketAddr,
    next_id: u64,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Returns the socket error when the daemon is unreachable.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let peer = stream.peer_addr()?;
        Ok(Self {
            stream,
            peer,
            next_id: 1,
        })
    }

    fn take_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Best-effort reconnect after the server closed this connection
    /// (stall notice, truncated frame, broken pipe). A failure here is
    /// fine: the next attempt's request will fail and consume one
    /// retry.
    fn reconnect(&mut self) {
        if let Ok(stream) = TcpStream::connect(self.peer) {
            let _ = stream.set_nodelay(true);
            self.stream = stream;
        }
    }

    /// Sends a request and blocks for its response.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] when either direction of the exchange
    /// fails.
    pub fn request(&mut self, req: &Request) -> Result<Response, FrameError> {
        write_frame(&mut self.stream, req)?;
        read_frame(&mut self.stream)
    }

    /// Sends a request, retrying transient failures under `policy`.
    /// Outcomes are classified by [`crate::api::classify`]:
    /// `Busy` responses (shed work), `Quarantined` responses (the spec's
    /// circuit is open — the backoff floor is the server's
    /// `retry_after_ms` hint, so the next attempt lands after the
    /// cooldown's half-open probe window starts), connection-level
    /// notices (the server's stall/malformed reports carry id 0), and
    /// transport errors (reconnecting first). Permanent outcomes —
    /// `Ok`, `Rejected`, request-level `Error` — return immediately. A
    /// still-quarantined final attempt returns that `Quarantined`
    /// response rather than `GaveUp`, so the caller keeps the typed
    /// verdict and its `retry_after_ms`.
    ///
    /// # Errors
    ///
    /// [`ClientError::GaveUp`] when `policy.max_attempts` attempts were
    /// all transient failures.
    pub fn request_with_retry(
        &mut self,
        req: &Request,
        policy: &RetryPolicy,
    ) -> Result<Response, ClientError> {
        let attempts = policy.max_attempts.max(1);
        let mut last = String::new();
        let mut floor_ms: Option<u64> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(Duration::from_millis(
                    policy.delay_with_floor(attempt - 1, floor_ms.take()),
                ));
            }
            match self.request(req) {
                // The taxonomy decides, not ad-hoc kind matching:
                // transient verdicts loop, everything else returns the
                // envelope for the caller to interpret.
                Ok(resp) => match classify(&resp, req.id) {
                    Some(ServeError::Busy { .. }) => {
                        last = "busy".to_string();
                    }
                    Some(ServeError::Quarantined { retry_after_ms, .. }) => {
                        if attempt + 1 == attempts {
                            return Ok(resp);
                        }
                        floor_ms = retry_after_ms;
                        last = "quarantined".to_string();
                    }
                    Some(ServeError::Notice { why }) => {
                        // Not our answer; the server may have closed
                        // the stream after it.
                        last = why;
                        self.reconnect();
                    }
                    // `Ok`, `Rejected`, and request-level `Error` are
                    // final answers here.
                    _ => return Ok(resp),
                },
                Err(e) => {
                    last = e.to_string();
                    self.reconnect();
                }
            }
        }
        Err(ClientError::GaveUp { attempts, last })
    }

    /// What-if routes `net` of `spec` with MLS forced on or off,
    /// optionally under an A* expansion budget (the request deadline).
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] on a transport failure.
    pub fn what_if(
        &mut self,
        spec: &SessionSpec,
        net: u32,
        allow_mls: bool,
        deadline_expansions: Option<u64>,
    ) -> Result<Response, FrameError> {
        let id = self.take_id();
        self.request(&Request::what_if(
            id,
            spec.clone(),
            net,
            allow_mls,
            deadline_expansions,
        ))
    }

    /// Runs MLS inference over the worst `paths` paths of `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] on a transport failure.
    pub fn infer(
        &mut self,
        spec: &SessionSpec,
        paths: Option<u64>,
    ) -> Result<Response, FrameError> {
        let id = self.take_id();
        self.request(&Request::infer(id, spec.clone(), paths))
    }

    /// Fetches server stats (plus session stats for `spec` if cached).
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] on a transport failure.
    pub fn stats(&mut self, spec: &SessionSpec) -> Result<Response, FrameError> {
        let id = self.take_id();
        self.request(&Request::stats(id, spec.clone()))
    }

    /// Fetches the daemon's health (readiness, queue depth, quarantine
    /// set, watchdog restarts); answered inline even under full load.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] on a transport failure.
    pub fn health(&mut self) -> Result<Response, FrameError> {
        let id = self.take_id();
        self.request(&Request::health(id))
    }

    /// Fetches the daemon's metrics registry as Prometheus-style text
    /// exposition; answered inline even under full load.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] on a transport failure.
    pub fn metrics(&mut self) -> Result<Response, FrameError> {
        let id = self.take_id();
        self.request(&Request::metrics(id))
    }

    /// Runs the full flow for `spec` on the daemon.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] on a transport failure.
    pub fn run_flow(&mut self, spec: &SessionSpec) -> Result<Response, FrameError> {
        let id = self.take_id();
        self.request(&Request::run_flow(id, spec.clone()))
    }

    /// Hot-swaps the model for the family of the checkpoint at `path`
    /// (a `gnnmls model train` artifact); answered inline even under
    /// full load. Against a cluster front this broadcasts to every
    /// shard.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] on a transport failure.
    pub fn load_model(&mut self, path: impl Into<String>) -> Result<Response, FrameError> {
        let id = self.take_id();
        self.request(&Request::load_model(id, path))
    }

    /// Asks the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] on a transport failure.
    pub fn shutdown(&mut self) -> Result<Response, FrameError> {
        let id = self.take_id();
        self.request(&Request::shutdown(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_exponential_and_deterministic() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_delay_ms: 10,
            max_delay_ms: 100,
            seed: 7,
        };
        let delays: Vec<u64> = (0..8).map(|a| p.delay_ms(a)).collect();
        let again: Vec<u64> = (0..8).map(|a| p.delay_ms(a)).collect();
        assert_eq!(delays, again, "same seed, same schedule");
        for (a, &d) in delays.iter().enumerate() {
            assert!(d <= 100, "attempt {a} exceeded the cap: {d}");
            assert!(d >= 5, "attempt {a} below half the base: {d}");
        }
        // The fixed half grows until the cap kicks in.
        assert!(delays[2] >= delays[0]);
        // A different seed gives a different schedule somewhere.
        let q = RetryPolicy { seed: 8, ..p };
        assert!((0..8).any(|a| q.delay_ms(a) != delays[a as usize]));
    }

    #[test]
    fn retry_after_floor_overrides_the_jittered_schedule() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_delay_ms: 10,
            max_delay_ms: 100,
            seed: 7,
        };
        for attempt in 0..5 {
            // No floor (or a floor of zero) degrades to the plain
            // schedule.
            assert_eq!(p.delay_with_floor(attempt, None), p.delay_ms(attempt));
            assert_eq!(p.delay_with_floor(attempt, Some(0)), p.delay_ms(attempt));
            // A quarantine cooldown longer than the cap wins outright:
            // probing an open circuit early is wasted work.
            assert_eq!(p.delay_with_floor(attempt, Some(5_000)), 5_000);
            // A floor below the scheduled delay never shortens it.
            assert!(p.delay_with_floor(attempt, Some(1)) >= p.delay_ms(attempt));
        }
        // Deterministic: same policy + floor, same schedule.
        let a: Vec<u64> = (0..5).map(|n| p.delay_with_floor(n, Some(40))).collect();
        let b: Vec<u64> = (0..5).map(|n| p.delay_with_floor(n, Some(40))).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn gave_up_displays_attempts() {
        let e = ClientError::GaveUp {
            attempts: 5,
            last: "busy".into(),
        };
        let s = e.to_string();
        assert!(s.contains('5') && s.contains("busy"), "{s}");
    }
}

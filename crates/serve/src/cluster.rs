//! The `gnnmls serve --cluster` front tier: sharded warm-session
//! serving with health-checked failover.
//!
//! One daemon tops out at one box, and a single process death loses
//! every warm [`DesignSession`](gnn_mls::session::DesignSession). The
//! cluster front fixes both: it speaks the existing v2 wire protocol
//! natively, routes every request by
//! [`SessionSpec::cache_key`](gnn_mls::session::SessionSpec::cache_key)
//! through a consistent-hash [`HashRing`], and forwards the request
//! payload unchanged to the owning backend shard — so each design
//! builds warm exactly once cluster-wide and a cluster answer is
//! bit-identical to the single-daemon answer for the same request.
//!
//! Robustness model, in order of engagement:
//!
//! - **Supervision.** Shards the front spawned are reaped and respawned
//!   when they die (`kill -9` included); every shard, spawned or
//!   external, is health-probed on an interval via the PR 4 `Health`
//!   request.
//! - **Circuit breakers.** Consecutive probe or forward failures open a
//!   per-shard breaker with a capped exponential + seeded-jitter
//!   cooldown; an open breaker routes the shard's keys to their
//!   deterministic secondary. On cooldown expiry the breaker
//!   half-opens: one request (or probe) goes through, a success closes
//!   it, a failure re-opens it for longer.
//! - **Failover.** A request whose target is dead, quarantined, or
//!   over-deadline retries against the ring's secondary shard for that
//!   key. The secondary cold-builds the session; that is accepted and
//!   counted (`failover_cold`) — availability beats warmth.
//! - **Bounded retry.** The front retries with the same capped
//!   seeded-jitter backoff the client uses, honoring a shard's
//!   `retry_after_ms` as the backoff floor when the next attempt would
//!   hit the same shard. A request that exhausts every attempt gets a
//!   typed error and is counted in `lost_after_retry` — the number the
//!   cluster bench requires to be zero.
//! - **Graceful drain.** Shutdown stops accepting (new connections get
//!   a typed `Rejected` immediately), lets in-flight requests finish,
//!   collects each shard's final [`ServerStats`], shuts the shards
//!   down, and writes one versioned [`ClusterStats`] envelope as the
//!   `cluster-stats` checkpoint stage.
//!
//! Every failure path is deterministically testable through three
//! `gnnmls-faults` sites: `shard-crash` (the routed-to shard dies right
//! before the forward), `shard-stall` (the forward never completes
//! inside the deadline), and `conn-reset` (the front↔shard connection
//! tears after the request frame is written).

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gnn_mls::checkpoint::save_stage_logged;
use gnnmls_faults::{fire, FaultSite};
use gnnmls_par::rng::splitmix64;
use serde::{Deserialize, Serialize};

use crate::client::RetryPolicy;
use crate::protocol::{
    read_frame_idle, write_frame, FrameError, HealthStatus, QuarantineInfo, Request, RequestKind,
    Response, ResponseKind, ServerStats,
};
use crate::ring::HashRing;

/// Stage name of the merged drain checkpoint envelope.
pub const CLUSTER_STATS_STAGE: &str = "cluster-stats";

/// Schema version of [`ClusterStats`].
pub const CLUSTER_STATS_SCHEMA: u32 = 1;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Front-tier configuration. Defaults are production-ish; tests tighten
/// the timing knobs.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Front bind address (`:0` picks a port).
    pub addr: String,
    /// Idle read-timeout slice for client connections, ms.
    pub read_timeout_ms: u64,
    /// Health-probe interval per shard, ms.
    pub probe_interval_ms: u64,
    /// Connect/read timeout for one health probe, ms.
    pub probe_timeout_ms: u64,
    /// Consecutive failures that open a shard's breaker.
    pub breaker_threshold: u32,
    /// Base breaker cooldown, ms (doubles per re-open, capped).
    pub breaker_cooldown_ms: u64,
    /// Per-attempt deadline for a forwarded request, ms. Generous by
    /// default: a cold paper-scale session build is slow and must not
    /// read as a stall.
    pub forward_timeout_ms: u64,
    /// Total forward attempts per request (first try included).
    pub retries: u32,
    /// Base front-retry backoff, ms.
    pub retry_base_ms: u64,
    /// Front-retry backoff ceiling, ms.
    pub retry_max_ms: u64,
    /// Seed for breaker-cooldown and retry jitter.
    pub seed: u64,
    /// How long to wait for a spawned shard to become healthy, ms.
    pub spawn_ready_timeout_ms: u64,
    /// How long the drain waits for a shard process to exit before
    /// killing it, ms.
    pub shard_exit_timeout_ms: u64,
    /// Where the final [`ClusterStats`] envelope is written.
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            read_timeout_ms: 250,
            probe_interval_ms: 200,
            probe_timeout_ms: 2_000,
            breaker_threshold: 3,
            breaker_cooldown_ms: 500,
            forward_timeout_ms: 120_000,
            retries: 4,
            retry_base_ms: 10,
            retry_max_ms: 500,
            seed: 0x0C10_57E4,
            spawn_ready_timeout_ms: 60_000,
            shard_exit_timeout_ms: 10_000,
            checkpoint_dir: None,
        }
    }
}

/// How to (re)spawn one managed shard process.
#[derive(Clone, Debug)]
pub struct ShardSpawnSpec {
    /// The `gnnmls` binary.
    pub exe: PathBuf,
    /// Arguments ahead of the `--addr` pair (e.g. `["serve",
    /// "--queue", "64"]`).
    pub args: Vec<String>,
}

/// One backend shard the front should route to.
#[derive(Clone, Debug)]
pub enum ShardBackendSpec {
    /// An already-running daemon the front probes and routes to but
    /// does not supervise (used by the in-process tests).
    External(SocketAddr),
    /// A daemon the front spawns on a free port, supervises, and
    /// respawns on death.
    Spawn(ShardSpawnSpec),
}

/// Per-shard circuit breaker. Counts consecutive failures (probes and
/// forwards both); at the threshold the circuit opens for a capped
/// exponential cooldown with deterministic seeded jitter. Expiry
/// half-opens it: the next attempt goes through, and its outcome
/// closes or re-opens the circuit.
#[derive(Debug, Default)]
struct Breaker {
    consecutive: u32,
    open_until: Option<Instant>,
    opens: u32,
}

struct ShardState {
    id: u16,
    addr: SocketAddr,
    spawn: Option<ShardSpawnSpec>,
    child: Mutex<Option<Child>>,
    breaker: Mutex<Breaker>,
    crashes: AtomicU64,
    respawns: AtomicU64,
    breaker_opens: AtomicU64,
}

#[derive(Default)]
struct ClusterCounters {
    requests: AtomicU64,
    relayed_ok: AtomicU64,
    relayed_busy: AtomicU64,
    relayed_rejected: AtomicU64,
    relayed_quarantined: AtomicU64,
    relayed_errors: AtomicU64,
    failovers: AtomicU64,
    failover_cold: AtomicU64,
    lost_after_retry: AtomicU64,
    shard_crashes: AtomicU64,
    shard_respawns: AtomicU64,
    probe_failures: AtomicU64,
}

/// Final per-shard accounting inside [`ClusterStats`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Ring id of the shard.
    pub id: u32,
    /// Address the shard served on.
    pub addr: String,
    /// Times the shard's breaker opened.
    pub breaker_opens: u64,
    /// Child deaths observed (managed shards only).
    pub crashes: u64,
    /// Respawns performed (managed shards only).
    pub respawns: u64,
    /// The shard's own final stats, collected during the drain.
    /// `None` when the shard was unreachable at drain time.
    pub stats: Option<ServerStats>,
}

/// The merged, versioned drain envelope: front-tier accounting plus
/// every shard's final [`ServerStats`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ClusterStats {
    /// Envelope schema version ([`CLUSTER_STATS_SCHEMA`]).
    pub schema_version: u32,
    /// Client requests the front routed (Health/Metrics/Shutdown
    /// answered inline are not counted).
    pub requests: u64,
    /// Relayed responses by kind.
    pub relayed_ok: u64,
    /// Relayed `Busy` responses.
    pub relayed_busy: u64,
    /// Relayed `Rejected` responses.
    pub relayed_rejected: u64,
    /// Relayed `Quarantined` responses.
    pub relayed_quarantined: u64,
    /// Relayed request-level `Error` responses.
    pub relayed_errors: u64,
    /// Requests answered by a shard other than their ring primary.
    pub failovers: u64,
    /// Failovers that were answered `Ok` — the secondary accepted the
    /// work (cold build and all).
    pub failover_cold: u64,
    /// Requests that exhausted every forward attempt without any typed
    /// shard answer. The cluster bench requires this to be zero.
    pub lost_after_retry: u64,
    /// Managed-shard deaths observed.
    pub shard_crashes: u64,
    /// Managed-shard respawns performed.
    pub shard_respawns: u64,
    /// Health probes that failed.
    pub probe_failures: u64,
    /// Per-shard breakdown.
    pub shards: Vec<ShardStats>,
}

struct ClusterShared {
    cfg: ClusterConfig,
    ring: HashRing,
    shards: Vec<ShardState>,
    running: AtomicBool,
    accept_stop: AtomicBool,
    counters: ClusterCounters,
}

/// Reasons a request is routed away from its primary, as the
/// `gnnmls_cluster_failovers_total{reason=...}` label.
const REASON_BREAKER: &str = "breaker";
const REASON_QUARANTINED: &str = "quarantined";
const REASON_STALL: &str = "stall";
const REASON_CONN: &str = "conn";

impl ClusterShared {
    fn begin_shutdown(&self) {
        self.running.store(false, Ordering::SeqCst);
    }

    fn shard(&self, id: u16) -> &ShardState {
        &self.shards[usize::from(id)]
    }

    /// Whether the shard's breaker currently refuses traffic. An
    /// expired cooldown half-opens the breaker (clears `open_until`)
    /// and lets the caller through as the probe.
    fn breaker_open(&self, id: u16) -> bool {
        let mut b = lock(&self.shard(id).breaker);
        match b.open_until {
            Some(until) if Instant::now() < until => true,
            Some(_) => {
                b.open_until = None;
                false
            }
            None => false,
        }
    }

    /// Remaining cooldown for an open breaker, ms (0 when closed).
    fn breaker_remaining_ms(&self, id: u16) -> u64 {
        let b = lock(&self.shard(id).breaker);
        match b.open_until {
            Some(until) => until.saturating_duration_since(Instant::now()).as_millis() as u64,
            None => 0,
        }
    }

    fn record_shard_failure(&self, id: u16) {
        let shard = self.shard(id);
        let mut b = lock(&shard.breaker);
        b.consecutive = b.consecutive.saturating_add(1);
        if b.consecutive >= self.cfg.breaker_threshold && b.open_until.is_none() {
            let base = self
                .cfg
                .breaker_cooldown_ms
                .max(1)
                .saturating_mul(1u64 << b.opens.min(6))
                .min(30_000);
            let jitter =
                splitmix64(self.cfg.seed ^ u64::from(id) ^ u64::from(b.opens)) % (base / 4 + 1);
            b.open_until = Some(Instant::now() + Duration::from_millis(base + jitter));
            b.opens = b.opens.saturating_add(1);
            shard.breaker_opens.fetch_add(1, Ordering::SeqCst);
            gnnmls_obs::event(
                "cluster_breaker_open",
                &[
                    ("shard", gnnmls_obs::FieldValue::U64(u64::from(id))),
                    ("cooldown_ms", gnnmls_obs::FieldValue::U64(base + jitter)),
                ],
            );
        }
    }

    fn record_shard_success(&self, id: u16) {
        let mut b = lock(&self.shard(id).breaker);
        b.consecutive = 0;
        b.open_until = None;
        b.opens = 0;
    }

    /// The `shard-crash` seam and the supervisor's reaction to a real
    /// child death: kill a managed child (external shards are only
    /// marked), force the breaker open so routing fails over at once,
    /// and count the crash.
    fn crash_shard(&self, id: u16) {
        let shard = self.shard(id);
        if let Some(child) = lock(&shard.child).as_mut() {
            let _ = child.kill();
        }
        {
            let mut b = lock(&shard.breaker);
            b.consecutive = b.consecutive.max(self.cfg.breaker_threshold);
            if b.open_until.is_none() {
                b.open_until =
                    Some(Instant::now() + Duration::from_millis(self.cfg.breaker_cooldown_ms));
                b.opens = b.opens.saturating_add(1);
                shard.breaker_opens.fetch_add(1, Ordering::SeqCst);
            }
        }
        shard.crashes.fetch_add(1, Ordering::SeqCst);
        self.counters.shard_crashes.fetch_add(1, Ordering::SeqCst);
    }

    /// Front-level health: shard breakers mapped into the same
    /// `QuarantineInfo` shape the single daemon reports, so existing
    /// tooling reads cluster health unchanged.
    fn health(&self) -> HealthStatus {
        let mut quarantine = Vec::new();
        let mut healthy = 0u64;
        for shard in &self.shards {
            let remaining = self.breaker_remaining_ms(shard.id);
            let strikes = lock(&shard.breaker).consecutive;
            if remaining > 0 {
                quarantine.push(QuarantineInfo {
                    key: u64::from(shard.id),
                    strikes,
                    open: true,
                    remaining_ms: remaining,
                });
            } else {
                healthy += 1;
            }
        }
        HealthStatus {
            ready: self.running.load(Ordering::SeqCst),
            queue_depth: 0,
            queue_capacity: 0,
            workers: healthy,
            watchdog_restarts: self.counters.shard_respawns.load(Ordering::SeqCst),
            admitted_cost: 0,
            admission_budget: 0,
            quarantine,
        }
    }

    fn stats_snapshot(&self, shards: Vec<ShardStats>) -> ClusterStats {
        let c = &self.counters;
        ClusterStats {
            schema_version: CLUSTER_STATS_SCHEMA,
            requests: c.requests.load(Ordering::SeqCst),
            relayed_ok: c.relayed_ok.load(Ordering::SeqCst),
            relayed_busy: c.relayed_busy.load(Ordering::SeqCst),
            relayed_rejected: c.relayed_rejected.load(Ordering::SeqCst),
            relayed_quarantined: c.relayed_quarantined.load(Ordering::SeqCst),
            relayed_errors: c.relayed_errors.load(Ordering::SeqCst),
            failovers: c.failovers.load(Ordering::SeqCst),
            failover_cold: c.failover_cold.load(Ordering::SeqCst),
            lost_after_retry: c.lost_after_retry.load(Ordering::SeqCst),
            shard_crashes: c.shard_crashes.load(Ordering::SeqCst),
            shard_respawns: c.shard_respawns.load(Ordering::SeqCst),
            probe_failures: c.probe_failures.load(Ordering::SeqCst),
            shards,
        }
    }
}

/// Reads one response with an absolute deadline. The socket carries a
/// short read-timeout slice; the closure turns "still nothing at the
/// deadline" into a typed stall instead of blocking forever.
fn read_response_deadline(
    stream: &mut TcpStream,
    deadline: Instant,
) -> Result<Response, FrameError> {
    match read_frame_idle(stream, || Instant::now() < deadline)? {
        Some(resp) => Ok(resp),
        None => Err(FrameError::Stalled),
    }
}

/// One health probe against a shard. `Ok` only when the daemon answers
/// a `Health` request with `ready`.
fn probe_health(addr: SocketAddr, timeout: Duration) -> bool {
    let Ok(mut stream) = TcpStream::connect_timeout(&addr, timeout) else {
        return false;
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_write_timeout(Some(timeout));
    if write_frame(&mut stream, &Request::health(0)).is_err() {
        return false;
    }
    match read_response_deadline(&mut stream, Instant::now() + timeout) {
        Ok(resp) => resp.kind == ResponseKind::Ok && resp.health.map(|h| h.ready).unwrap_or(false),
        Err(_) => false,
    }
}

fn spawn_shard(spawn: &ShardSpawnSpec, addr: SocketAddr) -> std::io::Result<Child> {
    Command::new(&spawn.exe)
        .args(&spawn.args)
        .arg("--addr")
        .arg(addr.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
}

/// The supervisor: reaps and respawns dead managed children, probes
/// every shard's health, and feeds the per-shard breakers.
fn prober_loop(shared: &Arc<ClusterShared>) {
    while shared.running.load(Ordering::SeqCst) {
        for shard in &shared.shards {
            if !shared.running.load(Ordering::SeqCst) {
                return;
            }
            // Reap + respawn a dead managed child.
            if let Some(spawn) = &shard.spawn {
                let mut child = lock(&shard.child);
                let dead = match child.as_mut() {
                    Some(c) => matches!(c.try_wait(), Ok(Some(_))),
                    None => true,
                };
                if dead {
                    if child.take().is_some() {
                        // Died since we last looked (the crash_shard
                        // seam counts its own kills).
                        shard.crashes.fetch_add(1, Ordering::SeqCst);
                        shared.counters.shard_crashes.fetch_add(1, Ordering::SeqCst);
                    }
                    match spawn_shard(spawn, shard.addr) {
                        Ok(c) => {
                            *child = Some(c);
                            shard.respawns.fetch_add(1, Ordering::SeqCst);
                            shared
                                .counters
                                .shard_respawns
                                .fetch_add(1, Ordering::SeqCst);
                            gnnmls_obs::event(
                                "cluster_shard_respawn",
                                &[("shard", gnnmls_obs::FieldValue::U64(u64::from(shard.id)))],
                            );
                        }
                        Err(e) => gnnmls_obs::warn(
                            "gnnmls-cluster",
                            &format!("could not respawn shard {}: {e}", shard.id),
                        ),
                    }
                }
            }
            // Health probe; outcome feeds the breaker either way.
            let t0 = Instant::now();
            let ok = probe_health(
                shard.addr,
                Duration::from_millis(shared.cfg.probe_timeout_ms.max(1)),
            );
            let shard_label = shard.id.to_string();
            gnnmls_obs::observe(
                "gnnmls_cluster_probe_ms",
                &[("shard", &shard_label)],
                &[1, 5, 25, 100, 500, 2_000],
                t0.elapsed().as_millis() as u64,
            );
            if ok {
                shared.record_shard_success(shard.id);
            } else {
                shared
                    .counters
                    .probe_failures
                    .fetch_add(1, Ordering::SeqCst);
                shared.record_shard_failure(shard.id);
            }
        }
        // Sleep in slices so a drain is never stuck behind a full
        // probe interval.
        let deadline = Instant::now() + Duration::from_millis(shared.cfg.probe_interval_ms.max(1));
        while shared.running.load(Ordering::SeqCst) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// Per-connection cache of backend streams. Any non-clean exchange
/// drops the stream: a desynchronized backend connection would pair
/// the next request with a stale response.
struct BackendConns {
    streams: HashMap<u16, TcpStream>,
}

impl BackendConns {
    fn new() -> Self {
        Self {
            streams: HashMap::new(),
        }
    }

    fn get(&mut self, shard: &ShardState, timeout: Duration) -> Option<&mut TcpStream> {
        if let std::collections::hash_map::Entry::Vacant(slot) = self.streams.entry(shard.id) {
            let stream = TcpStream::connect_timeout(&shard.addr, timeout).ok()?;
            let _ = stream.set_nodelay(true);
            let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
            let _ = stream.set_write_timeout(Some(timeout));
            slot.insert(stream);
        }
        self.streams.get_mut(&shard.id)
    }

    fn drop_conn(&mut self, id: u16) {
        self.streams.remove(&id);
    }
}

/// One forward attempt against one shard. `Err` means the shard gave
/// no usable answer (connect/write/read failure, stall, torn
/// connection, or an injected fault); the caller records the breaker
/// failure and decides where the next attempt goes.
fn forward_once(
    shared: &ClusterShared,
    conns: &mut BackendConns,
    target: u16,
    req: &Request,
) -> Result<Response, FrameError> {
    let shard = shared.shard(target);
    let connect_timeout = Duration::from_millis(shared.cfg.probe_timeout_ms.max(1));
    let Some(stream) = conns.get(shard, connect_timeout) else {
        return Err(FrameError::Io(std::io::Error::new(
            std::io::ErrorKind::ConnectionRefused,
            format!("shard {target} unreachable"),
        )));
    };
    if let Err(e) = write_frame(stream, req) {
        conns.drop_conn(target);
        return Err(e);
    }
    // Deterministic seam: the connection tears right after the request
    // frame went out — the shard may or may not have processed it, the
    // front never sees the answer.
    if fire(FaultSite::ConnReset) {
        if let Some(s) = conns.streams.get(&target) {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        conns.drop_conn(target);
        return Err(FrameError::Io(std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "injected front\u{2194}shard connection reset",
        )));
    }
    // Deterministic seam: the shard holds the answer past the forward
    // deadline. The stream is desynchronized (the real answer is still
    // coming), so it must be dropped.
    if fire(FaultSite::ShardStall) {
        conns.drop_conn(target);
        return Err(FrameError::Stalled);
    }
    let deadline = Instant::now() + Duration::from_millis(shared.cfg.forward_timeout_ms.max(1));
    match read_response_deadline(stream, deadline) {
        Ok(resp) => Ok(resp),
        Err(e) => {
            conns.drop_conn(target);
            Err(e)
        }
    }
}

fn count_failover_reason(reason: &str) {
    gnnmls_obs::counter_add("gnnmls_cluster_failovers_total", &[("reason", reason)], 1);
}

/// Routes one request: primary first, deterministic secondary on
/// failure, bounded seeded-jitter retries, `retry_after_ms` honored as
/// the backoff floor when re-attempting the same shard.
fn route_and_forward(shared: &ClusterShared, conns: &mut BackendConns, req: &Request) -> Response {
    shared.counters.requests.fetch_add(1, Ordering::SeqCst);
    let key = req.spec.cache_key();
    let Some(primary) = shared.ring.primary(key) else {
        return Response::error(req.id, "cluster has no shards");
    };
    let secondary = shared.ring.secondary(key);
    let other = |s: u16| {
        if s == primary {
            secondary
        } else {
            Some(primary)
        }
    };
    let policy = RetryPolicy {
        max_attempts: shared.cfg.retries.max(1),
        base_delay_ms: shared.cfg.retry_base_ms,
        max_delay_ms: shared.cfg.retry_max_ms,
        seed: shared.cfg.seed ^ key,
    };
    let attempts = policy.max_attempts;
    let mut prefer = primary;
    let mut floor_ms: Option<u64> = None;
    let mut last = String::from("no attempt made");
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(
                policy.delay_with_floor(attempt - 1, floor_ms.take()),
            ));
        }
        let mut target = prefer;
        // Breaker pre-check: an open target routes to the other shard
        // when that one is closed; both open falls through to the
        // preferred target as the half-open probe.
        if shared.breaker_open(target) {
            if let Some(alt) = other(target) {
                if !shared.breaker_open(alt) {
                    if target == primary {
                        count_failover_reason(REASON_BREAKER);
                    }
                    target = alt;
                }
            }
        }
        // Deterministic seam: the shard we are about to use crashes
        // now. The forward below fails and the failover path takes
        // over.
        if fire(FaultSite::ShardCrash) {
            shared.crash_shard(target);
        }
        match forward_once(shared, conns, target, req) {
            Ok(resp) if resp.id == req.id => {
                // Any well-formed answer proves the shard alive.
                shared.record_shard_success(target);
                match resp.kind {
                    ResponseKind::Busy => {
                        // Alive but loaded: back off, same target.
                        last = "busy".into();
                        prefer = target;
                    }
                    ResponseKind::Quarantined if attempt + 1 < attempts => {
                        // The spec's circuit is open on this shard. The
                        // secondary has its own (cold) session state,
                        // so fail over when we can; otherwise wait out
                        // the shard's own retry_after_ms.
                        last = "quarantined".into();
                        match other(target) {
                            Some(alt) if target == primary => {
                                count_failover_reason(REASON_QUARANTINED);
                                prefer = alt;
                            }
                            _ => {
                                floor_ms = resp.retry_after_ms;
                                prefer = target;
                            }
                        }
                    }
                    _ => return relay(shared, resp, target, primary),
                }
            }
            Ok(notice) => {
                // A connection-level notice (id 0: the shard is
                // draining or flagged the stream); the stream may be
                // closed behind it.
                last = notice.error.unwrap_or_else(|| "connection notice".into());
                conns.drop_conn(target);
                shared.record_shard_failure(target);
                if let Some(alt) = other(target) {
                    if target == primary {
                        count_failover_reason(REASON_CONN);
                    }
                    prefer = alt;
                }
            }
            Err(e) => {
                last = e.to_string();
                shared.record_shard_failure(target);
                let reason = match e {
                    FrameError::Stalled => REASON_STALL,
                    _ => REASON_CONN,
                };
                if let Some(alt) = other(target) {
                    if target == primary {
                        count_failover_reason(reason);
                    }
                    prefer = alt;
                }
            }
        }
    }
    shared
        .counters
        .lost_after_retry
        .fetch_add(1, Ordering::SeqCst);
    gnnmls_obs::counter_add(
        "gnnmls_cluster_requests_total",
        &[("shard", "none"), ("outcome", "lost")],
        1,
    );
    Response::error(
        req.id,
        format!("cluster: request not served after {attempts} attempts; last: {last}"),
    )
}

/// Final accounting for a relayed response: per-kind counters, the
/// per-shard outcome series, and the failover bookkeeping (a request
/// answered off its primary failed over; an `Ok` off-primary answer is
/// an accepted cold build).
fn relay(shared: &ClusterShared, resp: Response, answered_by: u16, primary: u16) -> Response {
    let c = &shared.counters;
    let outcome = match resp.kind {
        ResponseKind::Ok => {
            c.relayed_ok.fetch_add(1, Ordering::SeqCst);
            "ok"
        }
        ResponseKind::Busy => {
            c.relayed_busy.fetch_add(1, Ordering::SeqCst);
            "busy"
        }
        ResponseKind::Rejected => {
            c.relayed_rejected.fetch_add(1, Ordering::SeqCst);
            "rejected"
        }
        ResponseKind::Quarantined => {
            c.relayed_quarantined.fetch_add(1, Ordering::SeqCst);
            "quarantined"
        }
        ResponseKind::Error => {
            c.relayed_errors.fetch_add(1, Ordering::SeqCst);
            "error"
        }
    };
    if answered_by != primary {
        c.failovers.fetch_add(1, Ordering::SeqCst);
        if resp.kind == ResponseKind::Ok {
            c.failover_cold.fetch_add(1, Ordering::SeqCst);
        }
    }
    let shard_label = answered_by.to_string();
    gnnmls_obs::counter_add(
        "gnnmls_cluster_requests_total",
        &[("shard", &shard_label), ("outcome", outcome)],
        1,
    );
    resp
}

/// Broadcasts a `LoadModel` to every shard and merges the answers: the
/// roll is `Ok` only when every shard that answered swapped
/// successfully (the first refusal is relayed verbatim, annotated with
/// the shard id). Shards that are unreachable — dead, mid-respawn —
/// are skipped and counted; a respawned shard comes back on its
/// built-in models until the next broadcast, which is exactly what its
/// empty state serves anyway.
fn broadcast_load_model(
    shared: &ClusterShared,
    conns: &mut BackendConns,
    req: &Request,
) -> Response {
    let mut swapped: Option<Response> = None;
    let mut unreachable = 0u64;
    for shard in &shared.shards {
        match forward_once(shared, conns, shard.id, req) {
            Ok(resp) if resp.id == req.id => {
                shared.record_shard_success(shard.id);
                if resp.kind == ResponseKind::Ok {
                    if swapped.is_none() {
                        swapped = Some(resp);
                    }
                } else {
                    gnnmls_obs::counter_add(
                        "gnnmls_cluster_model_swaps_total",
                        &[("outcome", "refused")],
                        1,
                    );
                    let why = resp.error.clone().unwrap_or_else(|| "unknown".into());
                    return Response {
                        error: Some(format!("shard {} refused the model swap: {why}", shard.id)),
                        ..resp
                    };
                }
            }
            Ok(_) | Err(_) => {
                conns.drop_conn(shard.id);
                shared.record_shard_failure(shard.id);
                unreachable += 1;
            }
        }
    }
    match swapped {
        Some(resp) => {
            gnnmls_obs::counter_add("gnnmls_cluster_model_swaps_total", &[("outcome", "ok")], 1);
            if unreachable > 0 {
                gnnmls_obs::warn(
                    "gnnmls-cluster",
                    &format!("model swap skipped {unreachable} unreachable shard(s)"),
                );
            }
            resp
        }
        None => {
            gnnmls_obs::counter_add(
                "gnnmls_cluster_model_swaps_total",
                &[("outcome", "unreachable")],
                1,
            );
            Response::error(req.id, "model swap reached no shard")
        }
    }
}

fn front_conn_loop(shared: &Arc<ClusterShared>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(
        shared.cfg.read_timeout_ms.max(1),
    )));
    let _ = stream.set_nodelay(true);
    let mut conns = BackendConns::new();
    loop {
        let req: Request =
            match read_frame_idle(&mut stream, || shared.running.load(Ordering::SeqCst)) {
                Ok(Some(req)) => req,
                Ok(None) | Err(FrameError::Closed) => return,
                Err(e @ FrameError::Malformed(_)) => {
                    // Frame-aligned despite the bad payload: typed
                    // error, keep the connection.
                    if write_frame(&mut stream, &Response::error(0, e)).is_err() {
                        return;
                    }
                    continue;
                }
                Err(e) => {
                    let _ = write_frame(&mut stream, &Response::error(0, e));
                    return;
                }
            };
        // Shutdown / Health / Metrics are front-level; everything else
        // routes to a shard.
        if req.kind == RequestKind::Shutdown {
            let _ = write_frame(&mut stream, &Response::ok(req.id));
            shared.begin_shutdown();
            return;
        }
        if req.kind == RequestKind::Health {
            let resp = Response::ok(req.id).with_health(shared.health());
            if write_frame(&mut stream, &resp).is_err() {
                return;
            }
            continue;
        }
        if req.kind == RequestKind::Metrics {
            let resp = Response::ok(req.id).with_metrics(gnn_mls::api::metrics());
            if write_frame(&mut stream, &resp).is_err() {
                return;
            }
            continue;
        }
        // A model roll must land on every shard, not one ring target.
        if req.kind == RequestKind::LoadModel {
            let resp = broadcast_load_model(shared, &mut conns, &req);
            if write_frame(&mut stream, &resp).is_err() {
                return;
            }
            continue;
        }
        let resp = route_and_forward(shared, &mut conns, &req);
        if write_frame(&mut stream, &resp).is_err() {
            return;
        }
    }
}

/// Picks a free TCP port on the loopback interface.
fn free_loopback_addr() -> std::io::Result<SocketAddr> {
    let probe = TcpListener::bind("127.0.0.1:0")?;
    probe.local_addr()
}

/// A running cluster front; dropping it drains gracefully.
pub struct ClusterFront {
    shared: Arc<ClusterShared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    final_stats: Option<ClusterStats>,
}

impl ClusterFront {
    /// Spawns/attaches the backends, waits for every spawned shard to
    /// become healthy, binds the front, and starts routing.
    ///
    /// # Errors
    ///
    /// Bind/spawn failures, or a spawned shard that never became
    /// healthy inside `spawn_ready_timeout_ms`.
    pub fn start(cfg: ClusterConfig, backends: Vec<ShardBackendSpec>) -> std::io::Result<Self> {
        if backends.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a cluster needs at least one shard",
            ));
        }
        // Spawn all children first so their cold starts overlap, then
        // wait for readiness.
        let mut shards = Vec::with_capacity(backends.len());
        let mut spawned = Vec::new();
        for (i, backend) in backends.into_iter().enumerate() {
            let id = i as u16;
            match backend {
                ShardBackendSpec::External(addr) => shards.push(ShardState {
                    id,
                    addr,
                    spawn: None,
                    child: Mutex::new(None),
                    breaker: Mutex::new(Breaker::default()),
                    crashes: AtomicU64::new(0),
                    respawns: AtomicU64::new(0),
                    breaker_opens: AtomicU64::new(0),
                }),
                ShardBackendSpec::Spawn(spawn) => {
                    let addr = free_loopback_addr()?;
                    let child = spawn_shard(&spawn, addr)?;
                    spawned.push(id);
                    shards.push(ShardState {
                        id,
                        addr,
                        spawn: Some(spawn),
                        child: Mutex::new(Some(child)),
                        breaker: Mutex::new(Breaker::default()),
                        crashes: AtomicU64::new(0),
                        respawns: AtomicU64::new(0),
                        breaker_opens: AtomicU64::new(0),
                    });
                }
            }
        }
        let ready_deadline =
            Instant::now() + Duration::from_millis(cfg.spawn_ready_timeout_ms.max(1));
        for &id in &spawned {
            let shard = &shards[usize::from(id)];
            loop {
                if probe_health(
                    shard.addr,
                    Duration::from_millis(cfg.probe_timeout_ms.max(1)),
                ) {
                    break;
                }
                if Instant::now() >= ready_deadline {
                    // Best-effort teardown of what we already spawned.
                    for s in &shards {
                        if let Some(c) = lock(&s.child).as_mut() {
                            let _ = c.kill();
                        }
                    }
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        format!("shard {id} at {} never became healthy", shard.addr),
                    ));
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }

        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let ring = HashRing::new(shards.iter().map(|s| s.id));
        let shared = Arc::new(ClusterShared {
            cfg,
            ring,
            shards,
            running: AtomicBool::new(true),
            accept_stop: AtomicBool::new(false),
            counters: ClusterCounters::default(),
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_shared = Arc::clone(&shared);
        let accept_conns = Arc::clone(&conns);
        let acceptor = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut stream) = stream else { continue };
                if !accept_shared.running.load(Ordering::SeqCst) {
                    // Draining: typed refusal instead of a hang. Read
                    // the client's first frame (bounded) before
                    // refusing, so the close never races the client's
                    // own write into a reset that discards the refusal.
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
                    let _ = stream.set_write_timeout(Some(Duration::from_millis(1_000)));
                    let deadline = Instant::now() + Duration::from_millis(500);
                    let _ =
                        read_frame_idle::<Request, _, _>(&mut stream, || Instant::now() < deadline);
                    let _ = write_frame(
                        &mut stream,
                        &Response::rejected(0, "cluster front is draining; connection refused"),
                    );
                    continue;
                }
                let conn_shared = Arc::clone(&accept_shared);
                let handle = std::thread::spawn(move || front_conn_loop(&conn_shared, stream));
                lock(&accept_conns).push(handle);
            }
        });

        let prober_shared = Arc::clone(&shared);
        let prober = std::thread::spawn(move || prober_loop(&prober_shared));

        Ok(Self {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            prober: Some(prober),
            conns,
            final_stats: None,
        })
    }

    /// The front's bound address (resolves `:0` to the picked port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The backend shard addresses, in ring-id order.
    pub fn shard_addrs(&self) -> Vec<SocketAddr> {
        self.shared.shards.iter().map(|s| s.addr).collect()
    }

    /// OS pids of the managed shard children (empty entries for
    /// external shards).
    pub fn shard_pids(&self) -> Vec<Option<u32>> {
        self.shared
            .shards
            .iter()
            .map(|s| lock(&s.child).as_ref().map(Child::id))
            .collect()
    }

    /// Whether the front is still accepting work.
    pub fn is_running(&self) -> bool {
        self.shared.running.load(Ordering::SeqCst)
    }

    /// The ring primary for a session cache key (`None` only on an
    /// impossible empty ring). Used by the load generator and tests to
    /// pick a meaningful kill victim.
    pub fn primary_shard(&self, key: u64) -> Option<u16> {
        self.shared.ring.primary(key)
    }

    /// The ring's deterministic failover target for a key.
    pub fn secondary_shard(&self, key: u64) -> Option<u16> {
        self.shared.ring.secondary(key)
    }

    /// Chaos hook: `kill -9` a managed shard child and let the
    /// supervisor *discover* the death (nothing else is touched — no
    /// breaker, no counters — exactly as if the process crashed on its
    /// own). Returns `false` for external or unknown shards.
    pub fn kill_shard(&self, id: u16) -> bool {
        let Some(shard) = self.shared.shards.get(usize::from(id)) else {
            return false;
        };
        match lock(&shard.child).as_mut() {
            Some(child) => child.kill().is_ok(),
            None => false,
        }
    }

    /// Current front counters (per-shard final stats not yet
    /// collected).
    pub fn stats(&self) -> ClusterStats {
        self.shared.stats_snapshot(Vec::new())
    }

    /// Blocks until a client `Shutdown` arrives, then drains.
    pub fn wait(mut self) -> ClusterStats {
        while self.is_running() {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.drain()
    }

    /// Initiates shutdown locally, drains, and returns the merged
    /// stats.
    pub fn shutdown(mut self) -> ClusterStats {
        self.shared.begin_shutdown();
        self.drain()
    }

    fn drain(&mut self) -> ClusterStats {
        self.shared.begin_shutdown();
        // Stop the supervisor first: a respawn racing the shard
        // shutdowns below would resurrect a shard we just drained.
        if let Some(prober) = self.prober.take() {
            let _ = prober.join();
        }
        // The acceptor keeps refusing new connections (typed) while
        // in-flight connections finish; then it exits and the
        // connection list is stable.
        self.shared.accept_stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let conn_handles: Vec<_> = lock(&self.conns).drain(..).collect();
        for conn in conn_handles {
            let _ = conn.join();
        }
        // Collect every shard's final stats, then drain the shards
        // themselves.
        let probe_timeout = Duration::from_millis(self.shared.cfg.probe_timeout_ms.max(1));
        let mut per_shard = Vec::with_capacity(self.shared.shards.len());
        for shard in &self.shared.shards {
            let stats = shard_final_stats(shard.addr, probe_timeout);
            per_shard.push(ShardStats {
                id: u32::from(shard.id),
                addr: shard.addr.to_string(),
                breaker_opens: shard.breaker_opens.load(Ordering::SeqCst),
                crashes: shard.crashes.load(Ordering::SeqCst),
                respawns: shard.respawns.load(Ordering::SeqCst),
                stats,
            });
        }
        for shard in &self.shared.shards {
            if let Ok(mut stream) = TcpStream::connect_timeout(&shard.addr, probe_timeout) {
                let _ = stream.set_write_timeout(Some(probe_timeout));
                let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
                if write_frame(&mut stream, &Request::shutdown(1)).is_ok() {
                    let _ = read_response_deadline(&mut stream, Instant::now() + probe_timeout);
                }
            }
            // Wait for a managed child to exit; kill it if it will not.
            if let Some(mut child) = lock(&shard.child).take() {
                let deadline = Instant::now()
                    + Duration::from_millis(self.shared.cfg.shard_exit_timeout_ms.max(1));
                loop {
                    match child.try_wait() {
                        Ok(Some(_)) => break,
                        Ok(None) if Instant::now() >= deadline => {
                            let _ = child.kill();
                            let _ = child.wait();
                            break;
                        }
                        Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                        Err(_) => break,
                    }
                }
            }
        }
        let stats = self.shared.stats_snapshot(per_shard);
        if let Some(dir) = &self.shared.cfg.checkpoint_dir {
            save_stage_logged(dir, CLUSTER_STATS_STAGE, &stats, "gnnmls-cluster");
        }
        self.final_stats = Some(stats.clone());
        stats
    }
}

impl Drop for ClusterFront {
    fn drop(&mut self) {
        if self.final_stats.is_none() {
            let _ = self.drain();
        }
    }
}

/// Asks a shard for its final [`ServerStats`] (any valid spec works;
/// the per-session payload is ignored here).
fn shard_final_stats(addr: SocketAddr, timeout: Duration) -> Option<ServerStats> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout).ok()?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(timeout));
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let spec = gnn_mls::session::SessionSpec::fast("maeri16");
    write_frame(&mut stream, &Request::stats(1, spec)).ok()?;
    let resp = read_response_deadline(&mut stream, Instant::now() + timeout).ok()?;
    resp.stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared_with(cfg: ClusterConfig, n: u16) -> ClusterShared {
        let shards = (0..n)
            .map(|id| ShardState {
                id,
                addr: "127.0.0.1:1".parse().unwrap(),
                spawn: None,
                child: Mutex::new(None),
                breaker: Mutex::new(Breaker::default()),
                crashes: AtomicU64::new(0),
                respawns: AtomicU64::new(0),
                breaker_opens: AtomicU64::new(0),
            })
            .collect();
        ClusterShared {
            ring: HashRing::new(0..n),
            cfg,
            shards,
            running: AtomicBool::new(true),
            accept_stop: AtomicBool::new(false),
            counters: ClusterCounters::default(),
        }
    }

    #[test]
    fn breaker_opens_at_threshold_and_half_opens_after_cooldown() {
        let cfg = ClusterConfig {
            breaker_threshold: 2,
            breaker_cooldown_ms: 30,
            ..Default::default()
        };
        let s = shared_with(cfg, 2);
        assert!(!s.breaker_open(0));
        s.record_shard_failure(0);
        assert!(!s.breaker_open(0), "one strike must not open the breaker");
        s.record_shard_failure(0);
        assert!(s.breaker_open(0));
        assert!(s.breaker_remaining_ms(0) >= 1);
        assert!(!s.breaker_open(1), "breakers are per shard");
        // Cooldown (30ms base + at most 8ms jitter) expires: half-open.
        std::thread::sleep(Duration::from_millis(60));
        assert!(!s.breaker_open(0), "cooldown over: one probe may pass");
        // A failed probe re-opens immediately (consecutive persists).
        s.record_shard_failure(0);
        assert!(s.breaker_open(0));
        // Success closes it and forgets the history.
        s.record_shard_success(0);
        assert!(!s.breaker_open(0));
        assert_eq!(lock(&s.shard(0).breaker).opens, 0);
    }

    #[test]
    fn crash_marks_breaker_open_and_counts() {
        let s = shared_with(ClusterConfig::default(), 2);
        s.crash_shard(1);
        assert!(s.breaker_open(1));
        assert_eq!(s.counters.shard_crashes.load(Ordering::SeqCst), 1);
        assert_eq!(s.shard(1).crashes.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn health_maps_open_breakers_to_quarantine_entries() {
        let cfg = ClusterConfig {
            breaker_threshold: 1,
            breaker_cooldown_ms: 10_000,
            ..Default::default()
        };
        let s = shared_with(cfg, 3);
        s.record_shard_failure(2);
        let h = s.health();
        assert!(h.ready);
        assert_eq!(h.workers, 2, "two shards still healthy");
        assert_eq!(h.quarantine.len(), 1);
        assert_eq!(h.quarantine[0].key, 2);
        assert!(h.quarantine[0].open);
        assert!(h.quarantine[0].remaining_ms > 0);
    }

    #[test]
    fn cluster_stats_round_trip_the_envelope_schema() {
        let s = shared_with(ClusterConfig::default(), 1);
        s.counters.requests.store(7, Ordering::SeqCst);
        s.counters.failovers.store(2, Ordering::SeqCst);
        let stats = s.stats_snapshot(vec![ShardStats {
            id: 0,
            addr: "127.0.0.1:7201".into(),
            breaker_opens: 1,
            crashes: 1,
            respawns: 1,
            stats: None,
        }]);
        assert_eq!(stats.schema_version, CLUSTER_STATS_SCHEMA);
        let json = serde_json::to_string(&stats).unwrap();
        let back: ClusterStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }
}

//! The `gnnmls serve --cluster` front tier: sharded warm-session
//! serving with health-checked failover.
//!
//! One daemon tops out at one box, and a single process death loses
//! every warm [`DesignSession`](gnn_mls::session::DesignSession). The
//! cluster front fixes both: it speaks the existing v2 wire protocol
//! natively, routes every request by
//! [`SessionSpec::cache_key`](gnn_mls::session::SessionSpec::cache_key)
//! through a consistent-hash [`HashRing`], and forwards the request
//! payload unchanged to the owning backend shard — so each design
//! builds warm exactly once cluster-wide and a cluster answer is
//! bit-identical to the single-daemon answer for the same request.
//!
//! The I/O plane is one readiness-driven reactor thread (the same
//! `gnnmls-reactor` loop the single daemon runs): client connections
//! and backend shard connections are multiplexed on one poller, each
//! forward is a nonblocking session with its own timer-wheel deadline,
//! and retries are timer events rather than sleeping threads. A shard
//! dying mid-forward surfaces as a typed failover reason on the loop —
//! never a thread blocked in `read(2)`. Because one backend connection
//! carries many concurrent forwards and a reactor shard answers out of
//! order, the front rewrites request ids to unique forward ids on the
//! wire and restores the client's id on relay.
//!
//! Robustness model, in order of engagement:
//!
//! - **Supervision.** Shards the front spawned are reaped and respawned
//!   when they die (`kill -9` included); every shard, spawned or
//!   external, is health-probed on an interval via the PR 4 `Health`
//!   request.
//! - **Circuit breakers.** Consecutive probe or forward failures open a
//!   per-shard breaker with a capped exponential + seeded-jitter
//!   cooldown; an open breaker routes the shard's keys to their
//!   deterministic secondary. On cooldown expiry the breaker
//!   half-opens: one request (or probe) goes through, a success closes
//!   it, a failure re-opens it for longer.
//! - **Failover.** A request whose target is dead, quarantined, or
//!   over-deadline retries against the ring's secondary shard for that
//!   key. The secondary cold-builds the session; that is accepted and
//!   counted (`failover_cold`) — availability beats warmth.
//! - **Bounded retry.** The front retries with the same capped
//!   seeded-jitter backoff the client uses, honoring a shard's
//!   `retry_after_ms` as the backoff floor when the next attempt would
//!   hit the same shard. A request that exhausts every attempt gets a
//!   typed error and is counted in `lost_after_retry` — the number the
//!   cluster bench requires to be zero.
//! - **Graceful drain.** Shutdown stops accepting (new connections get
//!   a typed `Rejected` immediately), lets in-flight forwards finish,
//!   collects each shard's final [`ServerStats`], shuts the shards
//!   down, and writes one versioned [`ClusterStats`] envelope as the
//!   `cluster-stats` checkpoint stage.
//!
//! Every failure path is deterministically testable through three
//! `gnnmls-faults` sites: `shard-crash` (the routed-to shard dies right
//! before the forward), `shard-stall` (the forward never completes
//! inside the deadline), and `conn-reset` (the front↔shard connection
//! tears after the request frame is written).

use std::collections::{HashMap, HashSet};
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gnn_mls::checkpoint::save_stage_logged;
use gnn_mls::session::ValidationError;
use gnnmls_faults::{fire, FaultSite};
use gnnmls_par::rng::splitmix64;
use gnnmls_reactor::net::{connect_nonblocking, connect_outcome};
use gnnmls_reactor::{
    wake_pair, FrameDecoder, Interest, Poller, TimerWheel, WakeReceiver, WriteQueue,
};
use serde::{Deserialize, Serialize};

use crate::client::RetryPolicy;
use crate::protocol::{
    decode_payload, encode_msg, read_frame_idle, write_frame, FrameError, HealthStatus,
    QuarantineInfo, Request, RequestKind, Response, ResponseKind, ServerStats, MAX_FRAME,
    PROTOCOL_VERSION,
};
use crate::ring::HashRing;
use crate::server::Completions;

/// Stage name of the merged drain checkpoint envelope.
pub const CLUSTER_STATS_STAGE: &str = "cluster-stats";

/// Schema version of [`ClusterStats`].
pub const CLUSTER_STATS_SCHEMA: u32 = 1;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Front-tier configuration. Defaults are production-ish; tests tighten
/// the timing knobs. Construct directly or go through
/// [`ClusterConfig::builder`] for validation.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Front bind address (`:0` picks a port).
    pub addr: String,
    /// Mid-frame stall timeout for client connections, ms (an idle
    /// connection between frames never times out).
    pub read_timeout_ms: u64,
    /// Health-probe interval per shard, ms.
    pub probe_interval_ms: u64,
    /// Connect/read timeout for one health probe, ms.
    pub probe_timeout_ms: u64,
    /// Consecutive failures that open a shard's breaker.
    pub breaker_threshold: u32,
    /// Base breaker cooldown, ms (doubles per re-open, capped).
    pub breaker_cooldown_ms: u64,
    /// Per-attempt deadline for a forwarded request, ms. Generous by
    /// default: a cold paper-scale session build is slow and must not
    /// read as a stall.
    pub forward_timeout_ms: u64,
    /// Total forward attempts per request (first try included).
    pub retries: u32,
    /// Base front-retry backoff, ms.
    pub retry_base_ms: u64,
    /// Front-retry backoff ceiling, ms.
    pub retry_max_ms: u64,
    /// Seed for breaker-cooldown and retry jitter.
    pub seed: u64,
    /// How long to wait for a spawned shard to become healthy, ms.
    pub spawn_ready_timeout_ms: u64,
    /// How long the drain waits for a shard process to exit before
    /// killing it, ms.
    pub shard_exit_timeout_ms: u64,
    /// Client connections the reactor keeps open at once; one beyond
    /// the cap is answered with a typed `Busy` and closed.
    pub max_connections: usize,
    /// Bytes read from one connection per readiness event — the
    /// fairness cap that stops a firehose client from starving the
    /// loop.
    pub read_budget: usize,
    /// Where the final [`ClusterStats`] envelope is written.
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            read_timeout_ms: 250,
            probe_interval_ms: 200,
            probe_timeout_ms: 2_000,
            breaker_threshold: 3,
            breaker_cooldown_ms: 500,
            forward_timeout_ms: 120_000,
            retries: 4,
            retry_base_ms: 10,
            retry_max_ms: 500,
            seed: 0x0C10_57E4,
            spawn_ready_timeout_ms: 60_000,
            shard_exit_timeout_ms: 10_000,
            max_connections: 16_384,
            read_budget: 64 * 1024,
            checkpoint_dir: None,
        }
    }
}

impl ClusterConfig {
    /// A checked builder seeded with the defaults;
    /// [`ClusterConfigBuilder::build`] validates every knob.
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder {
            cfg: Self::default(),
        }
    }

    /// Re-opens this config as a builder to derive a validated copy.
    pub fn to_builder(&self) -> ClusterConfigBuilder {
        ClusterConfigBuilder { cfg: self.clone() }
    }
}

macro_rules! cluster_builder_setters {
    ($($(#[$doc:meta])* $name:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            #[must_use]
            pub fn $name(mut self, $name: $ty) -> Self {
                self.cfg.$name = $name;
                self
            }
        )*
    };
}

/// Checked builder for [`ClusterConfig`] (see [`ClusterConfig::builder`]).
#[derive(Clone, Debug)]
pub struct ClusterConfigBuilder {
    cfg: ClusterConfig,
}

impl ClusterConfigBuilder {
    cluster_builder_setters! {
        /// Front bind address (`:0` picks a port).
        addr: String,
        /// Mid-frame stall timeout for client connections, ms.
        read_timeout_ms: u64,
        /// Health-probe interval per shard, ms.
        probe_interval_ms: u64,
        /// Connect/read timeout for one health probe, ms.
        probe_timeout_ms: u64,
        /// Consecutive failures that open a shard's breaker.
        breaker_threshold: u32,
        /// Base breaker cooldown, ms.
        breaker_cooldown_ms: u64,
        /// Per-attempt forward deadline, ms.
        forward_timeout_ms: u64,
        /// Total forward attempts per request.
        retries: u32,
        /// Base front-retry backoff, ms.
        retry_base_ms: u64,
        /// Front-retry backoff ceiling, ms.
        retry_max_ms: u64,
        /// Seed for breaker-cooldown and retry jitter.
        seed: u64,
        /// Spawned-shard readiness timeout, ms.
        spawn_ready_timeout_ms: u64,
        /// Drain wait for shard process exit, ms.
        shard_exit_timeout_ms: u64,
        /// Concurrent client-connection cap.
        max_connections: usize,
        /// Bytes read per connection per readiness event.
        read_budget: usize,
        /// Where the final stats envelope is written on drain.
        checkpoint_dir: Option<PathBuf>,
    }

    /// Validates every knob and returns the config.
    ///
    /// # Errors
    ///
    /// Returns [`ValidationError::BadConfig`] naming the first field
    /// outside its domain.
    pub fn build(self) -> Result<ClusterConfig, ValidationError> {
        let c = self.cfg;
        let bad = |field: &'static str, got: String, want: &'static str| {
            Err(ValidationError::BadConfig { field, got, want })
        };
        if c.addr.is_empty() {
            return bad("addr", "\"\"".to_string(), "a bind address");
        }
        if c.read_timeout_ms == 0 {
            return bad("read_timeout_ms", "0".to_string(), ">= 1");
        }
        if c.probe_interval_ms == 0 {
            return bad("probe_interval_ms", "0".to_string(), ">= 1");
        }
        if c.probe_timeout_ms == 0 {
            return bad("probe_timeout_ms", "0".to_string(), ">= 1");
        }
        if c.breaker_threshold == 0 {
            return bad("breaker_threshold", "0".to_string(), ">= 1");
        }
        if c.breaker_cooldown_ms == 0 {
            return bad("breaker_cooldown_ms", "0".to_string(), ">= 1");
        }
        if c.forward_timeout_ms == 0 {
            return bad("forward_timeout_ms", "0".to_string(), ">= 1");
        }
        if c.retries == 0 {
            return bad("retries", "0".to_string(), ">= 1");
        }
        if c.spawn_ready_timeout_ms == 0 {
            return bad("spawn_ready_timeout_ms", "0".to_string(), ">= 1");
        }
        if c.shard_exit_timeout_ms == 0 {
            return bad("shard_exit_timeout_ms", "0".to_string(), ">= 1");
        }
        if c.max_connections == 0 {
            return bad("max_connections", "0".to_string(), ">= 1");
        }
        if c.read_budget == 0 {
            return bad("read_budget", "0".to_string(), ">= 1");
        }
        Ok(c)
    }
}

/// How to (re)spawn one managed shard process.
#[derive(Clone, Debug)]
pub struct ShardSpawnSpec {
    /// The `gnnmls` binary.
    pub exe: PathBuf,
    /// Arguments ahead of the `--addr` pair (e.g. `["serve",
    /// "--queue", "64"]`).
    pub args: Vec<String>,
}

/// One backend shard the front should route to.
#[derive(Clone, Debug)]
pub enum ShardBackendSpec {
    /// An already-running daemon the front probes and routes to but
    /// does not supervise (used by the in-process tests).
    External(SocketAddr),
    /// A daemon the front spawns on a free port, supervises, and
    /// respawns on death.
    Spawn(ShardSpawnSpec),
}

/// Per-shard circuit breaker. Counts consecutive failures (probes and
/// forwards both); at the threshold the circuit opens for a capped
/// exponential cooldown with deterministic seeded jitter. Expiry
/// half-opens it: the next attempt goes through, and its outcome
/// closes or re-opens the circuit.
#[derive(Debug, Default)]
struct Breaker {
    consecutive: u32,
    open_until: Option<Instant>,
    opens: u32,
}

struct ShardState {
    id: u16,
    addr: SocketAddr,
    spawn: Option<ShardSpawnSpec>,
    child: Mutex<Option<Child>>,
    breaker: Mutex<Breaker>,
    crashes: AtomicU64,
    respawns: AtomicU64,
    breaker_opens: AtomicU64,
}

#[derive(Default)]
struct ClusterCounters {
    requests: AtomicU64,
    relayed_ok: AtomicU64,
    relayed_busy: AtomicU64,
    relayed_rejected: AtomicU64,
    relayed_quarantined: AtomicU64,
    relayed_errors: AtomicU64,
    failovers: AtomicU64,
    failover_cold: AtomicU64,
    lost_after_retry: AtomicU64,
    shard_crashes: AtomicU64,
    shard_respawns: AtomicU64,
    probe_failures: AtomicU64,
}

/// Final per-shard accounting inside [`ClusterStats`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Ring id of the shard.
    pub id: u32,
    /// Address the shard served on.
    pub addr: String,
    /// Times the shard's breaker opened.
    pub breaker_opens: u64,
    /// Child deaths observed (managed shards only).
    pub crashes: u64,
    /// Respawns performed (managed shards only).
    pub respawns: u64,
    /// The shard's own final stats, collected during the drain.
    /// `None` when the shard was unreachable at drain time.
    pub stats: Option<ServerStats>,
}

/// The merged, versioned drain envelope: front-tier accounting plus
/// every shard's final [`ServerStats`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ClusterStats {
    /// Envelope schema version ([`CLUSTER_STATS_SCHEMA`]).
    pub schema_version: u32,
    /// Client requests the front routed (Health/Metrics/Shutdown
    /// answered inline are not counted).
    pub requests: u64,
    /// Relayed responses by kind.
    pub relayed_ok: u64,
    /// Relayed `Busy` responses.
    pub relayed_busy: u64,
    /// Relayed `Rejected` responses.
    pub relayed_rejected: u64,
    /// Relayed `Quarantined` responses.
    pub relayed_quarantined: u64,
    /// Relayed request-level `Error` responses.
    pub relayed_errors: u64,
    /// Requests answered by a shard other than their ring primary.
    pub failovers: u64,
    /// Failovers that were answered `Ok` — the secondary accepted the
    /// work (cold build and all).
    pub failover_cold: u64,
    /// Requests that exhausted every forward attempt without any typed
    /// shard answer. The cluster bench requires this to be zero.
    pub lost_after_retry: u64,
    /// Managed-shard deaths observed.
    pub shard_crashes: u64,
    /// Managed-shard respawns performed.
    pub shard_respawns: u64,
    /// Health probes that failed.
    pub probe_failures: u64,
    /// Per-shard breakdown.
    pub shards: Vec<ShardStats>,
}

struct ClusterShared {
    cfg: ClusterConfig,
    ring: HashRing,
    shards: Vec<ShardState>,
    running: AtomicBool,
    accept_stop: AtomicBool,
    /// `LoadModel` broadcasts running on helper threads; the drain
    /// waits for them so a roll in flight still gets its answer.
    inflight_broadcasts: AtomicU64,
    counters: ClusterCounters,
}

/// Reasons a request is routed away from its primary, as the
/// `gnnmls_cluster_failovers_total{reason=...}` label.
const REASON_BREAKER: &str = "breaker";
const REASON_QUARANTINED: &str = "quarantined";
const REASON_STALL: &str = "stall";
const REASON_CONN: &str = "conn";

impl ClusterShared {
    fn begin_shutdown(&self) {
        self.running.store(false, Ordering::SeqCst);
    }

    fn shard(&self, id: u16) -> &ShardState {
        &self.shards[usize::from(id)]
    }

    /// Whether the shard's breaker currently refuses traffic. An
    /// expired cooldown half-opens the breaker (clears `open_until`)
    /// and lets the caller through as the probe.
    fn breaker_open(&self, id: u16) -> bool {
        let mut b = lock(&self.shard(id).breaker);
        match b.open_until {
            Some(until) if Instant::now() < until => true,
            Some(_) => {
                b.open_until = None;
                false
            }
            None => false,
        }
    }

    /// Remaining cooldown for an open breaker, ms (0 when closed).
    fn breaker_remaining_ms(&self, id: u16) -> u64 {
        let b = lock(&self.shard(id).breaker);
        match b.open_until {
            Some(until) => until.saturating_duration_since(Instant::now()).as_millis() as u64,
            None => 0,
        }
    }

    fn record_shard_failure(&self, id: u16) {
        let shard = self.shard(id);
        let mut b = lock(&shard.breaker);
        b.consecutive = b.consecutive.saturating_add(1);
        if b.consecutive >= self.cfg.breaker_threshold && b.open_until.is_none() {
            let base = self
                .cfg
                .breaker_cooldown_ms
                .max(1)
                .saturating_mul(1u64 << b.opens.min(6))
                .min(30_000);
            let jitter =
                splitmix64(self.cfg.seed ^ u64::from(id) ^ u64::from(b.opens)) % (base / 4 + 1);
            b.open_until = Some(Instant::now() + Duration::from_millis(base + jitter));
            b.opens = b.opens.saturating_add(1);
            shard.breaker_opens.fetch_add(1, Ordering::SeqCst);
            gnnmls_obs::event(
                "cluster_breaker_open",
                &[
                    ("shard", gnnmls_obs::FieldValue::U64(u64::from(id))),
                    ("cooldown_ms", gnnmls_obs::FieldValue::U64(base + jitter)),
                ],
            );
        }
    }

    fn record_shard_success(&self, id: u16) {
        let mut b = lock(&self.shard(id).breaker);
        b.consecutive = 0;
        b.open_until = None;
        b.opens = 0;
    }

    /// The `shard-crash` seam and the supervisor's reaction to a real
    /// child death: kill a managed child (external shards are only
    /// marked), force the breaker open so routing fails over at once,
    /// and count the crash.
    fn crash_shard(&self, id: u16) {
        let shard = self.shard(id);
        if let Some(child) = lock(&shard.child).as_mut() {
            let _ = child.kill();
        }
        {
            let mut b = lock(&shard.breaker);
            b.consecutive = b.consecutive.max(self.cfg.breaker_threshold);
            if b.open_until.is_none() {
                b.open_until =
                    Some(Instant::now() + Duration::from_millis(self.cfg.breaker_cooldown_ms));
                b.opens = b.opens.saturating_add(1);
                shard.breaker_opens.fetch_add(1, Ordering::SeqCst);
            }
        }
        shard.crashes.fetch_add(1, Ordering::SeqCst);
        self.counters.shard_crashes.fetch_add(1, Ordering::SeqCst);
    }

    /// Front-level health: shard breakers mapped into the same
    /// `QuarantineInfo` shape the single daemon reports, so existing
    /// tooling reads cluster health unchanged.
    fn health(&self) -> HealthStatus {
        let mut quarantine = Vec::new();
        let mut healthy = 0u64;
        for shard in &self.shards {
            let remaining = self.breaker_remaining_ms(shard.id);
            let strikes = lock(&shard.breaker).consecutive;
            if remaining > 0 {
                quarantine.push(QuarantineInfo {
                    key: u64::from(shard.id),
                    strikes,
                    open: true,
                    remaining_ms: remaining,
                });
            } else {
                healthy += 1;
            }
        }
        HealthStatus {
            ready: self.running.load(Ordering::SeqCst),
            queue_depth: 0,
            queue_capacity: 0,
            workers: healthy,
            watchdog_restarts: self.counters.shard_respawns.load(Ordering::SeqCst),
            admitted_cost: 0,
            admission_budget: 0,
            quarantine,
        }
    }

    fn stats_snapshot(&self, shards: Vec<ShardStats>) -> ClusterStats {
        let c = &self.counters;
        ClusterStats {
            schema_version: CLUSTER_STATS_SCHEMA,
            requests: c.requests.load(Ordering::SeqCst),
            relayed_ok: c.relayed_ok.load(Ordering::SeqCst),
            relayed_busy: c.relayed_busy.load(Ordering::SeqCst),
            relayed_rejected: c.relayed_rejected.load(Ordering::SeqCst),
            relayed_quarantined: c.relayed_quarantined.load(Ordering::SeqCst),
            relayed_errors: c.relayed_errors.load(Ordering::SeqCst),
            failovers: c.failovers.load(Ordering::SeqCst),
            failover_cold: c.failover_cold.load(Ordering::SeqCst),
            lost_after_retry: c.lost_after_retry.load(Ordering::SeqCst),
            shard_crashes: c.shard_crashes.load(Ordering::SeqCst),
            shard_respawns: c.shard_respawns.load(Ordering::SeqCst),
            probe_failures: c.probe_failures.load(Ordering::SeqCst),
            shards,
        }
    }
}

/// Reads one response with an absolute deadline. The socket carries a
/// short read-timeout slice; the closure turns "still nothing at the
/// deadline" into a typed stall instead of blocking forever.
fn read_response_deadline(
    stream: &mut TcpStream,
    deadline: Instant,
) -> Result<Response, FrameError> {
    match read_frame_idle(stream, || Instant::now() < deadline)? {
        Some(resp) => Ok(resp),
        None => Err(FrameError::Stalled),
    }
}

/// One health probe against a shard. `Ok` only when the daemon answers
/// a `Health` request with `ready`.
fn probe_health(addr: SocketAddr, timeout: Duration) -> bool {
    let Ok(mut stream) = TcpStream::connect_timeout(&addr, timeout) else {
        return false;
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_write_timeout(Some(timeout));
    if write_frame(&mut stream, &Request::health(0)).is_err() {
        return false;
    }
    match read_response_deadline(&mut stream, Instant::now() + timeout) {
        Ok(resp) => resp.kind == ResponseKind::Ok && resp.health.map(|h| h.ready).unwrap_or(false),
        Err(_) => false,
    }
}

fn spawn_shard(spawn: &ShardSpawnSpec, addr: SocketAddr) -> std::io::Result<Child> {
    Command::new(&spawn.exe)
        .args(&spawn.args)
        .arg("--addr")
        .arg(addr.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
}

/// The supervisor: reaps and respawns dead managed children, probes
/// every shard's health, and feeds the per-shard breakers.
fn prober_loop(shared: &Arc<ClusterShared>) {
    while shared.running.load(Ordering::SeqCst) {
        for shard in &shared.shards {
            if !shared.running.load(Ordering::SeqCst) {
                return;
            }
            // Reap + respawn a dead managed child.
            if let Some(spawn) = &shard.spawn {
                let mut child = lock(&shard.child);
                let dead = match child.as_mut() {
                    Some(c) => matches!(c.try_wait(), Ok(Some(_))),
                    None => true,
                };
                if dead {
                    if child.take().is_some() {
                        // Died since we last looked (the crash_shard
                        // seam counts its own kills).
                        shard.crashes.fetch_add(1, Ordering::SeqCst);
                        shared.counters.shard_crashes.fetch_add(1, Ordering::SeqCst);
                    }
                    match spawn_shard(spawn, shard.addr) {
                        Ok(c) => {
                            *child = Some(c);
                            shard.respawns.fetch_add(1, Ordering::SeqCst);
                            shared
                                .counters
                                .shard_respawns
                                .fetch_add(1, Ordering::SeqCst);
                            gnnmls_obs::event(
                                "cluster_shard_respawn",
                                &[("shard", gnnmls_obs::FieldValue::U64(u64::from(shard.id)))],
                            );
                        }
                        Err(e) => gnnmls_obs::warn(
                            "gnnmls-cluster",
                            &format!("could not respawn shard {}: {e}", shard.id),
                        ),
                    }
                }
            }
            // Health probe; outcome feeds the breaker either way.
            let t0 = Instant::now();
            let ok = probe_health(
                shard.addr,
                Duration::from_millis(shared.cfg.probe_timeout_ms.max(1)),
            );
            let shard_label = shard.id.to_string();
            gnnmls_obs::observe(
                "gnnmls_cluster_probe_ms",
                &[("shard", &shard_label)],
                &[1, 5, 25, 100, 500, 2_000],
                t0.elapsed().as_millis() as u64,
            );
            if ok {
                shared.record_shard_success(shard.id);
            } else {
                shared
                    .counters
                    .probe_failures
                    .fetch_add(1, Ordering::SeqCst);
                shared.record_shard_failure(shard.id);
            }
        }
        // Sleep in slices so a drain is never stuck behind a full
        // probe interval.
        let deadline = Instant::now() + Duration::from_millis(shared.cfg.probe_interval_ms.max(1));
        while shared.running.load(Ordering::SeqCst) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

fn count_failover_reason(reason: &str) {
    gnnmls_obs::counter_add("gnnmls_cluster_failovers_total", &[("reason", reason)], 1);
}

/// Final accounting for a relayed response: per-kind counters, the
/// per-shard outcome series, and the failover bookkeeping (a request
/// answered off its primary failed over; an `Ok` off-primary answer is
/// an accepted cold build).
fn relay(shared: &ClusterShared, resp: Response, answered_by: u16, primary: u16) -> Response {
    let c = &shared.counters;
    let outcome = match resp.kind {
        ResponseKind::Ok => {
            c.relayed_ok.fetch_add(1, Ordering::SeqCst);
            "ok"
        }
        ResponseKind::Busy => {
            c.relayed_busy.fetch_add(1, Ordering::SeqCst);
            "busy"
        }
        ResponseKind::Rejected => {
            c.relayed_rejected.fetch_add(1, Ordering::SeqCst);
            "rejected"
        }
        ResponseKind::Quarantined => {
            c.relayed_quarantined.fetch_add(1, Ordering::SeqCst);
            "quarantined"
        }
        ResponseKind::Error => {
            c.relayed_errors.fetch_add(1, Ordering::SeqCst);
            "error"
        }
    };
    if answered_by != primary {
        c.failovers.fetch_add(1, Ordering::SeqCst);
        if resp.kind == ResponseKind::Ok {
            c.failover_cold.fetch_add(1, Ordering::SeqCst);
        }
    }
    let shard_label = answered_by.to_string();
    gnnmls_obs::counter_add(
        "gnnmls_cluster_requests_total",
        &[("shard", &shard_label), ("outcome", outcome)],
        1,
    );
    resp
}

/// One blocking request/response exchange on a fresh connection, used
/// only by the `LoadModel` broadcast helper threads — the hot forward
/// path lives on the reactor.
fn broadcast_exchange(
    shared: &ClusterShared,
    target: u16,
    req: &Request,
) -> Result<Response, FrameError> {
    let addr = shared.shard(target).addr;
    let connect_timeout = Duration::from_millis(shared.cfg.probe_timeout_ms.max(1));
    let mut stream = TcpStream::connect_timeout(&addr, connect_timeout).map_err(|_| {
        FrameError::Io(std::io::Error::new(
            ErrorKind::ConnectionRefused,
            format!("shard {target} unreachable"),
        ))
    })?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_write_timeout(Some(connect_timeout));
    write_frame(&mut stream, req)?;
    let deadline = Instant::now() + Duration::from_millis(shared.cfg.forward_timeout_ms.max(1));
    read_response_deadline(&mut stream, deadline)
}

/// Broadcasts a `LoadModel` to every shard and merges the answers: the
/// roll is `Ok` only when every shard that answered swapped
/// successfully (the first refusal is relayed verbatim, annotated with
/// the shard id). Shards that are unreachable — dead, mid-respawn —
/// are skipped and counted; a respawned shard comes back on its
/// built-in models until the next broadcast, which is exactly what its
/// empty state serves anyway.
fn broadcast_load_model(shared: &ClusterShared, req: &Request) -> Response {
    let mut swapped: Option<Response> = None;
    let mut unreachable = 0u64;
    for shard in &shared.shards {
        match broadcast_exchange(shared, shard.id, req) {
            Ok(resp) if resp.id == req.id => {
                shared.record_shard_success(shard.id);
                if resp.kind == ResponseKind::Ok {
                    if swapped.is_none() {
                        swapped = Some(resp);
                    }
                } else {
                    gnnmls_obs::counter_add(
                        "gnnmls_cluster_model_swaps_total",
                        &[("outcome", "refused")],
                        1,
                    );
                    let why = resp.error.clone().unwrap_or_else(|| "unknown".into());
                    return Response {
                        error: Some(format!("shard {} refused the model swap: {why}", shard.id)),
                        ..resp
                    };
                }
            }
            Ok(_) | Err(_) => {
                shared.record_shard_failure(shard.id);
                unreachable += 1;
            }
        }
    }
    match swapped {
        Some(resp) => {
            gnnmls_obs::counter_add("gnnmls_cluster_model_swaps_total", &[("outcome", "ok")], 1);
            if unreachable > 0 {
                gnnmls_obs::warn(
                    "gnnmls-cluster",
                    &format!("model swap skipped {unreachable} unreachable shard(s)"),
                );
            }
            resp
        }
        None => {
            gnnmls_obs::counter_add(
                "gnnmls_cluster_model_swaps_total",
                &[("outcome", "unreachable")],
                1,
            );
            Response::error(req.id, "model swap reached no shard")
        }
    }
}

/// Timer-key namespace tags (high byte) so one wheel serves every
/// purpose without collisions: connection tokens and forward ids both
/// stay below 2^56.
const TAG_MASK: u64 = !((1u64 << 56) - 1);
/// A client connection stalled mid-frame.
const TAG_STALL: u64 = 1 << 56;
/// A connection accepted during the drain owes its typed refusal.
const TAG_REFUSE: u64 = 2 << 56;
/// A forward's backoff expired: run the next attempt.
const TAG_RETRY: u64 = 3 << 56;
/// A forward attempt's per-attempt deadline expired.
const TAG_DEADLINE: u64 = 4 << 56;

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const TOKEN_FIRST_CONN: u64 = 2;

/// Write backpressure: reading from a client pauses while its unsent
/// responses exceed this many bytes (the peer is not draining).
const WRITE_HIGH_WATER: usize = 1 << 20;

/// How long a connection accepted during a drain may idle before the
/// typed refusal goes out even without a request frame.
const DRAIN_REFUSE_MS: u64 = 500;

/// How long the drain waits for in-flight forwards and broadcasts
/// before abandoning them.
const DRAIN_FORWARD_GRACE_MS: u64 = 30_000;

/// One client connection's state on the front reactor.
struct FrontConn {
    stream: TcpStream,
    decoder: FrameDecoder,
    writes: WriteQueue,
    interest: Interest,
    /// Forwards (and broadcasts) running on behalf of this connection,
    /// not yet answered.
    inflight: usize,
    /// Accepted while draining: the first frame (or a timer) gets a
    /// typed refusal and nothing is served.
    refusing: bool,
    /// Stop serving; close once the write queue drains and no forward
    /// is in flight.
    closing: bool,
}

impl FrontConn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            decoder: FrameDecoder::new(PROTOCOL_VERSION, MAX_FRAME),
            writes: WriteQueue::new(),
            interest: Interest::READABLE,
            inflight: 0,
            refusing: false,
            closing: false,
        }
    }
}

/// One nonblocking backend connection, multiplexing every concurrent
/// forward to its shard. The reactor shard answers out of order, so
/// responses are matched back to forwards by the rewritten wire id in
/// `pending`.
struct BackendConn {
    stream: TcpStream,
    shard: u16,
    decoder: FrameDecoder,
    writes: WriteQueue,
    interest: Interest,
    /// Still mid nonblocking `connect(2)`: the first writability event
    /// resolves the handshake outcome.
    connecting: bool,
    /// Forward ids written to this connection and not yet answered. A
    /// torn connection fails them all over; an id no longer here is a
    /// late answer and is dropped.
    pending: HashSet<u64>,
}

/// One routed client request in flight: which client asked, where it
/// is being tried, and the retry budget — the reactor rendering of the
/// old per-thread `route_and_forward` loop state.
struct Forward {
    orig_id: u64,
    client: u64,
    req: Request,
    primary: u16,
    secondary: Option<u16>,
    /// Attempts finished (failed or retried) so far.
    attempt: u32,
    attempts: u32,
    /// Where the next attempt should go.
    prefer: u16,
    /// Where the current attempt went.
    target: u16,
    /// A shard's `retry_after_ms`, honored as the next backoff floor.
    floor_ms: Option<u64>,
    /// Last failure, quoted in the give-up error.
    last: String,
    policy: RetryPolicy,
}

/// The front's readiness-driven I/O plane: one thread owning every
/// client socket, every backend socket, every forward deadline and
/// retry timer.
struct FrontReactor {
    shared: Arc<ClusterShared>,
    completions: Arc<Completions>,
    listener: TcpListener,
    poller: Poller,
    timers: TimerWheel,
    wake_rx: WakeReceiver,
    clients: HashMap<u64, FrontConn>,
    backends: HashMap<u64, BackendConn>,
    /// Live backend connection per shard id.
    by_shard: HashMap<u16, u64>,
    forwards: HashMap<u64, Forward>,
    /// Shared token namespace for client and backend sockets.
    next_token: u64,
    /// Wire ids for forwards; 0 is reserved for connection notices.
    next_fwd: u64,
}

impl FrontReactor {
    fn run(&mut self) {
        let mut events = Vec::new();
        let mut fired: Vec<u64> = Vec::new();
        let mut drain_deadline: Option<Instant> = None;
        loop {
            if self.shared.accept_stop.load(Ordering::SeqCst) {
                // Let in-flight forwards and broadcasts finish (the
                // drain contract), but never wait forever on a wedged
                // shard.
                let dl = *drain_deadline.get_or_insert_with(|| {
                    Instant::now() + Duration::from_millis(DRAIN_FORWARD_GRACE_MS)
                });
                let idle = self.forwards.is_empty()
                    && self.shared.inflight_broadcasts.load(Ordering::SeqCst) == 0;
                if idle || Instant::now() >= dl {
                    self.final_flush();
                    return;
                }
            }
            // Cap the sleep so a lost wakeup can only ever delay — not
            // deadlock — a drain.
            let timeout = self
                .timers
                .next_deadline()
                .map_or(Duration::from_millis(500), |dl| {
                    dl.saturating_duration_since(Instant::now())
                })
                .min(Duration::from_millis(500));
            events.clear();
            let _ = self.poller.wait(&mut events, Some(timeout));
            for ev in &events {
                let (token, readable, writable, hangup) =
                    (ev.token, ev.readable, ev.writable, ev.hangup);
                match token {
                    TOKEN_LISTENER => self.on_accept(),
                    TOKEN_WAKER => {
                        self.wake_rx.drain();
                        self.deliver_completions();
                    }
                    _ if self.backends.contains_key(&token) => {
                        self.on_backend_event(token, readable, writable, hangup);
                    }
                    _ => self.on_client_event(token, readable, writable, hangup),
                }
            }
            fired.clear();
            self.timers.pop_expired(Instant::now(), &mut fired);
            for &key in &fired {
                self.on_timer(key);
            }
        }
    }

    fn on_accept(&mut self) {
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let token = self.next_token;
            self.next_token += 1;
            let mut conn = FrontConn::new(stream);
            if self
                .poller
                .register(conn.stream.as_raw_fd(), token, Interest::READABLE)
                .is_err()
            {
                continue;
            }
            if !self.shared.running.load(Ordering::SeqCst) {
                // Draining: wait (bounded) for the client's first frame
                // and answer it with a typed refusal — refusing before
                // the client writes would race a TCP reset that
                // discards the refusal before the client reads it.
                conn.refusing = true;
                self.clients.insert(token, conn);
                self.timers
                    .schedule_after(TAG_REFUSE | token, Duration::from_millis(DRAIN_REFUSE_MS));
                continue;
            }
            if self.clients.len() >= self.shared.cfg.max_connections.max(1) {
                gnnmls_obs::counter_add("gnnmls_cluster_conn_limited_total", &[], 1);
                conn.closing = true;
                self.clients.insert(token, conn);
                self.send_client(token, &Response::busy(0));
                continue;
            }
            self.clients.insert(token, conn);
        }
    }

    /// Answers with a typed stall notice and closes — the reactor's
    /// rendering of the old mid-frame read timeout.
    fn stall_out(&mut self, token: u64) {
        if let Some(conn) = self.clients.get_mut(&token) {
            conn.closing = true;
        }
        self.send_client(token, &Response::error(0, FrameError::Stalled));
    }

    /// Encodes and queues one response on a client, then flushes as
    /// much as the socket accepts. A gone connection swallows the
    /// response.
    fn send_client(&mut self, token: u64, resp: &Response) {
        let Some(conn) = self.clients.get_mut(&token) else {
            return;
        };
        match encode_msg(resp) {
            Ok(frame) => conn.writes.push(frame),
            Err(_) => {
                self.close_client(token);
                return;
            }
        }
        self.flush_client(token);
    }

    fn flush_client(&mut self, token: u64) {
        let flushed = {
            let Some(conn) = self.clients.get_mut(&token) else {
                return;
            };
            conn.writes.flush_to(&mut conn.stream)
        };
        match flushed {
            Ok(_) => self.settle_client(token),
            Err(_) => self.close_client(token),
        }
    }

    /// Closes a finished client or re-syncs its poll interest.
    fn settle_client(&mut self, token: u64) {
        let Some(conn) = self.clients.get(&token) else {
            return;
        };
        if conn.closing && conn.writes.is_empty() && conn.inflight == 0 {
            self.close_client(token);
        } else {
            self.update_client_interest(token);
        }
    }

    fn update_client_interest(&mut self, token: u64) {
        let Some(conn) = self.clients.get_mut(&token) else {
            return;
        };
        let want = Interest {
            readable: !conn.closing && conn.writes.buffered() < WRITE_HIGH_WATER,
            writable: !conn.writes.is_empty(),
        };
        if want.readable != conn.interest.readable || want.writable != conn.interest.writable {
            let fd = conn.stream.as_raw_fd();
            if self.poller.modify(fd, token, want).is_err() {
                self.close_client(token);
                return;
            }
            conn.interest = want;
        }
    }

    fn close_client(&mut self, token: u64) {
        if let Some(conn) = self.clients.remove(&token) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.timers.cancel(TAG_STALL | token);
            self.timers.cancel(TAG_REFUSE | token);
        }
    }

    fn on_client_event(&mut self, token: u64, readable: bool, writable: bool, hangup: bool) {
        if writable {
            self.flush_client(token);
        }
        if readable {
            self.on_client_readable(token);
        }
        if hangup && !readable {
            self.close_client(token);
        }
    }

    fn on_client_readable(&mut self, token: u64) {
        let budget = self.shared.cfg.read_budget.max(1);
        let eof = {
            let Some(conn) = self.clients.get_mut(&token) else {
                return;
            };
            if conn.closing || conn.writes.buffered() >= WRITE_HIGH_WATER {
                return;
            }
            match conn.decoder.fill_from(&mut conn.stream, budget) {
                Ok((_, eof)) => eof,
                Err(_) => {
                    self.close_client(token);
                    return;
                }
            }
        };
        loop {
            let (payload, refusing) = {
                let Some(conn) = self.clients.get_mut(&token) else {
                    return;
                };
                if conn.closing {
                    break;
                }
                match conn.decoder.next_frame() {
                    Ok(Some(payload)) => (payload, conn.refusing),
                    Ok(None) => break,
                    Err(e) => {
                        conn.closing = true;
                        self.send_client(token, &Response::error(0, FrameError::from(e)));
                        break;
                    }
                }
            };
            if refusing {
                self.refuse(token);
            } else {
                self.handle_payload(token, &payload);
            }
        }
        if eof {
            let truncated = {
                let Some(conn) = self.clients.get_mut(&token) else {
                    return;
                };
                let truncated = conn.decoder.mid_frame() && !conn.refusing && !conn.closing;
                conn.closing = true;
                truncated
            };
            if truncated {
                self.send_client(token, &Response::error(0, FrameError::Truncated));
            }
        }
        // Stall deadline: armed only while a frame is partially read —
        // an idle connection between frames never times out.
        let Some(conn) = self.clients.get(&token) else {
            return;
        };
        let (mid, closing) = (conn.decoder.mid_frame(), conn.closing);
        if mid && !closing {
            self.timers.schedule_after(
                TAG_STALL | token,
                Duration::from_millis(self.shared.cfg.read_timeout_ms.max(1)),
            );
        } else {
            self.timers.cancel(TAG_STALL | token);
        }
        self.settle_client(token);
    }

    /// Sends the typed drain refusal on a connection accepted while the
    /// front is shutting down.
    fn refuse(&mut self, token: u64) {
        self.timers.cancel(TAG_REFUSE | token);
        if let Some(conn) = self.clients.get_mut(&token) {
            conn.closing = true;
        }
        gnnmls_obs::counter_add("gnnmls_cluster_drain_refused_total", &[], 1);
        self.send_client(
            token,
            &Response::rejected(0, "cluster front is draining; connection refused"),
        );
    }

    /// Front-level dispatch for one decoded client frame. Shutdown,
    /// Health and Metrics are answered on the loop; a `LoadModel`
    /// broadcast runs on a helper thread (it must land on every shard,
    /// and a slow shard must not stall routing); everything else starts
    /// a nonblocking forward.
    fn handle_payload(&mut self, token: u64, payload: &[u8]) {
        let req: Request = match decode_payload(payload) {
            Ok(req) => req,
            Err(e) => {
                // Frame-aligned despite the bad payload: typed error,
                // keep the connection.
                self.send_client(token, &Response::error(0, e));
                return;
            }
        };
        match req.kind {
            RequestKind::Shutdown => {
                if let Some(conn) = self.clients.get_mut(&token) {
                    conn.closing = true;
                }
                self.send_client(token, &Response::ok(req.id));
                self.shared.begin_shutdown();
            }
            RequestKind::Health => {
                let resp = Response::ok(req.id).with_health(self.shared.health());
                self.send_client(token, &resp);
            }
            RequestKind::Metrics => {
                let resp = Response::ok(req.id).with_metrics(gnn_mls::api::metrics());
                self.send_client(token, &resp);
            }
            RequestKind::LoadModel => {
                if let Some(conn) = self.clients.get_mut(&token) {
                    conn.inflight += 1;
                }
                self.shared
                    .inflight_broadcasts
                    .fetch_add(1, Ordering::SeqCst);
                let shared = Arc::clone(&self.shared);
                let completions = Arc::clone(&self.completions);
                std::thread::spawn(move || {
                    let resp = broadcast_load_model(&shared, &req);
                    lock(&completions.ready).push((token, resp));
                    shared.inflight_broadcasts.fetch_sub(1, Ordering::SeqCst);
                    completions.waker.wake();
                });
            }
            _ => self.start_forward(token, req),
        }
    }

    /// Broadcast (and any other off-loop) responses coming home through
    /// the completion queue.
    fn deliver_completions(&mut self) {
        let ready = std::mem::take(&mut *lock(&self.completions.ready));
        for (token, resp) in ready {
            self.deliver_to_client(token, resp);
        }
    }

    /// Hands a finished response to the client that asked and settles
    /// the connection (a closing client whose last answer just left is
    /// reaped here).
    fn deliver_to_client(&mut self, token: u64, resp: Response) {
        if let Some(conn) = self.clients.get_mut(&token) {
            conn.inflight = conn.inflight.saturating_sub(1);
        }
        self.send_client(token, &resp);
        self.settle_client(token);
    }

    /// Routes one request: primary first, deterministic secondary on
    /// failure, bounded seeded-jitter retries as timer events.
    fn start_forward(&mut self, token: u64, req: Request) {
        self.shared.counters.requests.fetch_add(1, Ordering::SeqCst);
        let key = req.spec.cache_key();
        let Some(primary) = self.shared.ring.primary(key) else {
            self.send_client(token, &Response::error(req.id, "cluster has no shards"));
            return;
        };
        let secondary = self.shared.ring.secondary(key);
        let policy = RetryPolicy {
            max_attempts: self.shared.cfg.retries.max(1),
            base_delay_ms: self.shared.cfg.retry_base_ms,
            max_delay_ms: self.shared.cfg.retry_max_ms,
            seed: self.shared.cfg.seed ^ key,
        };
        let attempts = policy.max_attempts;
        let fwd_id = self.next_fwd;
        self.next_fwd += 1;
        if let Some(conn) = self.clients.get_mut(&token) {
            conn.inflight += 1;
        }
        self.forwards.insert(
            fwd_id,
            Forward {
                orig_id: req.id,
                client: token,
                req,
                primary,
                secondary,
                attempt: 0,
                attempts,
                prefer: primary,
                target: primary,
                floor_ms: None,
                last: "no attempt made".into(),
                policy,
            },
        );
        self.attempt_forward(fwd_id);
    }

    /// Runs one forward attempt: breaker pre-check picks the target,
    /// the frame (with its id rewritten to the forward id) goes onto
    /// the shard's nonblocking connection, and the per-attempt deadline
    /// is armed.
    fn attempt_forward(&mut self, fwd_id: u64) {
        let Some((prefer, primary, secondary)) = self
            .forwards
            .get(&fwd_id)
            .map(|f| (f.prefer, f.primary, f.secondary))
        else {
            return;
        };
        let mut target = prefer;
        // Breaker pre-check: an open target routes to the other shard
        // when that one is closed; both open falls through to the
        // preferred target as the half-open probe.
        if self.shared.breaker_open(target) {
            let alt = if target == primary {
                secondary
            } else {
                Some(primary)
            };
            if let Some(alt) = alt {
                if !self.shared.breaker_open(alt) {
                    if target == primary {
                        count_failover_reason(REASON_BREAKER);
                    }
                    target = alt;
                }
            }
        }
        // Deterministic seam: the shard we are about to use crashes
        // now. The forward below fails and the failover path takes
        // over.
        if fire(FaultSite::ShardCrash) {
            self.shared.crash_shard(target);
        }
        if let Some(f) = self.forwards.get_mut(&fwd_id) {
            f.target = target;
        }
        let Some(btoken) = self.ensure_backend(target) else {
            self.fail_attempt(fwd_id, REASON_CONN, format!("shard {target} unreachable"));
            return;
        };
        let frame = {
            let Some(f) = self.forwards.get(&fwd_id) else {
                return;
            };
            let wire_req = Request {
                id: fwd_id,
                ..f.req.clone()
            };
            match encode_msg(&wire_req) {
                Ok(frame) => frame,
                Err(e) => {
                    let why = e.to_string();
                    self.fail_attempt(fwd_id, REASON_CONN, why);
                    return;
                }
            }
        };
        if let Some(b) = self.backends.get_mut(&btoken) {
            b.writes.push(frame);
            b.pending.insert(fwd_id);
        }
        self.flush_backend(btoken);
        // The flush may have torn the connection down and already
        // failed this attempt over.
        let still_pending = self
            .backends
            .get(&btoken)
            .is_some_and(|b| b.pending.contains(&fwd_id));
        if !still_pending {
            return;
        }
        // Deterministic seam: the connection tears right after the
        // request frame went out — the shard may or may not have
        // processed it, the front never sees the answer.
        if fire(FaultSite::ConnReset) {
            if let Some(b) = self.backends.get(&btoken) {
                let _ = b.stream.shutdown(std::net::Shutdown::Both);
            }
            self.backend_failed(btoken, "injected front\u{2194}shard connection reset");
            return;
        }
        // Deterministic seam: the shard holds the answer past the
        // forward deadline.
        if fire(FaultSite::ShardStall) {
            if let Some(b) = self.backends.get_mut(&btoken) {
                b.pending.remove(&fwd_id);
            }
            self.fail_attempt(fwd_id, REASON_STALL, FrameError::Stalled.to_string());
            return;
        }
        self.timers.schedule_after(
            TAG_DEADLINE | fwd_id,
            Duration::from_millis(self.shared.cfg.forward_timeout_ms.max(1)),
        );
    }

    /// One attempt failed without a typed shard answer: feed the
    /// breaker, flip the preference to the other shard (counting the
    /// failover reason when leaving the primary), and schedule the next
    /// attempt.
    fn fail_attempt(&mut self, fwd_id: u64, reason: &'static str, last: String) {
        self.timers.cancel(TAG_DEADLINE | fwd_id);
        let Some((target, primary, secondary)) = self.forwards.get_mut(&fwd_id).map(|f| {
            f.last = last;
            (f.target, f.primary, f.secondary)
        }) else {
            return;
        };
        self.shared.record_shard_failure(target);
        let alt = if target == primary {
            secondary
        } else {
            Some(primary)
        };
        if let Some(alt) = alt {
            if target == primary {
                count_failover_reason(reason);
            }
            if let Some(f) = self.forwards.get_mut(&fwd_id) {
                f.prefer = alt;
            }
        }
        self.next_attempt(fwd_id);
    }

    /// Books the finished attempt and either schedules the retry timer
    /// (honoring a `retry_after_ms` floor) or gives up.
    fn next_attempt(&mut self, fwd_id: u64) {
        let delay = {
            let Some(f) = self.forwards.get_mut(&fwd_id) else {
                return;
            };
            f.attempt += 1;
            if f.attempt >= f.attempts {
                None
            } else {
                Some(f.policy.delay_with_floor(f.attempt - 1, f.floor_ms.take()))
            }
        };
        match delay {
            None => self.give_up(fwd_id),
            Some(ms) => {
                self.timers
                    .schedule_after(TAG_RETRY | fwd_id, Duration::from_millis(ms));
            }
        }
    }

    fn give_up(&mut self, fwd_id: u64) {
        let Some(f) = self.forwards.remove(&fwd_id) else {
            return;
        };
        self.shared
            .counters
            .lost_after_retry
            .fetch_add(1, Ordering::SeqCst);
        gnnmls_obs::counter_add(
            "gnnmls_cluster_requests_total",
            &[("shard", "none"), ("outcome", "lost")],
            1,
        );
        let resp = Response::error(
            f.orig_id,
            format!(
                "cluster: request not served after {} attempts; last: {}",
                f.attempts, f.last
            ),
        );
        self.deliver_to_client(f.client, resp);
    }

    /// A typed shard answer ends the forward: restore the client's id,
    /// run the relay accounting, deliver.
    fn complete_forward(&mut self, fwd_id: u64, resp: Response) {
        let Some(f) = self.forwards.remove(&fwd_id) else {
            return;
        };
        let resp = Response {
            id: f.orig_id,
            ..resp
        };
        let resp = relay(&self.shared, resp, f.target, f.primary);
        self.deliver_to_client(f.client, resp);
    }

    /// One decoded response frame from a backend. Id 0 is a
    /// connection-level notice (the shard is draining or flagged the
    /// stream) and fails every pending forward on this connection over;
    /// any other id is matched to its forward — or dropped as a late
    /// answer for an attempt that already failed over.
    fn on_backend_response(&mut self, btoken: u64, resp: Response) {
        if resp.id == 0 {
            let why = resp.error.unwrap_or_else(|| "connection notice".into());
            self.backend_failed(btoken, &why);
            return;
        }
        let fwd_id = resp.id;
        let known = self
            .backends
            .get_mut(&btoken)
            .is_some_and(|b| b.pending.remove(&fwd_id));
        if !known || !self.forwards.contains_key(&fwd_id) {
            return;
        }
        self.timers.cancel(TAG_DEADLINE | fwd_id);
        let Some((target, primary, secondary, attempt, attempts)) = self
            .forwards
            .get(&fwd_id)
            .map(|f| (f.target, f.primary, f.secondary, f.attempt, f.attempts))
        else {
            return;
        };
        // Any well-formed answer proves the shard alive.
        self.shared.record_shard_success(target);
        match resp.kind {
            ResponseKind::Busy => {
                // Alive but loaded: back off, same target.
                if let Some(f) = self.forwards.get_mut(&fwd_id) {
                    f.last = "busy".into();
                    f.prefer = target;
                }
                self.next_attempt(fwd_id);
            }
            ResponseKind::Quarantined if attempt + 1 < attempts => {
                // The spec's circuit is open on this shard. The
                // secondary has its own (cold) session state, so fail
                // over when we can; otherwise wait out the shard's own
                // retry_after_ms.
                let alt = if target == primary {
                    secondary
                } else {
                    Some(primary)
                };
                if let Some(f) = self.forwards.get_mut(&fwd_id) {
                    f.last = "quarantined".into();
                }
                match alt {
                    Some(alt) if target == primary => {
                        count_failover_reason(REASON_QUARANTINED);
                        if let Some(f) = self.forwards.get_mut(&fwd_id) {
                            f.prefer = alt;
                        }
                    }
                    _ => {
                        if let Some(f) = self.forwards.get_mut(&fwd_id) {
                            f.floor_ms = resp.retry_after_ms;
                            f.prefer = target;
                        }
                    }
                }
                self.next_attempt(fwd_id);
            }
            _ => self.complete_forward(fwd_id, resp),
        }
    }

    /// Tears down a backend connection and fails every pending forward
    /// over with a typed reason — the reactor guarantee that a shard
    /// dying mid-forward never strands a request (or a thread).
    fn backend_failed(&mut self, btoken: u64, why: &str) {
        let Some(conn) = self.backends.remove(&btoken) else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        if self.by_shard.get(&conn.shard) == Some(&btoken) {
            self.by_shard.remove(&conn.shard);
        }
        for fwd_id in conn.pending {
            self.fail_attempt(fwd_id, REASON_CONN, why.to_string());
        }
    }

    /// The live connection to a shard, opening one (nonblocking) when
    /// none exists. `None` when the connect cannot even start.
    fn ensure_backend(&mut self, shard: u16) -> Option<u64> {
        if let Some(&btoken) = self.by_shard.get(&shard) {
            if self.backends.contains_key(&btoken) {
                return Some(btoken);
            }
            self.by_shard.remove(&shard);
        }
        let addr = self.shared.shard(shard).addr;
        let stream = connect_nonblocking(addr).ok()?;
        let _ = stream.set_nodelay(true);
        let btoken = self.next_token;
        self.next_token += 1;
        if self
            .poller
            .register(stream.as_raw_fd(), btoken, Interest::BOTH)
            .is_err()
        {
            return None;
        }
        self.backends.insert(
            btoken,
            BackendConn {
                stream,
                shard,
                decoder: FrameDecoder::new(PROTOCOL_VERSION, MAX_FRAME),
                writes: WriteQueue::new(),
                interest: Interest::BOTH,
                connecting: true,
                pending: HashSet::new(),
            },
        );
        self.by_shard.insert(shard, btoken);
        Some(btoken)
    }

    fn on_backend_event(&mut self, btoken: u64, readable: bool, writable: bool, hangup: bool) {
        let connecting = self.backends.get(&btoken).is_some_and(|b| b.connecting);
        if connecting && (writable || hangup) {
            let outcome = self
                .backends
                .get(&btoken)
                .map(|b| connect_outcome(&b.stream));
            match outcome {
                Some(Ok(())) => {
                    if let Some(b) = self.backends.get_mut(&btoken) {
                        b.connecting = false;
                    }
                }
                Some(Err(e)) => {
                    self.backend_failed(btoken, &format!("shard connect failed: {e}"));
                    return;
                }
                None => return,
            }
        }
        if writable {
            self.flush_backend(btoken);
        }
        if readable {
            self.backend_readable(btoken);
        }
        if hangup && !readable {
            self.backend_failed(btoken, "connection reset");
        }
    }

    fn flush_backend(&mut self, btoken: u64) {
        let flushed = {
            let Some(b) = self.backends.get_mut(&btoken) else {
                return;
            };
            if b.connecting {
                // Mid-handshake: the frame stays queued until the
                // connect resolves.
                Ok(false)
            } else {
                b.writes.flush_to(&mut b.stream)
            }
        };
        match flushed {
            Ok(_) => self.update_backend_interest(btoken),
            Err(e) => self.backend_failed(btoken, &format!("frame io: {e}")),
        }
    }

    fn update_backend_interest(&mut self, btoken: u64) {
        let modify = {
            let Some(b) = self.backends.get_mut(&btoken) else {
                return;
            };
            let want = Interest {
                readable: true,
                writable: b.connecting || !b.writes.is_empty(),
            };
            if want.readable != b.interest.readable || want.writable != b.interest.writable {
                b.interest = want;
                Some((b.stream.as_raw_fd(), want))
            } else {
                None
            }
        };
        if let Some((fd, want)) = modify {
            if self.poller.modify(fd, btoken, want).is_err() {
                self.backend_failed(btoken, "poller modify failed");
            }
        }
    }

    fn backend_readable(&mut self, btoken: u64) {
        let budget = self.shared.cfg.read_budget.max(1);
        let filled: Result<bool, String> = {
            let Some(b) = self.backends.get_mut(&btoken) else {
                return;
            };
            match b.decoder.fill_from(&mut b.stream, budget) {
                Ok((_, eof)) => Ok(eof),
                Err(e) => Err(format!("frame io: {e}")),
            }
        };
        let eof = match filled {
            Ok(eof) => eof,
            Err(why) => {
                self.backend_failed(btoken, &why);
                return;
            }
        };
        loop {
            let frame = {
                let Some(b) = self.backends.get_mut(&btoken) else {
                    return;
                };
                b.decoder.next_frame()
            };
            match frame {
                Ok(Some(payload)) => match decode_payload::<Response>(&payload) {
                    Ok(resp) => self.on_backend_response(btoken, resp),
                    Err(e) => {
                        self.backend_failed(btoken, &e.to_string());
                        return;
                    }
                },
                Ok(None) => break,
                Err(e) => {
                    self.backend_failed(btoken, &FrameError::from(e).to_string());
                    return;
                }
            }
        }
        if eof {
            self.backend_failed(btoken, &FrameError::Closed.to_string());
        }
    }

    fn on_timer(&mut self, key: u64) {
        let id = key & !TAG_MASK;
        match key & TAG_MASK {
            TAG_STALL => {
                let stalled = self
                    .clients
                    .get(&id)
                    .is_some_and(|c| c.decoder.mid_frame() && !c.closing);
                if stalled {
                    self.stall_out(id);
                }
            }
            TAG_REFUSE => {
                let waiting = self
                    .clients
                    .get(&id)
                    .is_some_and(|c| c.refusing && !c.closing);
                if waiting {
                    self.refuse(id);
                }
            }
            TAG_RETRY => self.attempt_forward(id),
            TAG_DEADLINE => {
                // Over-deadline: forget the pending id on its backend
                // (a late answer is dropped by id — the connection
                // itself stays up and synchronized) and fail over.
                let target = self.forwards.get(&id).map(|f| f.target);
                if let Some(target) = target {
                    if let Some(&btoken) = self.by_shard.get(&target) {
                        if let Some(b) = self.backends.get_mut(&btoken) {
                            b.pending.remove(&id);
                        }
                    }
                    self.fail_attempt(id, REASON_STALL, FrameError::Stalled.to_string());
                }
            }
            _ => {}
        }
    }

    /// Post-drain epilogue: deliver what the broadcast threads owe,
    /// flush every client socket under a bounded grace period, then
    /// drop everything (closing all fds).
    fn final_flush(&mut self) {
        let grace = Instant::now() + Duration::from_secs(2);
        let mut events = Vec::new();
        loop {
            self.wake_rx.drain();
            self.deliver_completions();
            let owed: Vec<u64> = self
                .clients
                .iter()
                .filter(|(_, c)| !c.writes.is_empty())
                .map(|(&t, _)| t)
                .collect();
            for token in owed {
                self.flush_client(token);
            }
            let done = self.clients.values().all(|c| c.writes.is_empty())
                && lock(&self.completions.ready).is_empty();
            if done || Instant::now() >= grace {
                return;
            }
            events.clear();
            let _ = self
                .poller
                .wait(&mut events, Some(Duration::from_millis(20)));
        }
    }
}

/// Picks a free TCP port on the loopback interface.
fn free_loopback_addr() -> std::io::Result<SocketAddr> {
    let probe = TcpListener::bind("127.0.0.1:0")?;
    probe.local_addr()
}

/// A running cluster front; dropping it drains gracefully.
pub struct ClusterFront {
    shared: Arc<ClusterShared>,
    local_addr: SocketAddr,
    reactor: Option<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
    completions: Arc<Completions>,
    final_stats: Option<ClusterStats>,
}

impl ClusterFront {
    /// Spawns/attaches the backends, waits for every spawned shard to
    /// become healthy, binds the front, and starts routing.
    ///
    /// # Errors
    ///
    /// Bind/spawn failures, a spawned shard that never became healthy
    /// inside `spawn_ready_timeout_ms`, or the reactor's poller/waker
    /// plumbing failing to come up.
    pub fn start(cfg: ClusterConfig, backends: Vec<ShardBackendSpec>) -> std::io::Result<Self> {
        if backends.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a cluster needs at least one shard",
            ));
        }
        // Spawn all children first so their cold starts overlap, then
        // wait for readiness.
        let mut shards = Vec::with_capacity(backends.len());
        let mut spawned = Vec::new();
        for (i, backend) in backends.into_iter().enumerate() {
            let id = i as u16;
            match backend {
                ShardBackendSpec::External(addr) => shards.push(ShardState {
                    id,
                    addr,
                    spawn: None,
                    child: Mutex::new(None),
                    breaker: Mutex::new(Breaker::default()),
                    crashes: AtomicU64::new(0),
                    respawns: AtomicU64::new(0),
                    breaker_opens: AtomicU64::new(0),
                }),
                ShardBackendSpec::Spawn(spawn) => {
                    let addr = free_loopback_addr()?;
                    let child = spawn_shard(&spawn, addr)?;
                    spawned.push(id);
                    shards.push(ShardState {
                        id,
                        addr,
                        spawn: Some(spawn),
                        child: Mutex::new(Some(child)),
                        breaker: Mutex::new(Breaker::default()),
                        crashes: AtomicU64::new(0),
                        respawns: AtomicU64::new(0),
                        breaker_opens: AtomicU64::new(0),
                    });
                }
            }
        }
        let ready_deadline =
            Instant::now() + Duration::from_millis(cfg.spawn_ready_timeout_ms.max(1));
        for &id in &spawned {
            let shard = &shards[usize::from(id)];
            loop {
                if probe_health(
                    shard.addr,
                    Duration::from_millis(cfg.probe_timeout_ms.max(1)),
                ) {
                    break;
                }
                if Instant::now() >= ready_deadline {
                    // Best-effort teardown of what we already spawned.
                    for s in &shards {
                        if let Some(c) = lock(&s.child).as_mut() {
                            let _ = c.kill();
                        }
                    }
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        format!("shard {id} at {} never became healthy", shard.addr),
                    ));
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }

        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let ring = HashRing::new(shards.iter().map(|s| s.id));
        let shared = Arc::new(ClusterShared {
            cfg,
            ring,
            shards,
            running: AtomicBool::new(true),
            accept_stop: AtomicBool::new(false),
            inflight_broadcasts: AtomicU64::new(0),
            counters: ClusterCounters::default(),
        });

        let (waker, wake_rx) = wake_pair()?;
        let completions = Arc::new(Completions {
            ready: Mutex::new(Vec::new()),
            waker,
        });
        let mut poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)?;
        poller.register(wake_rx.raw_fd(), TOKEN_WAKER, Interest::READABLE)?;
        let mut reactor = FrontReactor {
            shared: Arc::clone(&shared),
            completions: Arc::clone(&completions),
            listener,
            poller,
            // 1ms granularity: retry backoffs and forward deadlines are
            // millisecond-scale; 512 slots keep the sweep cheap.
            timers: TimerWheel::new(Duration::from_millis(1), 512),
            wake_rx,
            clients: HashMap::new(),
            backends: HashMap::new(),
            by_shard: HashMap::new(),
            forwards: HashMap::new(),
            next_token: TOKEN_FIRST_CONN,
            next_fwd: 1,
        };
        let reactor = std::thread::spawn(move || reactor.run());

        let prober_shared = Arc::clone(&shared);
        let prober = std::thread::spawn(move || prober_loop(&prober_shared));

        Ok(Self {
            shared,
            local_addr,
            reactor: Some(reactor),
            prober: Some(prober),
            completions,
            final_stats: None,
        })
    }

    /// The front's bound address (resolves `:0` to the picked port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The backend shard addresses, in ring-id order.
    pub fn shard_addrs(&self) -> Vec<SocketAddr> {
        self.shared.shards.iter().map(|s| s.addr).collect()
    }

    /// OS pids of the managed shard children (empty entries for
    /// external shards).
    pub fn shard_pids(&self) -> Vec<Option<u32>> {
        self.shared
            .shards
            .iter()
            .map(|s| lock(&s.child).as_ref().map(Child::id))
            .collect()
    }

    /// Whether the front is still accepting work.
    pub fn is_running(&self) -> bool {
        self.shared.running.load(Ordering::SeqCst)
    }

    /// The ring primary for a session cache key (`None` only on an
    /// impossible empty ring). Used by the load generator and tests to
    /// pick a meaningful kill victim.
    pub fn primary_shard(&self, key: u64) -> Option<u16> {
        self.shared.ring.primary(key)
    }

    /// The ring's deterministic failover target for a key.
    pub fn secondary_shard(&self, key: u64) -> Option<u16> {
        self.shared.ring.secondary(key)
    }

    /// Chaos hook: `kill -9` a managed shard child and let the
    /// supervisor *discover* the death (nothing else is touched — no
    /// breaker, no counters — exactly as if the process crashed on its
    /// own). Returns `false` for external or unknown shards.
    pub fn kill_shard(&self, id: u16) -> bool {
        let Some(shard) = self.shared.shards.get(usize::from(id)) else {
            return false;
        };
        match lock(&shard.child).as_mut() {
            Some(child) => child.kill().is_ok(),
            None => false,
        }
    }

    /// Current front counters (per-shard final stats not yet
    /// collected).
    pub fn stats(&self) -> ClusterStats {
        self.shared.stats_snapshot(Vec::new())
    }

    /// Blocks until a client `Shutdown` arrives, then drains.
    pub fn wait(mut self) -> ClusterStats {
        while self.is_running() {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.drain()
    }

    /// Initiates shutdown locally, drains, and returns the merged
    /// stats.
    pub fn shutdown(mut self) -> ClusterStats {
        self.shared.begin_shutdown();
        self.drain()
    }

    /// Flips the front into draining mode without blocking: new
    /// connections get a typed `Rejected`, in-flight forwards finish.
    pub fn initiate_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    fn drain(&mut self) -> ClusterStats {
        self.shared.begin_shutdown();
        // Stop the supervisor first: a respawn racing the shard
        // shutdowns below would resurrect a shard we just drained.
        if let Some(prober) = self.prober.take() {
            let _ = prober.join();
        }
        // Now stop the reactor. It keeps running until in-flight
        // forwards and broadcasts are answered (refusing new
        // connections with a typed `Rejected` the whole time), runs its
        // final flush, and exits.
        self.shared.accept_stop.store(true, Ordering::SeqCst);
        self.completions.waker.wake();
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
        // Collect every shard's final stats, then drain the shards
        // themselves.
        let probe_timeout = Duration::from_millis(self.shared.cfg.probe_timeout_ms.max(1));
        let mut per_shard = Vec::with_capacity(self.shared.shards.len());
        for shard in &self.shared.shards {
            let stats = shard_final_stats(shard.addr, probe_timeout);
            per_shard.push(ShardStats {
                id: u32::from(shard.id),
                addr: shard.addr.to_string(),
                breaker_opens: shard.breaker_opens.load(Ordering::SeqCst),
                crashes: shard.crashes.load(Ordering::SeqCst),
                respawns: shard.respawns.load(Ordering::SeqCst),
                stats,
            });
        }
        for shard in &self.shared.shards {
            if let Ok(mut stream) = TcpStream::connect_timeout(&shard.addr, probe_timeout) {
                let _ = stream.set_write_timeout(Some(probe_timeout));
                let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
                if write_frame(&mut stream, &Request::shutdown(1)).is_ok() {
                    let _ = read_response_deadline(&mut stream, Instant::now() + probe_timeout);
                }
            }
            // Wait for a managed child to exit; kill it if it will not.
            if let Some(mut child) = lock(&shard.child).take() {
                let deadline = Instant::now()
                    + Duration::from_millis(self.shared.cfg.shard_exit_timeout_ms.max(1));
                loop {
                    match child.try_wait() {
                        Ok(Some(_)) => break,
                        Ok(None) if Instant::now() >= deadline => {
                            let _ = child.kill();
                            let _ = child.wait();
                            break;
                        }
                        Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                        Err(_) => break,
                    }
                }
            }
        }
        let stats = self.shared.stats_snapshot(per_shard);
        if let Some(dir) = &self.shared.cfg.checkpoint_dir {
            save_stage_logged(dir, CLUSTER_STATS_STAGE, &stats, "gnnmls-cluster");
        }
        self.final_stats = Some(stats.clone());
        stats
    }
}

impl Drop for ClusterFront {
    fn drop(&mut self) {
        if self.final_stats.is_none() {
            let _ = self.drain();
        }
    }
}

/// Asks a shard for its final [`ServerStats`] (any valid spec works;
/// the per-session payload is ignored here).
fn shard_final_stats(addr: SocketAddr, timeout: Duration) -> Option<ServerStats> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout).ok()?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(timeout));
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let spec = gnn_mls::session::SessionSpec::fast("maeri16");
    write_frame(&mut stream, &Request::stats(1, spec)).ok()?;
    let resp = read_response_deadline(&mut stream, Instant::now() + timeout).ok()?;
    resp.stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared_with(cfg: ClusterConfig, n: u16) -> ClusterShared {
        let shards = (0..n)
            .map(|id| ShardState {
                id,
                addr: "127.0.0.1:1".parse().unwrap(),
                spawn: None,
                child: Mutex::new(None),
                breaker: Mutex::new(Breaker::default()),
                crashes: AtomicU64::new(0),
                respawns: AtomicU64::new(0),
                breaker_opens: AtomicU64::new(0),
            })
            .collect();
        ClusterShared {
            ring: HashRing::new(0..n),
            cfg,
            shards,
            running: AtomicBool::new(true),
            accept_stop: AtomicBool::new(false),
            inflight_broadcasts: AtomicU64::new(0),
            counters: ClusterCounters::default(),
        }
    }

    #[test]
    fn breaker_opens_at_threshold_and_half_opens_after_cooldown() {
        let cfg = ClusterConfig {
            breaker_threshold: 2,
            breaker_cooldown_ms: 30,
            ..Default::default()
        };
        let s = shared_with(cfg, 2);
        assert!(!s.breaker_open(0));
        s.record_shard_failure(0);
        assert!(!s.breaker_open(0), "one strike must not open the breaker");
        s.record_shard_failure(0);
        assert!(s.breaker_open(0));
        assert!(s.breaker_remaining_ms(0) >= 1);
        assert!(!s.breaker_open(1), "breakers are per shard");
        // Cooldown (30ms base + at most 8ms jitter) expires: half-open.
        std::thread::sleep(Duration::from_millis(60));
        assert!(!s.breaker_open(0), "cooldown over: one probe may pass");
        // A failed probe re-opens immediately (consecutive persists).
        s.record_shard_failure(0);
        assert!(s.breaker_open(0));
        // Success closes it and forgets the history.
        s.record_shard_success(0);
        assert!(!s.breaker_open(0));
        assert_eq!(lock(&s.shard(0).breaker).opens, 0);
    }

    #[test]
    fn crash_marks_breaker_open_and_counts() {
        let s = shared_with(ClusterConfig::default(), 2);
        s.crash_shard(1);
        assert!(s.breaker_open(1));
        assert_eq!(s.counters.shard_crashes.load(Ordering::SeqCst), 1);
        assert_eq!(s.shard(1).crashes.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn health_maps_open_breakers_to_quarantine_entries() {
        let cfg = ClusterConfig {
            breaker_threshold: 1,
            breaker_cooldown_ms: 10_000,
            ..Default::default()
        };
        let s = shared_with(cfg, 3);
        s.record_shard_failure(2);
        let h = s.health();
        assert!(h.ready);
        assert_eq!(h.workers, 2, "two shards still healthy");
        assert_eq!(h.quarantine.len(), 1);
        assert_eq!(h.quarantine[0].key, 2);
        assert!(h.quarantine[0].open);
        assert!(h.quarantine[0].remaining_ms > 0);
    }

    #[test]
    fn cluster_stats_round_trip_the_envelope_schema() {
        let s = shared_with(ClusterConfig::default(), 1);
        s.counters.requests.store(7, Ordering::SeqCst);
        s.counters.failovers.store(2, Ordering::SeqCst);
        let stats = s.stats_snapshot(vec![ShardStats {
            id: 0,
            addr: "127.0.0.1:7201".into(),
            breaker_opens: 1,
            crashes: 1,
            respawns: 1,
            stats: None,
        }]);
        assert_eq!(stats.schema_version, CLUSTER_STATS_SCHEMA);
        let json = serde_json::to_string(&stats).unwrap();
        let back: ClusterStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn cluster_config_builder_validates_every_knob() {
        let cfg = ClusterConfig::builder()
            .read_timeout_ms(50)
            .retries(2)
            .max_connections(128)
            .build()
            .expect("valid config");
        assert_eq!(cfg.read_timeout_ms, 50);
        assert_eq!(cfg.retries, 2);
        assert_eq!(cfg.max_connections, 128);
        let err = ClusterConfig::builder().retries(0).build().unwrap_err();
        assert!(matches!(
            err,
            ValidationError::BadConfig {
                field: "retries",
                ..
            }
        ));
        let err = ClusterConfig::builder().read_budget(0).build().unwrap_err();
        assert!(matches!(
            err,
            ValidationError::BadConfig {
                field: "read_budget",
                ..
            }
        ));
    }
}

//! **gnnmls-serve** — a batched, backpressured what-if/inference daemon
//! with a warm design cache.
//!
//! The GNN-MLS flow's expensive part is the cold start: generate,
//! place, (train,) route, and analyze a design before the first what-if
//! or inference query can be answered. This crate keeps that state
//! **warm** in a long-lived daemon:
//!
//! - [`protocol`] — length-prefixed JSON frames with typed errors for
//!   every malformed/truncated/oversized/stalled case;
//! - [`admission`] — deep request validation and a cost-budget meter
//!   that reject or shed work *before* it takes a queue slot or the
//!   build lock;
//! - [`server`] — acceptor + bounded job queue (explicit `Busy`
//!   backpressure, never unbounded growth) + worker pool with inference
//!   micro-batching + LRU session cache + quarantine circuit breaker +
//!   worker watchdog + graceful drain-on-shutdown;
//! - [`client`] — a small blocking client with capped, seeded-jitter
//!   retries, used by the `gnnmls client` CLI and the tests.
//!
//! Determinism contract: a warm answer is bit-identical to the one-shot
//! CLI computing the same query, and a micro-batched inference response
//! is bit-identical to the unbatched one (asserted in the tests).

// Library code surfaces typed errors and obs events, never panics or
// raw prints (the CLI binary is the only place that talks to stdout).
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::print_stdout,
        clippy::print_stderr
    )
)]

pub mod admission;
pub mod client;
pub mod protocol;
pub mod server;

pub use admission::{request_cost, validate_request, AdmissionMeter};
pub use client::{Client, ClientError, RetryPolicy};
pub use protocol::{
    read_frame, read_frame_idle, write_frame, FrameError, HealthStatus, QuarantineInfo, Request,
    RequestKind, Response, ResponseKind, ServerStats, MAX_FRAME, PROTOCOL_VERSION,
};
pub use server::{ServeConfig, ServeConfigBuilder, ServeOpts, Server};

//! **gnnmls-serve** — a batched, backpressured what-if/inference daemon
//! with a warm design cache.
//!
//! The GNN-MLS flow's expensive part is the cold start: generate,
//! place, (train,) route, and analyze a design before the first what-if
//! or inference query can be answered. This crate keeps that state
//! **warm** in a long-lived daemon:
//!
//! - [`protocol`] — length-prefixed JSON frames with typed errors for
//!   every malformed/truncated/oversized/stalled case;
//! - [`admission`] — deep request validation and a cost-budget meter
//!   that reject or shed work *before* it takes a queue slot or the
//!   build lock;
//! - [`server`] — acceptor + bounded job queue (explicit `Busy`
//!   backpressure, never unbounded growth) + worker pool with inference
//!   micro-batching + LRU session cache + quarantine circuit breaker +
//!   worker watchdog + graceful drain-on-shutdown;
//! - [`client`] — a small blocking client with capped, seeded-jitter
//!   retries, used by the `gnnmls client` CLI and the tests;
//! - [`api`] — the unified serving facade: the [`api::ServeError`]
//!   taxonomy (every non-`Ok` wire outcome as one typed error with
//!   `retry_after_ms` first-class) and the typed [`api::Client`] whose
//!   per-request-kind methods return typed payloads;
//! - [`ring`] — the consistent-hash ring that maps a `SessionSpec` to
//!   its primary (and deterministic secondary) backend shard;
//! - [`cluster`] — the `gnnmls serve --cluster` front tier: spawns and
//!   health-probes backend shards, routes v2 frames by spec, fails over
//!   through per-shard circuit breakers, and merges drain stats into
//!   one versioned `cluster-stats` envelope;
//! - [`loadgen`] — the `gnnmls bench cluster` load generator (mixed
//!   whatif/infer traffic with a kill-one-shard schedule, writing
//!   `BENCH_cluster.json`).
//!
//! Determinism contract: a warm answer is bit-identical to the one-shot
//! CLI computing the same query, and a micro-batched inference response
//! is bit-identical to the unbatched one (asserted in the tests).

// Library code surfaces typed errors and obs events, never panics or
// raw prints (the CLI binary is the only place that talks to stdout).
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::print_stdout,
        clippy::print_stderr
    )
)]

pub mod admission;
pub mod api;
pub mod client;
pub mod cluster;
pub mod loadgen;
pub mod protocol;
pub mod ring;
pub mod server;
pub mod zoobench;

pub use admission::{request_cost, validate_request, AdmissionMeter};
pub use api::{classify, Inference, ServeError};
pub use client::{Client, ClientError, RetryPolicy};
pub use cluster::{
    ClusterConfig, ClusterConfigBuilder, ClusterFront, ClusterStats, ShardStats,
    CLUSTER_STATS_STAGE,
};
pub use loadgen::{run_cluster_bench, ClusterBenchConfig, ClusterBenchReport};
pub use protocol::{
    read_frame, read_frame_idle, write_frame, FrameError, HealthStatus, QuarantineInfo, Request,
    RequestKind, Response, ResponseKind, ServerStats, MAX_FRAME, PROTOCOL_VERSION,
};
pub use ring::HashRing;
pub use server::{ServeConfig, ServeConfigBuilder, ServeOpts, Server};
pub use zoobench::{run_zoo_bench, ZooBenchConfig, ZooBenchReport};

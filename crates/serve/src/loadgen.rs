//! The `gnnmls bench cluster` load generator.
//!
//! Spawns a whole cluster (front + managed shard processes), drives
//! mixed what-if/inference traffic from parallel seeded clients —
//! including a kill-one-shard-mid-run schedule aimed at the busiest
//! shard — and writes the `BENCH_cluster.json` ledger: p50/p99
//! latency, shed rate, per-shard cache-hit rate, failovers, and
//! `lost_after_retry`, which the robustness contract requires to be
//! **zero** even with a shard dying mid-run.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use gnn_mls::session::SessionSpec;
use gnnmls_par::rng::SplitMix64;
use serde::{Deserialize, Serialize};

use crate::client::{Client, ClientError, RetryPolicy};
use crate::cluster::{ClusterConfig, ClusterFront, ShardBackendSpec, ShardSpawnSpec};
use crate::protocol::ResponseKind;

/// Load-generator knobs; the CLI maps `gnnmls bench cluster` flags
/// onto these.
#[derive(Clone, Debug)]
pub struct ClusterBenchConfig {
    /// Backend shards to spawn.
    pub shards: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Total requests across all clients.
    pub requests: usize,
    /// Distinct spec variants in the traffic mix (more variants spread
    /// load over more shards).
    pub specs: usize,
    /// Kill the busiest spec's primary shard halfway through.
    pub kill_mid_run: bool,
    /// Seed for the traffic mix and retry jitter.
    pub seed: u64,
    /// The `gnnmls` binary to spawn shards from.
    pub shard_exe: PathBuf,
    /// Shard argv ahead of `--addr` (usually `["serve"]` plus knobs).
    pub shard_args: Vec<String>,
    /// Workspace root the ledger is written under
    /// (`<root>/target/bench/BENCH_cluster.json`).
    pub out_root: PathBuf,
    /// Passed through to [`ClusterConfig::checkpoint_dir`].
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for ClusterBenchConfig {
    fn default() -> Self {
        Self {
            shards: 3,
            clients: 4,
            requests: 120,
            specs: 6,
            kill_mid_run: true,
            seed: 0xBE_5C,
            shard_exe: PathBuf::from("gnnmls"),
            shard_args: vec!["serve".into()],
            out_root: PathBuf::from("."),
            checkpoint_dir: None,
        }
    }
}

/// Per-shard slice of the bench ledger.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShardBenchStats {
    /// Ring id.
    pub id: u32,
    /// Requests the shard served (its own counter).
    pub served: u64,
    /// Warm cache hits.
    pub cache_hits: u64,
    /// Cold builds.
    pub cache_misses: u64,
    /// `hits / (hits + misses)`; 0 when idle.
    pub hit_rate: f64,
    /// Child deaths observed by the supervisor.
    pub crashes: u64,
    /// Respawns performed by the supervisor.
    pub respawns: u64,
}

/// The `BENCH_cluster.json` ledger.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterBenchReport {
    /// Ledger schema version.
    pub schema_version: u32,
    /// Shards in the cluster.
    pub shards: u64,
    /// Concurrent clients.
    pub clients: u64,
    /// Requests attempted.
    pub requests: u64,
    /// Requests that got a final `Ok`.
    pub ok: u64,
    /// Requests whose final outcome was `Busy` (shed).
    pub shed: u64,
    /// Requests whose final outcome was an error/gave-up.
    pub errored: u64,
    /// `shed / requests`.
    pub shed_rate: f64,
    /// Median end-to-end latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile end-to-end latency, ms.
    pub p99_ms: f64,
    /// Which shard the kill schedule hit (`None` when disabled).
    pub killed_shard: Option<u32>,
    /// Front-counted requests answered off their primary shard.
    pub failovers: u64,
    /// Off-primary answers that were `Ok` (accepted cold builds).
    pub failover_cold: u64,
    /// Requests the front could not serve after every retry. The
    /// acceptance gate: **must be 0**.
    pub lost_after_retry: u64,
    /// Supervisor respawns over the run.
    pub shard_respawns: u64,
    /// Per-shard cache behavior.
    pub per_shard: Vec<ShardBenchStats>,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Spec variant `i`: same design family, distinct cache keys, so the
/// ring spreads them over the shards. The gnn-mls policy trains the
/// session model so the inference share of the mix is answerable.
fn bench_spec(i: usize) -> SessionSpec {
    let mut spec = SessionSpec::fast("maeri16");
    spec.policy = gnn_mls::flow::FlowPolicy::GnnMls;
    spec.target_freq_mhz = 2500.0 + i as f64;
    spec
}

/// Runs the full cluster bench: spawn, warm, mixed traffic (+ optional
/// mid-run kill), drain, ledger.
///
/// # Errors
///
/// A string describing the spawn/bind failure; traffic-level failures
/// are data, not errors.
pub fn run_cluster_bench(cfg: &ClusterBenchConfig) -> Result<ClusterBenchReport, String> {
    let cluster_cfg = ClusterConfig {
        probe_interval_ms: 100,
        breaker_cooldown_ms: 300,
        retries: 6,
        checkpoint_dir: cfg.checkpoint_dir.clone(),
        seed: cfg.seed,
        ..Default::default()
    };
    let backends = (0..cfg.shards.max(1))
        .map(|_| {
            ShardBackendSpec::Spawn(ShardSpawnSpec {
                exe: cfg.shard_exe.clone(),
                args: cfg.shard_args.clone(),
            })
        })
        .collect();
    let front = ClusterFront::start(cluster_cfg, backends)
        .map_err(|e| format!("cluster start failed: {e}"))?;
    let addr = front.local_addr();
    let specs: Vec<SessionSpec> = (0..cfg.specs.max(1)).map(bench_spec).collect();

    // Warm every spec once so the steady-state traffic measures warm
    // serving (and the kill measures real warm-loss + failover).
    {
        let mut client =
            Client::connect(addr).map_err(|e| format!("warmup connect failed: {e}"))?;
        let policy = RetryPolicy {
            max_attempts: 8,
            seed: cfg.seed,
            ..Default::default()
        };
        for (i, spec) in specs.iter().enumerate() {
            let req = crate::protocol::Request::what_if(i as u64 + 1, spec.clone(), 0, true, None);
            client
                .request_with_retry(&req, &policy)
                .map_err(|e| format!("warmup what-if failed: {e}"))?;
        }
    }

    let victim = if cfg.kill_mid_run {
        front.primary_shard(specs[0].cache_key())
    } else {
        None
    };
    let total = cfg.requests.max(1);
    let clients = cfg.clients.max(1);
    let completed = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let idx: Vec<usize> = (0..clients).collect();

    // (outcome, latency) per request, gathered per client.
    let mut results: Vec<Vec<(ResponseKind, f64, bool)>> = Vec::new();
    std::thread::scope(|s| {
        let watcher = s.spawn(|| {
            if let Some(victim) = victim {
                while !done.load(Ordering::SeqCst)
                    && completed.load(Ordering::SeqCst) < (total / 2) as u64
                {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                if !done.load(Ordering::SeqCst) {
                    front.kill_shard(victim);
                }
            }
        });
        results = gnnmls_par::par_map(clients, &idx, |&k| {
            let n = total / clients + usize::from(k < total % clients);
            let mut out = Vec::with_capacity(n);
            let Ok(mut client) = Client::connect(addr) else {
                return out;
            };
            let mut rng = SplitMix64::new(cfg.seed ^ (k as u64).wrapping_mul(0x9E37));
            let policy = RetryPolicy {
                max_attempts: 6,
                base_delay_ms: 10,
                max_delay_ms: 300,
                seed: cfg.seed ^ k as u64,
            };
            for i in 0..n {
                let spec = &specs[rng.next_below(specs.len() as u64) as usize];
                let id = (k * total + i) as u64 + 1_000;
                // ~70% what-if, ~30% inference — the serving mix the
                // single-daemon bench uses.
                let req = if rng.next_below(10) < 7 {
                    let net = rng.next_below(16) as u32;
                    crate::protocol::Request::what_if(id, spec.clone(), net, true, None)
                } else {
                    crate::protocol::Request::infer(id, spec.clone(), Some(8))
                };
                let t0 = Instant::now();
                let outcome = client.request_with_retry(&req, &policy);
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                match outcome {
                    Ok(resp) => out.push((resp.kind, ms, false)),
                    Err(ClientError::GaveUp { .. }) => out.push((ResponseKind::Error, ms, true)),
                    Err(ClientError::Frame(_)) => {
                        out.push((ResponseKind::Error, ms, true));
                        if let Ok(c) = Client::connect(addr) {
                            client = c;
                        }
                    }
                }
                completed.fetch_add(1, Ordering::SeqCst);
            }
            out
        });
        done.store(true, Ordering::SeqCst);
        let _ = watcher.join();
    });

    let cluster_stats = front.shutdown();

    let mut latencies: Vec<f64> = Vec::with_capacity(total);
    let (mut ok, mut shed, mut errored) = (0u64, 0u64, 0u64);
    for (kind, ms, gave_up) in results.into_iter().flatten() {
        latencies.push(ms);
        match kind {
            ResponseKind::Ok => ok += 1,
            ResponseKind::Busy => shed += 1,
            _ if gave_up => errored += 1,
            ResponseKind::Error => errored += 1,
            ResponseKind::Rejected | ResponseKind::Quarantined => errored += 1,
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let attempted = latencies.len() as u64;

    let per_shard = cluster_stats
        .shards
        .iter()
        .map(|s| {
            let (hits, misses, served) = match &s.stats {
                Some(st) => (st.cache_hits, st.cache_misses, st.served),
                None => (0, 0, 0),
            };
            ShardBenchStats {
                id: s.id,
                served,
                cache_hits: hits,
                cache_misses: misses,
                hit_rate: if hits + misses > 0 {
                    hits as f64 / (hits + misses) as f64
                } else {
                    0.0
                },
                crashes: s.crashes,
                respawns: s.respawns,
            }
        })
        .collect();

    let report = ClusterBenchReport {
        schema_version: 1,
        shards: cfg.shards.max(1) as u64,
        clients: clients as u64,
        requests: attempted,
        ok,
        shed,
        errored,
        shed_rate: if attempted > 0 {
            shed as f64 / attempted as f64
        } else {
            0.0
        },
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        killed_shard: victim.map(u32::from),
        failovers: cluster_stats.failovers,
        failover_cold: cluster_stats.failover_cold,
        lost_after_retry: cluster_stats.lost_after_retry,
        shard_respawns: cluster_stats.shard_respawns,
        per_shard,
    };
    gnnmls_bench::render::write_bench_json(&cfg.out_root, "BENCH_cluster.json", &report);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_from_the_sorted_tail() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(percentile(&v, 0.50), 3.0);
        assert_eq!(percentile(&v, 0.99), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn bench_specs_have_distinct_cache_keys() {
        let keys: Vec<u64> = (0..6).map(|i| bench_spec(i).cache_key()).collect();
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "specs {i} and {j} collide");
            }
        }
        assert!(bench_spec(0).validate().is_ok());
    }
}

//! The serve wire protocol: versioned, length-prefixed JSON frames.
//!
//! Every message on the socket is one **frame**: a 1-byte protocol
//! version ([`PROTOCOL_VERSION`]), a 4-byte big-endian payload length,
//! then exactly that many bytes of UTF-8 JSON (see `docs/PROTOCOL.md`).
//! A frame carrying any other version is refused with a typed
//! [`FrameError::VersionMismatch`] before the payload is read, so an
//! old client talking to a new daemon (or vice versa) gets a precise
//! diagnosis instead of a JSON parse error. Frames larger than
//! [`MAX_FRAME`] are refused in both directions with a typed
//! [`FrameError::TooLarge`] — a misbehaving peer can make the
//! server drop its connection, never allocate without bound.
//!
//! Reading is defensive by construction: a clean EOF at a frame
//! boundary is [`FrameError::Closed`], an EOF inside a frame is
//! [`FrameError::Truncated`], a read timeout inside a frame is
//! [`FrameError::Stalled`], and any payload that is not valid JSON for
//! the expected schema is [`FrameError::Malformed`]. None of these
//! panic or wedge the reader.
//!
//! The [`gnnmls_faults::FaultSite::FrameCorrupt`] seam flips a byte in
//! an outgoing payload, so tests can drive the malformed-frame path
//! deterministically from either end of the socket.

use std::fmt;
use std::io::{ErrorKind, Read, Write};

use serde::{Deserialize, Serialize};

use gnn_mls::session::{InferResult, SessionSpec, SessionStats, WhatIfResult};

/// Maximum frame payload size (8 MiB) accepted on read or write.
pub const MAX_FRAME: usize = 8 * 1024 * 1024;

/// The wire protocol version this build speaks, written as the first
/// byte of every frame. Version 2 added the version byte itself and the
/// `Metrics` request; version 1 frames (which started directly with the
/// length) are refused with [`FrameError::VersionMismatch`].
pub const PROTOCOL_VERSION: u8 = 2;

/// Default number of worst paths an `InferMls` request covers when the
/// request leaves `paths` unset.
pub const DEFAULT_INFER_PATHS: u64 = 32;

/// Errors raised encoding, transporting, or decoding a frame.
#[derive(Debug)]
pub enum FrameError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The frame payload exceeds [`MAX_FRAME`].
    TooLarge {
        /// Declared or attempted payload length.
        len: usize,
        /// The limit it exceeded.
        max: usize,
    },
    /// The payload is not UTF-8 JSON matching the expected schema.
    Malformed(String),
    /// The peer closed the connection at a frame boundary.
    Closed,
    /// The peer closed the connection in the middle of a frame.
    Truncated,
    /// The peer stopped sending in the middle of a frame (read timeout).
    Stalled,
    /// The frame header carries a protocol version this build does not
    /// speak. Permanent for the connection: the peer must upgrade (or
    /// the operator downgrade), so no payload bytes are read.
    VersionMismatch {
        /// The version byte the peer sent.
        got: u8,
        /// The version this build speaks ([`PROTOCOL_VERSION`]).
        want: u8,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame io: {e}"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            FrameError::Malformed(why) => write!(f, "malformed frame: {why}"),
            FrameError::Closed => f.write_str("connection closed"),
            FrameError::Truncated => f.write_str("connection closed mid-frame"),
            FrameError::Stalled => f.write_str("connection stalled mid-frame"),
            FrameError::VersionMismatch { got, want } => {
                write!(
                    f,
                    "peer speaks protocol version {got}, this build wants {want}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<gnnmls_reactor::DecodeError> for FrameError {
    fn from(e: gnnmls_reactor::DecodeError) -> Self {
        match e {
            gnnmls_reactor::DecodeError::Version { got, want } => {
                FrameError::VersionMismatch { got, want }
            }
            gnnmls_reactor::DecodeError::TooLarge { len, max } => FrameError::TooLarge { len, max },
        }
    }
}

/// What a [`Request`] asks the daemon to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestKind {
    /// Detached what-if route of one net under an MLS override.
    WhatIf,
    /// MLS inference over the session's worst timing paths.
    InferMls,
    /// Full flow run for the spec (place, learn, route, STA, report).
    RunFlow,
    /// Server + (cached) session statistics.
    Stats,
    /// Readiness, queue depth, quarantine set, watchdog restarts.
    /// Answered at the connection (never queued), so it works even
    /// when the job queue is full.
    Health,
    /// The process-wide observability registry rendered as
    /// Prometheus-style text exposition. Answered at the connection
    /// like `Health` (never queued) — scraping must work even when the
    /// daemon is saturated.
    Metrics,
    /// Hot-swap a zoo model checkpoint into the family it names
    /// (`model_path` points at a [`gnn_mls::ZooModelCheckpoint`] file).
    /// Answered at the connection like `Health` — an operator must be
    /// able to roll a model while the daemon is saturated. In-flight
    /// requests finish on the weights they started with; a corrupt or
    /// mismatched checkpoint is `Rejected` and the serving model is
    /// untouched.
    LoadModel,
    /// Graceful drain: flush in-flight work, then exit.
    Shutdown,
}

/// One request frame. Every field key is always present on the wire
/// (the in-repo serde requires it); fields a kind does not use are
/// `null`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Caller-chosen id, echoed verbatim in the [`Response`].
    pub id: u64,
    /// What to do.
    pub kind: RequestKind,
    /// Which warm session to do it against.
    pub spec: SessionSpec,
    /// `WhatIf`: the net to query.
    pub net: Option<u32>,
    /// `WhatIf`: force MLS on (`true`, default) or off.
    pub allow_mls: Option<bool>,
    /// `WhatIf`: per-request deadline as an A* expansion budget; a
    /// starved budget degrades to pattern routes instead of hanging.
    pub deadline_expansions: Option<u64>,
    /// `InferMls`: how many worst paths to cover (default
    /// [`DEFAULT_INFER_PATHS`]).
    pub paths: Option<u64>,
    /// `LoadModel`: path (on the daemon's filesystem) of the zoo model
    /// checkpoint to swap in.
    pub model_path: Option<String>,
}

impl Request {
    fn bare(id: u64, kind: RequestKind, spec: SessionSpec) -> Self {
        Self {
            id,
            kind,
            spec,
            net: None,
            allow_mls: None,
            deadline_expansions: None,
            paths: None,
            model_path: None,
        }
    }

    /// A `WhatIf` request.
    pub fn what_if(
        id: u64,
        spec: SessionSpec,
        net: u32,
        allow_mls: bool,
        deadline_expansions: Option<u64>,
    ) -> Self {
        Self {
            net: Some(net),
            allow_mls: Some(allow_mls),
            deadline_expansions,
            ..Self::bare(id, RequestKind::WhatIf, spec)
        }
    }

    /// An `InferMls` request.
    pub fn infer(id: u64, spec: SessionSpec, paths: Option<u64>) -> Self {
        Self {
            paths,
            ..Self::bare(id, RequestKind::InferMls, spec)
        }
    }

    /// A `RunFlow` request.
    pub fn run_flow(id: u64, spec: SessionSpec) -> Self {
        Self::bare(id, RequestKind::RunFlow, spec)
    }

    /// A `Stats` request (session stats are reported for `spec` when it
    /// is cached).
    pub fn stats(id: u64, spec: SessionSpec) -> Self {
        Self::bare(id, RequestKind::Stats, spec)
    }

    /// A `Health` request; the spec is ignored.
    pub fn health(id: u64) -> Self {
        Self::bare(id, RequestKind::Health, SessionSpec::new("maeri16"))
    }

    /// A `Metrics` request; the spec is ignored.
    pub fn metrics(id: u64) -> Self {
        Self::bare(id, RequestKind::Metrics, SessionSpec::new("maeri16"))
    }

    /// A `LoadModel` request; the spec is ignored (the checkpoint
    /// itself names the family it serves).
    pub fn load_model(id: u64, model_path: impl Into<String>) -> Self {
        Self {
            model_path: Some(model_path.into()),
            ..Self::bare(id, RequestKind::LoadModel, SessionSpec::new("maeri16"))
        }
    }

    /// A `Shutdown` request; the spec is ignored.
    pub fn shutdown(id: u64) -> Self {
        Self::bare(id, RequestKind::Shutdown, SessionSpec::new("maeri16"))
    }
}

/// How a [`Response`] ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResponseKind {
    /// The request was served; the matching payload field is set.
    Ok,
    /// The job queue was full (or the admission budget exhausted); the
    /// request was shed. Retry later.
    Busy,
    /// The request failed admission validation. Permanent: retrying the
    /// identical request cannot succeed; `error` explains why.
    Rejected,
    /// The spec's session build is circuit-broken after repeated
    /// failures; `retry_after_ms` bounds the cooldown.
    Quarantined,
    /// The request failed; `error` explains why.
    Error,
}

/// One quarantined session spec, as reported by a `Health` response.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuarantineInfo {
    /// The spec's cache key ([`SessionSpec::cache_key`]).
    pub key: u64,
    /// Consecutive build failures recorded for the key.
    pub strikes: u32,
    /// Whether the circuit is currently open (requests refused).
    pub open: bool,
    /// Milliseconds until the circuit half-opens; 0 when `open` is
    /// false.
    pub remaining_ms: u64,
}

/// Payload of a `Health` response: liveness and supervision state,
/// answered without taking a queue slot.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HealthStatus {
    /// `true` until shutdown begins.
    pub ready: bool,
    /// Jobs waiting in the queue right now.
    pub queue_depth: u64,
    /// Queue capacity.
    pub queue_capacity: u64,
    /// Configured worker count.
    pub workers: u64,
    /// Times the watchdog respawned a dead worker thread.
    pub watchdog_restarts: u64,
    /// Admission cost units currently in flight.
    pub admitted_cost: u64,
    /// Configured admission budget (cost units).
    pub admission_budget: u64,
    /// Session specs currently tracked by the quarantine breaker.
    pub quarantine: Vec<QuarantineInfo>,
}

/// Server-side counters, included in every `Stats` response and in the
/// final drain checkpoint.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Requests answered (any kind, including errors).
    pub served: u64,
    /// Requests shed with `Busy` because the queue was full or the
    /// admission budget was exhausted.
    pub busy: u64,
    /// Requests answered with `Error`.
    pub errors: u64,
    /// Requests refused at admission with `Rejected` (invalid spec or
    /// out-of-range parameters).
    pub rejected: u64,
    /// Requests refused with `Quarantined` (circuit-broken spec).
    pub quarantined: u64,
    /// `Busy` responses caused by the admission budget specifically
    /// (a subset of `busy`).
    pub shed: u64,
    /// Worker threads respawned by the watchdog.
    pub watchdog_restarts: u64,
    /// Warm-hit audits that found an invariant violation (the session
    /// is dropped from the cache and rebuilt).
    pub audit_failures: u64,
    /// Queries answered from an already-warm session.
    pub cache_hits: u64,
    /// Queries that had to cold-build a session.
    pub cache_misses: u64,
    /// Sessions evicted to respect the cache capacity.
    pub cache_evictions: u64,
    /// Sessions currently held warm.
    pub cached_sessions: u64,
    /// Inference requests answered from a coalesced (size > 1) forward
    /// pass.
    pub batched_inferences: u64,
    /// Largest inference micro-batch coalesced so far.
    pub max_batch: u64,
    /// Stats of the requested spec's session, when it is cached.
    pub session: Option<SessionStats>,
}

/// Payload of an `Ok` response to a `LoadModel` request: what is now
/// serving the family.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelSwapResult {
    /// Family the new model serves.
    pub family: String,
    /// Version of the new model (`major.minor.patch`).
    pub version: String,
    /// Trainable parameters in the new model.
    pub parameter_count: u64,
    /// Version the swap replaced: a previous zoo version, or `None`
    /// when the family was still on its built-in per-session models.
    pub replaced: Option<String>,
}

/// One response frame; `id` echoes the request. Exactly one payload
/// field is set for `Ok`, none for `Busy`, and `error` for `Error`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Echo of [`Request::id`] (0 when the request could not be parsed).
    pub id: u64,
    /// Outcome.
    pub kind: ResponseKind,
    /// `WhatIf` payload.
    pub what_if: Option<WhatIfResult>,
    /// `InferMls` payload.
    pub infer: Option<InferResult>,
    /// `Stats` payload.
    pub stats: Option<ServerStats>,
    /// `RunFlow` payload: the pretty-printed `FlowReport` JSON.
    pub report_json: Option<String>,
    /// `Health` payload.
    pub health: Option<HealthStatus>,
    /// `Metrics` payload: Prometheus-style text exposition.
    pub metrics: Option<String>,
    /// `LoadModel` payload.
    pub model_swap: Option<ModelSwapResult>,
    /// Which model answered an `InferMls` request: a zoo version string
    /// for a hot-swapped family, `"builtin"` for the session's own
    /// trained model. Lets a client prove an in-flight request finished
    /// on the weights it started with across a swap.
    pub model_version: Option<String>,
    /// `Quarantined`: milliseconds until the circuit half-opens.
    pub retry_after_ms: Option<u64>,
    /// `Error`, `Rejected`, and `Quarantined` payload.
    pub error: Option<String>,
}

impl Response {
    /// An `Ok` response with no payload yet.
    pub fn ok(id: u64) -> Self {
        Self {
            id,
            kind: ResponseKind::Ok,
            what_if: None,
            infer: None,
            stats: None,
            report_json: None,
            health: None,
            metrics: None,
            model_swap: None,
            model_version: None,
            retry_after_ms: None,
            error: None,
        }
    }

    /// A `Busy` response (queue full; retry later).
    pub fn busy(id: u64) -> Self {
        Self {
            kind: ResponseKind::Busy,
            ..Self::ok(id)
        }
    }

    /// An `Error` response.
    pub fn error(id: u64, why: impl fmt::Display) -> Self {
        Self {
            kind: ResponseKind::Error,
            error: Some(why.to_string()),
            ..Self::ok(id)
        }
    }

    /// A `Rejected` response (failed admission validation; permanent).
    pub fn rejected(id: u64, why: impl fmt::Display) -> Self {
        Self {
            kind: ResponseKind::Rejected,
            error: Some(why.to_string()),
            ..Self::ok(id)
        }
    }

    /// A `Quarantined` response (circuit-broken spec; retry after the
    /// cooldown).
    pub fn quarantined(id: u64, why: impl fmt::Display, retry_after_ms: u64) -> Self {
        Self {
            kind: ResponseKind::Quarantined,
            error: Some(why.to_string()),
            retry_after_ms: Some(retry_after_ms),
            ..Self::ok(id)
        }
    }

    /// Attaches a health payload.
    pub fn with_health(mut self, h: HealthStatus) -> Self {
        self.health = Some(h);
        self
    }

    /// Attaches a metrics-exposition payload.
    pub fn with_metrics(mut self, text: String) -> Self {
        self.metrics = Some(text);
        self
    }

    /// Attaches a what-if payload.
    pub fn with_what_if(mut self, w: WhatIfResult) -> Self {
        self.what_if = Some(w);
        self
    }

    /// Attaches an inference payload.
    pub fn with_infer(mut self, i: InferResult) -> Self {
        self.infer = Some(i);
        self
    }

    /// Attaches a stats payload.
    pub fn with_stats(mut self, s: ServerStats) -> Self {
        self.stats = Some(s);
        self
    }

    /// Attaches a flow-report payload.
    pub fn with_report(mut self, json: String) -> Self {
        self.report_json = Some(json);
        self
    }

    /// Attaches a model-swap payload.
    pub fn with_model_swap(mut self, m: ModelSwapResult) -> Self {
        self.model_swap = Some(m);
        self
    }

    /// Stamps which model version produced this response.
    pub fn with_model_version(mut self, version: impl Into<String>) -> Self {
        self.model_version = Some(version.into());
        self
    }
}

/// Writes one frame.
///
/// The [`gnnmls_faults::FaultSite::FrameCorrupt`] seam flips a byte of
/// the payload after the length is computed, so the peer sees a
/// well-framed but malformed message.
///
/// # Errors
///
/// [`FrameError::TooLarge`] when the encoded payload exceeds
/// [`MAX_FRAME`], [`FrameError::Io`] on socket failure.
pub fn write_frame<T: Serialize, W: Write>(w: &mut W, msg: &T) -> Result<(), FrameError> {
    let frame = encode_msg(msg)?;
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Encodes one message into a complete wire frame (version byte,
/// length, payload) without writing it anywhere — the reactor loop
/// queues the returned bytes on a [`gnnmls_reactor::WriteQueue`]. The
/// [`gnnmls_faults::FaultSite::FrameCorrupt`] seam lives here, shared
/// with [`write_frame`], so corruption tests drive both transports.
///
/// # Errors
///
/// [`FrameError::TooLarge`] when the encoded payload exceeds
/// [`MAX_FRAME`]; [`FrameError::Malformed`] when serialization fails.
pub fn encode_msg<T: Serialize>(msg: &T) -> Result<Vec<u8>, FrameError> {
    let json = serde_json::to_string(msg).map_err(|e| FrameError::Malformed(e.to_string()))?;
    let mut payload = json.into_bytes();
    if payload.len() > MAX_FRAME {
        return Err(FrameError::TooLarge {
            len: payload.len(),
            max: MAX_FRAME,
        });
    }
    if gnnmls_faults::fire(gnnmls_faults::FaultSite::FrameCorrupt) {
        if let Some(b) = payload.first_mut() {
            // '{' ^ 0x20 == '[': still a frame, no longer the schema.
            *b ^= 0x20;
        }
    }
    Ok(gnnmls_reactor::encode_frame(PROTOCOL_VERSION, &payload))
}

/// Decodes one frame payload (as produced by
/// [`gnnmls_reactor::FrameDecoder`]) into a typed message, with the
/// exact same [`FrameError::Malformed`] strings the blocking reader
/// produces — error-message parity is part of the wire contract.
///
/// # Errors
///
/// [`FrameError::Malformed`] when the payload is not UTF-8 or not JSON
/// for the expected schema.
pub fn decode_payload<T: Deserialize>(payload: &[u8]) -> Result<T, FrameError> {
    let json =
        std::str::from_utf8(payload).map_err(|_| FrameError::Malformed("not utf-8".into()))?;
    serde_json::from_str(json).map_err(|e| FrameError::Malformed(e.to_string()))
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Reads one frame, tolerating idle timeouts between frames.
///
/// `keep_going` is consulted whenever the reader times out with **no**
/// bytes of the next frame read yet; returning `false` yields
/// `Ok(None)` (the server uses this to notice shutdown while a
/// connection idles). A timeout *inside* a frame is a
/// [`FrameError::Stalled`] — a slow or wedged peer cannot pin the
/// reader forever.
///
/// # Errors
///
/// See [`FrameError`]; every failure mode is typed, none panic.
pub fn read_frame_idle<T, R, F>(r: &mut R, keep_going: F) -> Result<Option<T>, FrameError>
where
    T: Deserialize,
    R: Read,
    F: Fn() -> bool,
{
    let mut head = [0u8; 5];
    let mut got = 0usize;
    while got < head.len() {
        if got == 0 && !keep_going() {
            return Ok(None);
        }
        match r.read(&mut head[got..]) {
            Ok(0) => {
                return Err(if got == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Truncated
                })
            }
            Ok(n) => got += n,
            Err(e) if is_timeout(&e) => {
                if got > 0 {
                    return Err(FrameError::Stalled);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
        // Refuse a foreign version as soon as the first byte lands —
        // before the length, long before any payload allocation.
        if got >= 1 && head[0] != PROTOCOL_VERSION {
            return Err(FrameError::VersionMismatch {
                got: head[0],
                want: PROTOCOL_VERSION,
            });
        }
    }
    let len = u32::from_be_bytes([head[1], head[2], head[3], head[4]]) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge {
            len,
            max: MAX_FRAME,
        });
    }
    let mut payload = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        match r.read(&mut payload[got..]) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => got += n,
            Err(e) if is_timeout(&e) => return Err(FrameError::Stalled),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    decode_payload(&payload).map(Some)
}

/// Reads one frame, blocking until it arrives or the stream fails.
///
/// # Errors
///
/// See [`FrameError`].
pub fn read_frame<T: Deserialize, R: Read>(r: &mut R) -> Result<T, FrameError> {
    match read_frame_idle(r, || true)? {
        Some(v) => Ok(v),
        // Unreachable with `keep_going` always true; typed for safety.
        None => Err(FrameError::Closed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SessionSpec {
        SessionSpec::fast("maeri16")
    }

    #[test]
    fn frames_round_trip() {
        let req = Request::what_if(7, spec(), 42, true, Some(1000));
        let mut wire = Vec::new();
        write_frame(&mut wire, &req).unwrap();
        let back: Request = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(req, back);

        let resp = Response::error(7, "nope");
        let mut wire = Vec::new();
        write_frame(&mut wire, &resp).unwrap();
        let back: Response = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(resp, back);
    }

    #[test]
    fn busy_and_payload_builders() {
        let b = Response::busy(3);
        assert_eq!(b.kind, ResponseKind::Busy);
        assert_eq!(b.id, 3);
        let r = Request::shutdown(1);
        assert_eq!(r.kind, RequestKind::Shutdown);
        let r = Request::infer(2, spec(), None);
        assert!(r.paths.is_none());
        let r = Request::stats(4, spec());
        assert_eq!(r.kind, RequestKind::Stats);
        let r = Request::run_flow(5, spec());
        assert_eq!(r.kind, RequestKind::RunFlow);
    }

    #[test]
    fn empty_stream_is_closed_partial_header_is_truncated() {
        let empty: &[u8] = &[];
        assert!(matches!(
            read_frame::<Request, _>(&mut { empty }),
            Err(FrameError::Closed)
        ));
        let partial: &[u8] = &[PROTOCOL_VERSION, 0];
        assert!(matches!(
            read_frame::<Request, _>(&mut { partial }),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn foreign_version_is_refused_before_the_payload() {
        // A well-formed frame re-stamped with the wrong version byte.
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::stats(1, spec())).unwrap();
        for bad in [0u8, 1, PROTOCOL_VERSION + 1, 0xff] {
            let mut reframed = wire.clone();
            reframed[0] = bad;
            match read_frame::<Request, _>(&mut reframed.as_slice()) {
                Err(FrameError::VersionMismatch { got, want }) => {
                    assert_eq!(got, bad);
                    assert_eq!(want, PROTOCOL_VERSION);
                }
                other => panic!("version {bad} must be refused, got {other:?}"),
            }
        }
        // A bare v1-style frame (length first, no version byte) is also
        // a mismatch: its first byte is a length MSB, never 2.
        let v1 = 10u32.to_be_bytes().to_vec();
        assert!(matches!(
            read_frame::<Request, _>(&mut v1.as_slice()),
            Err(FrameError::VersionMismatch { got: 0, .. })
        ));
    }

    #[test]
    fn truncated_payload_is_typed() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::stats(1, spec())).unwrap();
        for cut in 5..wire.len() {
            let mut short = &wire[..cut];
            assert!(
                matches!(
                    read_frame::<Request, _>(&mut short),
                    Err(FrameError::Truncated)
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn oversized_frames_are_refused_both_ways() {
        // Read side: a header that declares more than MAX_FRAME.
        let mut wire = vec![PROTOCOL_VERSION];
        wire.extend_from_slice(&((MAX_FRAME + 1) as u32).to_be_bytes());
        wire.extend_from_slice(b"xx");
        assert!(matches!(
            read_frame::<Request, _>(&mut wire.as_slice()),
            Err(FrameError::TooLarge { .. })
        ));
        // Write side: a payload that would exceed MAX_FRAME.
        let huge = "x".repeat(MAX_FRAME + 1);
        let mut sink = Vec::new();
        assert!(matches!(
            write_frame(&mut sink, &huge),
            Err(FrameError::TooLarge { .. })
        ));
        assert!(sink.is_empty(), "nothing written for a refused frame");
    }

    #[test]
    fn garbage_json_is_malformed_not_a_panic() {
        for payload in [&b"not json at all"[..], b"[1,2,3]", b"{\"id\":true}"] {
            let mut wire = vec![PROTOCOL_VERSION];
            wire.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            wire.extend_from_slice(payload);
            assert!(matches!(
                read_frame::<Request, _>(&mut wire.as_slice()),
                Err(FrameError::Malformed(_))
            ));
        }
        // Invalid UTF-8 as well.
        let mut wire = vec![PROTOCOL_VERSION];
        wire.extend_from_slice(&2u32.to_be_bytes());
        wire.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(
            read_frame::<Response, _>(&mut wire.as_slice()),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn frame_corrupt_fault_yields_malformed() {
        let plan = gnnmls_faults::FaultPlan::single(gnnmls_faults::FaultSite::FrameCorrupt, 1);
        let guard = gnnmls_faults::install(&plan);
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::stats(9, spec())).unwrap();
        assert!(matches!(
            read_frame::<Request, _>(&mut wire.as_slice()),
            Err(FrameError::Malformed(_))
        ));
        // One shot only: the next frame is clean.
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::stats(10, spec())).unwrap();
        let back: Request = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(back.id, 10);
        drop(guard);
    }

    #[test]
    fn robustness_builders_round_trip() {
        let q = Response::quarantined(11, "circuit open", 1234);
        assert_eq!(q.kind, ResponseKind::Quarantined);
        assert_eq!(q.retry_after_ms, Some(1234));
        let mut wire = Vec::new();
        write_frame(&mut wire, &q).unwrap();
        let back: Response = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(q, back);

        let r = Response::rejected(12, "bad spec");
        assert_eq!(r.kind, ResponseKind::Rejected);
        assert!(r.error.unwrap().contains("bad spec"));

        let h = Response::ok(13).with_health(HealthStatus {
            ready: true,
            queue_depth: 1,
            queue_capacity: 64,
            workers: 2,
            watchdog_restarts: 3,
            admitted_cost: 5,
            admission_budget: 4096,
            quarantine: vec![QuarantineInfo {
                key: 7,
                strikes: 3,
                open: true,
                remaining_ms: 500,
            }],
        });
        let mut wire = Vec::new();
        write_frame(&mut wire, &h).unwrap();
        let back: Response = read_frame(&mut wire.as_slice()).unwrap();
        let hs = back.health.unwrap();
        assert_eq!(hs.quarantine.len(), 1);
        assert_eq!(hs.quarantine[0].key, 7);
        assert_eq!(hs.watchdog_restarts, 3);

        let req = Request::health(14);
        assert_eq!(req.kind, RequestKind::Health);

        let req = Request::metrics(15);
        assert_eq!(req.kind, RequestKind::Metrics);
        let m = Response::ok(15).with_metrics("# HELP x y\nx 1\n".to_string());
        let mut wire = Vec::new();
        write_frame(&mut wire, &m).unwrap();
        let back: Response = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(back.metrics.as_deref(), Some("# HELP x y\nx 1\n"));
    }

    #[test]
    fn load_model_round_trips() {
        let req = Request::load_model(21, "/zoo/maeri-v1.0.0.ckpt");
        assert_eq!(req.kind, RequestKind::LoadModel);
        assert_eq!(req.model_path.as_deref(), Some("/zoo/maeri-v1.0.0.ckpt"));
        let mut wire = Vec::new();
        write_frame(&mut wire, &req).unwrap();
        let back: Request = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(req, back);

        let resp = Response::ok(21)
            .with_model_swap(ModelSwapResult {
                family: "maeri".to_string(),
                version: "1.0.0".to_string(),
                parameter_count: 12345,
                replaced: None,
            })
            .with_model_version("1.0.0");
        let mut wire = Vec::new();
        write_frame(&mut wire, &resp).unwrap();
        let back: Response = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(resp, back);
        let swap = back.model_swap.unwrap();
        assert_eq!(swap.family, "maeri");
        assert!(swap.replaced.is_none());
        assert_eq!(back.model_version.as_deref(), Some("1.0.0"));
    }

    #[test]
    fn errors_display() {
        assert!(FrameError::Stalled.to_string().contains("stalled"));
        assert!(FrameError::Truncated.to_string().contains("mid-frame"));
        let e = FrameError::TooLarge { len: 9, max: 8 };
        assert!(e.to_string().contains('9'));
    }
}

//! Consistent-hash ring mapping session cache keys to backend shards.
//!
//! The cluster front routes every request by its
//! [`SessionSpec::cache_key`](gnn_mls::session::SessionSpec::cache_key),
//! so one design always lands on one shard and builds warm exactly once
//! cluster-wide. The ring uses virtual nodes: each shard owns
//! [`DEFAULT_VNODES`] points placed by the shared splitmix64 mixer, so
//! the point set — and therefore the whole routing table — is a pure
//! function of the shard ids. Two independent fronts given the same
//! shard set route identically, and removing a shard moves **only** the
//! keys that shard owned (every other key's clockwise successor is
//! unchanged); both properties are asserted by the property tests.
//!
//! Failover is deterministic too: [`HashRing::secondary`] walks
//! clockwise from the key to the first point owned by a *different*
//! shard, so "the secondary for key K" is a stable fact of the
//! topology, not a per-request coin flip. A failed-over key therefore
//! warms exactly one extra shard, not a random scatter of them.

use gnnmls_par::rng::splitmix64;

/// Virtual nodes per shard. High enough that a 6-shard ring balances
/// within the ±20% the property tests assert; low enough that the
/// point table stays a few KiB.
pub const DEFAULT_VNODES: usize = 256;

/// A consistent-hash ring over shard ids.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// `(point, shard)` sorted by point; binary-searched per lookup.
    points: Vec<(u64, u16)>,
    /// Distinct member shards, sorted.
    shards: Vec<u16>,
    vnodes: usize,
}

/// The ring point for one (shard, replica) pair: a pure function of
/// both, so membership changes never move surviving points.
fn vnode_point(shard: u16, replica: usize) -> u64 {
    splitmix64((u64::from(shard) << 32) ^ (replica as u64))
}

impl HashRing {
    /// Builds a ring over `shards` with [`DEFAULT_VNODES`] points each.
    /// Duplicate ids are ignored.
    pub fn new(shards: impl IntoIterator<Item = u16>) -> Self {
        Self::with_vnodes(shards, DEFAULT_VNODES)
    }

    /// Builds a ring with an explicit virtual-node count (min 1).
    pub fn with_vnodes(shards: impl IntoIterator<Item = u16>, vnodes: usize) -> Self {
        let mut ring = Self {
            points: Vec::new(),
            shards: Vec::new(),
            vnodes: vnodes.max(1),
        };
        for s in shards {
            ring.add(s);
        }
        ring
    }

    /// Adds a shard (no-op if already a member).
    pub fn add(&mut self, shard: u16) {
        if self.shards.contains(&shard) {
            return;
        }
        self.shards.push(shard);
        self.shards.sort_unstable();
        for replica in 0..self.vnodes {
            self.points.push((vnode_point(shard, replica), shard));
        }
        // Ties between shards at one point are broken by shard id so
        // the table is independent of insertion order.
        self.points.sort_unstable();
    }

    /// Removes a shard (no-op if not a member). Only the removed
    /// shard's points leave the table, so only its keys remap.
    pub fn remove(&mut self, shard: u16) {
        self.shards.retain(|&s| s != shard);
        self.points.retain(|&(_, s)| s != shard);
    }

    /// Member shards, sorted.
    pub fn shards(&self) -> &[u16] {
        &self.shards
    }

    /// Number of member shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Index of the first ring point at or clockwise of the key's spot.
    fn successor(&self, key: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let spot = splitmix64(key);
        let idx = self.points.partition_point(|&(p, _)| p < spot);
        Some(idx % self.points.len())
    }

    /// The shard owning `key`: the first point clockwise of the key's
    /// (re-mixed) position. `None` on an empty ring.
    pub fn primary(&self, key: u64) -> Option<u16> {
        self.successor(key).map(|i| self.points[i].1)
    }

    /// The deterministic failover target for `key`: the first point
    /// clockwise owned by a different shard than the primary. `None`
    /// when the ring has fewer than two shards.
    pub fn secondary(&self, key: u64) -> Option<u16> {
        let start = self.successor(key)?;
        let primary = self.points[start].1;
        let n = self.points.len();
        for step in 1..n {
            let (_, shard) = self.points[(start + step) % n];
            if shard != primary {
                return Some(shard);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_routes_nothing() {
        let ring = HashRing::new([]);
        assert!(ring.is_empty());
        assert_eq!(ring.primary(42), None);
        assert_eq!(ring.secondary(42), None);
    }

    #[test]
    fn single_shard_owns_everything_with_no_secondary() {
        let ring = HashRing::new([3]);
        for key in 0..64u64 {
            assert_eq!(ring.primary(key), Some(3));
            assert_eq!(ring.secondary(key), None);
        }
    }

    #[test]
    fn membership_is_insertion_order_independent() {
        let a = HashRing::new([0, 1, 2, 3]);
        let b = HashRing::new([3, 1, 0, 2]);
        for key in 0..512u64 {
            assert_eq!(a.primary(key), b.primary(key));
            assert_eq!(a.secondary(key), b.secondary(key));
        }
    }

    #[test]
    fn secondary_differs_from_primary_and_is_stable() {
        let ring = HashRing::new(0..6);
        for key in 0..512u64 {
            let p = ring.primary(key).unwrap();
            let s = ring.secondary(key).unwrap();
            assert_ne!(p, s, "key {key}: secondary must be a different shard");
            assert_eq!(ring.secondary(key), Some(s), "stable per key");
        }
    }
}

//! The serve daemon: a readiness-driven reactor for the I/O plane in
//! front of a bounded job queue, worker pool, and warm session cache.
//!
//! One **reactor thread** owns every socket: it accepts nonblockingly,
//! assembles frames incrementally (partial reads and partial writes
//! are first-class, see [`gnnmls_reactor::FrameDecoder`] and
//! [`gnnmls_reactor::WriteQueue`]), and pushes decoded requests onto a
//! [`gnnmls_par::queue::BoundedQueue`]. The push **never blocks**: a
//! full queue sheds the request with a typed `Busy` response, so memory
//! use is bounded no matter how many clients pile on — ten thousand
//! idle connections cost ten thousand fd slots and small buffers, not
//! ten thousand threads. Stall deadlines, drain-refusal grace periods,
//! and the inference micro-batching window all live on one
//! [`gnnmls_reactor::TimerWheel`] instead of per-connection timeouts.
//! A small worker pool pops jobs behind the queue; when a worker picks
//! up an `InferMls` job it drains whatever else is queued and coalesces
//! the inference requests that share a session into **one** batched
//! model forward pass ([`gnn_mls::GnnMls::predict_paths`]), splitting
//! the probabilities back per request — bit-identical to serving them
//! one by one. With [`ServeConfig::batch_window_us`] set, the reactor
//! additionally holds same-spec inference jobs for that window so they
//! flush into the queue back-to-back and coalesce deterministically.
//! Workers hand finished responses back to the loop through a
//! completion queue plus a self-pipe [`gnnmls_reactor::Waker`].
//!
//! Sessions are cached warm in an LRU keyed by
//! [`SessionSpec::cache_key`]; a hit answers a what-if with a usage-map
//! restore plus one detached search instead of a full place + route +
//! train, which is the ≥10× the bench records. Builds are serialized by
//! a dedicated lock so a thundering herd on a cold spec builds once.
//!
//! Admission control runs at the connection, **before** a request takes
//! a queue slot or the build lock: deep validation rejects unserviceable
//! requests with a typed `Rejected`, and an [`AdmissionMeter`] sheds
//! work (`Busy`) when the estimated cost in flight would exceed the
//! configured budget.
//!
//! The daemon self-heals two failure classes. A spec whose session
//! build keeps failing is **quarantined**: after
//! [`ServeConfig::quarantine_threshold`] consecutive failures the
//! circuit opens and requests for that spec are refused with a typed
//! `Quarantined` (and a `retry_after_ms`) until a seeded, capped
//! exponential cooldown expires — a poisoned spec cannot grind the
//! build lock. A **watchdog** thread polls the worker pool; a worker
//! that died with the queue still open is respawned and its in-flight
//! job requeued at the front, so one panic loses no request.
//!
//! Shutdown (a client `Shutdown` frame or [`Server::shutdown`]) is a
//! drain, not an abort: the queue closes, the watchdog stops **before**
//! the workers are joined (an in-flight respawn or an open quarantine
//! cooldown can never deadlock the drain), workers finish every queued
//! job, every in-flight response is flushed, and the final
//! [`ServerStats`] are written as a versioned stage-checkpoint envelope
//! when a checkpoint directory is configured. While the drain runs the
//! acceptor answers new connections with a typed `Rejected` refusal
//! (instead of letting them hang until the stall timeout), so a
//! `gnnmls client metrics` against a draining daemon fails fast.

use std::collections::{HashMap, VecDeque};
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gnn_mls::checkpoint::save_stage_logged;
use gnn_mls::session::{DesignSession, SessionError, SessionSpec, ValidationError};
use gnn_mls::AuditMode;
use gnnmls_faults::{fire, FaultSite};
use gnnmls_obs::FieldValue;
use gnnmls_par::queue::{BoundedQueue, PushError};
use gnnmls_reactor::{
    wake_pair, FrameDecoder, Interest, Poller, TimerWheel, WakeReceiver, Waker, WriteQueue,
};

use crate::admission::{self, AdmissionMeter};
use crate::protocol::{
    decode_payload, encode_msg, FrameError, HealthStatus, ModelSwapResult, QuarantineInfo, Request,
    RequestKind, Response, ResponseKind, ServerStats, DEFAULT_INFER_PATHS, MAX_FRAME,
    PROTOCOL_VERSION,
};

/// Stage name of the final drain checkpoint envelope.
pub const STATS_STAGE: &str = "serve-stats";

/// Static serve metrics (always accumulating; see `gnnmls-obs`).
static REQUESTS: gnnmls_obs::Counter = gnnmls_obs::Counter::new(
    "gnnmls_serve_requests_total",
    "requests answered by the daemon, any kind and outcome",
);
static CACHE_HITS: gnnmls_obs::Counter = gnnmls_obs::Counter::new(
    "gnnmls_serve_cache_hits_total",
    "queries answered from an already-warm session",
);
static CACHE_MISSES: gnnmls_obs::Counter = gnnmls_obs::Counter::new(
    "gnnmls_serve_cache_misses_total",
    "queries that had to cold-build a session",
);
static BATCH_SIZE: gnnmls_obs::Histogram = gnnmls_obs::Histogram::new(
    "gnnmls_serve_infer_batch_size",
    "inference requests coalesced into one model forward pass",
    &[1, 2, 4, 8, 16, 32, 64],
);
static REACTOR_WAKEUPS: gnnmls_obs::Counter = gnnmls_obs::Counter::new(
    "gnnmls_reactor_wakeups_total",
    "times the serve event loop woke with at least one readiness event",
);
static REACTOR_ACCEPTS: gnnmls_obs::Counter = gnnmls_obs::Counter::new(
    "gnnmls_reactor_accepts_total",
    "connections accepted by the serve event loop",
);
static REACTOR_CONNECTIONS: gnnmls_obs::Gauge = gnnmls_obs::Gauge::new(
    "gnnmls_reactor_connections",
    "connections currently registered with the serve event loop",
);
static BATCH_WINDOW_FILL: gnnmls_obs::Histogram = gnnmls_obs::Histogram::new(
    "gnnmls_serve_batch_window_fill",
    "inference jobs accumulated when a micro-batching window flushed",
    &[1, 2, 4, 8, 16, 32, 64],
);

/// Daemon configuration.
///
/// Construct with [`ServeConfig::default`] and mutate the public
/// fields, or go through [`ServeConfig::builder`] for validation; the
/// struct is `#[non_exhaustive]` so fields can grow without breaking
/// downstream crates.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Bind address; `127.0.0.1:0` picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Job-queue capacity; pushes beyond it are shed as `Busy`.
    pub queue_capacity: usize,
    /// Worker threads popping the queue.
    pub workers: usize,
    /// Warm sessions kept before LRU eviction.
    pub cache_capacity: usize,
    /// Socket read timeout; an idle timeout re-checks shutdown, a
    /// mid-frame timeout is a typed stall.
    pub read_timeout_ms: u64,
    /// Where the final [`ServerStats`] envelope is written on drain.
    pub checkpoint_dir: Option<PathBuf>,
    /// Admission budget in cost units (see [`admission::request_cost`]);
    /// requests whose estimated cost would push the in-flight total past
    /// it are shed with `Busy`.
    pub admission_budget: u64,
    /// Consecutive session-build failures before a spec's circuit
    /// opens.
    pub quarantine_threshold: u32,
    /// Base quarantine cooldown; doubles per extra strike (capped at
    /// 16x) plus deterministic seeded jitter.
    pub quarantine_cooldown_ms: u64,
    /// Seed for the quarantine jitter (deterministic across runs).
    pub quarantine_seed: u64,
    /// Micro-batching window for `InferMls`, microseconds. When
    /// non-zero the reactor holds same-spec inference jobs up to this
    /// long so they enter the queue back-to-back and coalesce into one
    /// forward pass; `0` (the default) pushes each job immediately and
    /// leaves coalescing to opportunistic queue draining.
    pub batch_window_us: u64,
    /// Connections the reactor keeps open at once; a connection beyond
    /// the cap is answered with a typed `Busy` and closed.
    pub max_connections: usize,
    /// Bytes read from one connection per readiness event — the
    /// fairness cap that stops a firehose client from starving the
    /// loop (leftovers are re-reported by level-triggered polling).
    pub read_budget: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            queue_capacity: 64,
            workers: 2,
            cache_capacity: 4,
            read_timeout_ms: 100,
            checkpoint_dir: None,
            admission_budget: 4096,
            quarantine_threshold: 3,
            quarantine_cooldown_ms: 5_000,
            quarantine_seed: 0x6d6c_735f_7365_7276,
            batch_window_us: 0,
            max_connections: 16_384,
            read_budget: 64 * 1024,
        }
    }
}

impl ServeConfig {
    /// A checked builder seeded with the defaults;
    /// [`ServeConfigBuilder::build`] validates every knob.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            cfg: Self::default(),
        }
    }

    /// Re-opens this config as a builder — the supported way to derive
    /// a modified copy now that the struct is `#[non_exhaustive]`.
    pub fn to_builder(&self) -> ServeConfigBuilder {
        ServeConfigBuilder { cfg: self.clone() }
    }
}

/// The daemon options, by the name the CLI and docs use.
pub type ServeOpts = ServeConfig;

macro_rules! serve_builder_setters {
    ($($(#[$doc:meta])* $name:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            #[must_use]
            pub fn $name(mut self, $name: $ty) -> Self {
                self.cfg.$name = $name;
                self
            }
        )*
    };
}

/// Checked builder for [`ServeConfig`] (see [`ServeConfig::builder`]).
#[derive(Clone, Debug)]
pub struct ServeConfigBuilder {
    cfg: ServeConfig,
}

impl ServeConfigBuilder {
    serve_builder_setters! {
        /// Bind address (`127.0.0.1:0` picks a free port).
        addr: String,
        /// Job-queue capacity; pushes beyond it are shed as `Busy`.
        queue_capacity: usize,
        /// Worker threads popping the queue.
        workers: usize,
        /// Warm sessions kept before LRU eviction.
        cache_capacity: usize,
        /// Socket read timeout, ms.
        read_timeout_ms: u64,
        /// Where the final stats envelope is written on drain.
        checkpoint_dir: Option<PathBuf>,
        /// Admission budget in cost units.
        admission_budget: u64,
        /// Consecutive build failures before a spec's circuit opens.
        quarantine_threshold: u32,
        /// Base quarantine cooldown, ms.
        quarantine_cooldown_ms: u64,
        /// Seed for the quarantine jitter.
        quarantine_seed: u64,
        /// `InferMls` micro-batching window, µs (0 = immediate).
        batch_window_us: u64,
        /// Concurrent-connection cap.
        max_connections: usize,
        /// Bytes read per connection per readiness event.
        read_budget: usize,
    }

    /// Validates every knob and returns the config.
    ///
    /// # Errors
    ///
    /// Returns [`ValidationError::BadConfig`] naming the first field
    /// outside its domain.
    pub fn build(self) -> Result<ServeConfig, ValidationError> {
        let c = self.cfg;
        let bad = |field: &'static str, got: String, want: &'static str| {
            Err(ValidationError::BadConfig { field, got, want })
        };
        if c.addr.is_empty() {
            return bad("addr", "\"\"".to_string(), "a bind address");
        }
        if c.queue_capacity == 0 {
            return bad("queue_capacity", "0".to_string(), ">= 1");
        }
        if c.workers == 0 {
            return bad("workers", "0".to_string(), ">= 1");
        }
        if c.read_timeout_ms == 0 {
            return bad("read_timeout_ms", "0".to_string(), ">= 1");
        }
        if c.admission_budget == 0 {
            return bad("admission_budget", "0".to_string(), ">= 1");
        }
        if c.quarantine_threshold == 0 {
            return bad("quarantine_threshold", "0".to_string(), ">= 1");
        }
        if c.quarantine_cooldown_ms == 0 {
            return bad("quarantine_cooldown_ms", "0".to_string(), ">= 1");
        }
        if c.batch_window_us > 1_000_000 {
            return bad(
                "batch_window_us",
                c.batch_window_us.to_string(),
                "<= 1000000 (one second)",
            );
        }
        if c.max_connections == 0 {
            return bad("max_connections", "0".to_string(), ">= 1");
        }
        if c.read_budget == 0 {
            return bad("read_budget", "0".to_string(), ">= 1");
        }
        Ok(c)
    }
}

// `splitmix64` — the same deterministic mixer the fault planner uses,
// here for quarantine-cooldown jitter. One shared copy lives in
// `gnnmls_par::rng`.
use gnnmls_par::rng::splitmix64;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Stable label for a request kind in metrics and trace events.
fn kind_name(kind: RequestKind) -> &'static str {
    match kind {
        RequestKind::WhatIf => "what_if",
        RequestKind::InferMls => "infer_mls",
        RequestKind::RunFlow => "run_flow",
        RequestKind::Stats => "stats",
        RequestKind::Health => "health",
        RequestKind::Metrics => "metrics",
        RequestKind::LoadModel => "load_model",
        RequestKind::Shutdown => "shutdown",
    }
}

/// Stable label for a response outcome in metrics and trace events.
fn outcome_name(kind: ResponseKind) -> &'static str {
    match kind {
        ResponseKind::Ok => "ok",
        ResponseKind::Busy => "busy",
        ResponseKind::Rejected => "rejected",
        ResponseKind::Quarantined => "quarantined",
        ResponseKind::Error => "error",
    }
}

/// Counts one admission verdict taken at the connection, before a job
/// reaches the queue.
fn count_admission(verdict: &'static str) {
    gnnmls_obs::counter_add("gnnmls_serve_admission_total", &[("verdict", verdict)], 1);
}

/// LRU cache of warm sessions keyed by [`SessionSpec::cache_key`].
struct SessionCache {
    capacity: usize,
    map: HashMap<u64, Arc<DesignSession>>,
    order: VecDeque<u64>,
}

impl SessionCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn touch(&mut self, key: u64) {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
        }
        self.order.push_back(key);
    }

    fn get(&mut self, key: u64) -> Option<Arc<DesignSession>> {
        let s = Arc::clone(self.map.get(&key)?);
        self.touch(key);
        Some(s)
    }

    /// Like `get` but without refreshing recency (stats peeking).
    fn peek(&self, key: u64) -> Option<Arc<DesignSession>> {
        self.map.get(&key).map(Arc::clone)
    }

    /// Inserts, returning how many sessions were evicted.
    fn insert(&mut self, key: u64, session: Arc<DesignSession>) -> u64 {
        let mut evicted = 0;
        if !self.map.contains_key(&key) {
            while self.map.len() >= self.capacity {
                match self.order.pop_front() {
                    Some(old) => {
                        self.map.remove(&old);
                        evicted += 1;
                    }
                    None => break,
                }
            }
        }
        self.map.insert(key, session);
        self.touch(key);
        evicted
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    /// Drops a session whose warm-hit audit failed.
    fn remove(&mut self, key: u64) {
        self.map.remove(&key);
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
        }
    }
}

#[derive(Default)]
struct Counters {
    served: AtomicU64,
    busy: AtomicU64,
    errors: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    batched_inferences: AtomicU64,
    max_batch: AtomicU64,
    rejected: AtomicU64,
    quarantined: AtomicU64,
    shed: AtomicU64,
    watchdog_restarts: AtomicU64,
    audit_failures: AtomicU64,
}

/// The worker→reactor handoff: finished responses land here and the
/// waker nudges the loop (which owns every socket) to flush them.
/// The worker→reactor response channel: completed (connection token,
/// response) pairs plus the waker that pulls the loop out of `wait`.
/// Shared with the cluster front, whose broadcast threads use the same
/// delivery path.
pub(crate) struct Completions {
    pub(crate) ready: Mutex<Vec<(u64, Response)>>,
    pub(crate) waker: Waker,
}

/// Where a job's response goes: the completion queue of the reactor
/// that owns connection `conn`. A response for a connection that
/// vanished in the meantime is silently dropped by the loop — a
/// vanished client is not a server problem.
struct Reply {
    conn: u64,
    completions: Arc<Completions>,
}

impl Reply {
    fn send(&self, resp: Response) {
        lock(&self.completions.ready).push((self.conn, resp));
        self.completions.waker.wake();
    }
}

struct Job {
    req: Request,
    reply: Reply,
    /// Admission cost units held while this job is in flight; returned
    /// to the meter when the response is sent.
    cost: u64,
    /// When the job entered the queue. Only ever *emitted* (as the
    /// queue-wait field of the request trace event), never recorded in
    /// a metric value — see the obs determinism contract.
    enqueued_at: Instant,
}

/// Circuit-breaker state for one spec key.
struct QuarantineEntry {
    strikes: u32,
    open_until: Option<Instant>,
}

/// A hot-swapped zoo model serving one design family. Swaps replace
/// the `Arc` in [`Shared::models`] atomically; requests that already
/// cloned the old `Arc` finish on the weights they started with.
struct ZooModel {
    /// Version string (`major.minor.patch`) stamped into responses.
    version: String,
    /// The restored model.
    model: gnn_mls::GnnMls,
}

/// Outcome of a session lookup: the quarantine gate sits between the
/// cache and the build.
enum SessionGate {
    Ready(Arc<DesignSession>),
    Quarantined { strikes: u32, remaining_ms: u64 },
    Failed(SessionError),
}

struct Shared {
    cfg: ServeConfig,
    queue: BoundedQueue<Job>,
    cache: Mutex<SessionCache>,
    /// Serializes cold builds so a thundering herd builds once.
    build_lock: Mutex<()>,
    counters: Counters,
    running: AtomicBool,
    /// Set only at the very end of a drain: tells the acceptor to exit.
    /// Between `begin_shutdown` and this flag the acceptor stays alive
    /// to refuse new connections with a typed `Rejected` response
    /// instead of letting them hang until the stall timeout.
    accept_stop: AtomicBool,
    meter: AdmissionMeter,
    quarantine: Mutex<HashMap<u64, QuarantineEntry>>,
    /// Hot-swapped zoo models, one slot per design family. Empty slots
    /// fall back to each session's built-in trained model.
    models: Mutex<HashMap<&'static str, Arc<ZooModel>>>,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.running.store(false, Ordering::SeqCst);
        self.queue.close();
    }

    /// If `key`'s circuit is open, returns its strikes and the
    /// remaining cooldown. When the cooldown has expired the circuit
    /// half-opens: the call clears `open_until` and lets one probe
    /// build through (a failure re-opens it for longer).
    fn quarantine_remaining(&self, key: u64) -> Option<(u32, u64)> {
        let mut q = lock(&self.quarantine);
        let e = q.get_mut(&key)?;
        let until = e.open_until?;
        let now = Instant::now();
        if now >= until {
            e.open_until = None;
            return None;
        }
        let ms = until.saturating_duration_since(now).as_millis() as u64;
        Some((e.strikes, ms.max(1)))
    }

    /// Records a failed build; at the threshold the circuit opens with
    /// a capped exponential cooldown plus deterministic seeded jitter.
    fn record_build_failure(&self, key: u64) {
        let mut q = lock(&self.quarantine);
        let e = q.entry(key).or_insert(QuarantineEntry {
            strikes: 0,
            open_until: None,
        });
        e.strikes = e.strikes.saturating_add(1);
        if e.strikes >= self.cfg.quarantine_threshold.max(1) {
            let base = self.cfg.quarantine_cooldown_ms.max(1);
            let exp = e
                .strikes
                .saturating_sub(self.cfg.quarantine_threshold.max(1))
                .min(4);
            let backoff = base.saturating_mul(1u64 << exp);
            let jitter =
                splitmix64(self.cfg.quarantine_seed ^ key ^ u64::from(e.strikes)) % (base / 4 + 1);
            e.open_until = Some(Instant::now() + Duration::from_millis(backoff + jitter));
        }
    }

    /// A successful build closes the circuit and forgets the strikes.
    fn record_build_success(&self, key: u64) {
        lock(&self.quarantine).remove(&key);
    }

    /// Warm lookup or serialized cold build of the session for `spec`,
    /// gated by the quarantine breaker. Warm hits are re-audited in
    /// cheap mode; a corrupted session is dropped from the cache and
    /// the hit turns into a typed failure (the next request rebuilds).
    fn session(&self, spec: &SessionSpec) -> SessionGate {
        let key = spec.cache_key();
        if let Some(s) = lock(&self.cache).get(key) {
            self.counters.cache_hits.fetch_add(1, Ordering::SeqCst);
            CACHE_HITS.inc();
            if let Err(e) = s.audit(AuditMode::Cheap) {
                self.counters.audit_failures.fetch_add(1, Ordering::SeqCst);
                lock(&self.cache).remove(key);
                return SessionGate::Failed(e);
            }
            return SessionGate::Ready(s);
        }
        if let Some((strikes, remaining_ms)) = self.quarantine_remaining(key) {
            return SessionGate::Quarantined {
                strikes,
                remaining_ms,
            };
        }
        let _build = lock(&self.build_lock);
        if let Some(s) = lock(&self.cache).get(key) {
            self.counters.cache_hits.fetch_add(1, Ordering::SeqCst);
            CACHE_HITS.inc();
            return SessionGate::Ready(s);
        }
        // Re-check under the lock: the circuit may have opened while we
        // waited behind the build that struck out.
        if let Some((strikes, remaining_ms)) = self.quarantine_remaining(key) {
            return SessionGate::Quarantined {
                strikes,
                remaining_ms,
            };
        }
        self.counters.cache_misses.fetch_add(1, Ordering::SeqCst);
        CACHE_MISSES.inc();
        let mut build_span = gnnmls_obs::span("session_build");
        build_span.field_str("design", &spec.design);
        match gnn_mls::api::build_session(spec) {
            Ok(built) => {
                build_span.field_bool("ok", true);
                self.record_build_success(key);
                let built = Arc::new(built);
                let evicted = lock(&self.cache).insert(key, Arc::clone(&built));
                self.counters
                    .cache_evictions
                    .fetch_add(evicted, Ordering::SeqCst);
                SessionGate::Ready(built)
            }
            Err(e) => {
                build_span.field_bool("ok", false);
                self.record_build_failure(key);
                SessionGate::Failed(e)
            }
        }
    }

    /// The zoo model currently serving `design`'s family, if one was
    /// swapped in. Cloning the `Arc` pins the weights for the caller:
    /// a concurrent swap replaces the slot without touching in-flight
    /// work.
    fn zoo_model(&self, design: &str) -> Option<Arc<ZooModel>> {
        let family = gnn_mls::design_family(design)?;
        lock(&self.models).get(family).cloned()
    }

    /// Validates and atomically swaps in the checkpoint at `path_str`.
    /// Nothing is replaced unless the file's envelope verifies, its
    /// family is known, and its weights restore — a bad artifact leaves
    /// the serving model untouched.
    fn swap_model(&self, path_str: &str) -> Result<ModelSwapResult, ValidationError> {
        let cp =
            gnn_mls::ZooModelCheckpoint::load(std::path::Path::new(path_str)).map_err(|e| {
                ValidationError::BadModel {
                    family: "unknown".to_string(),
                    why: format!("checkpoint {path_str} does not load: {e}"),
                }
            })?;
        let Some(family) = gnn_mls::FAMILIES.iter().copied().find(|f| *f == cp.family) else {
            return Err(ValidationError::BadModel {
                family: cp.family,
                why: format!(
                    "not a served family (expected one of {})",
                    gnn_mls::FAMILIES.join(", ")
                ),
            });
        };
        let version = cp.version.to_string();
        let model =
            gnn_mls::GnnMls::from_checkpoint(cp.model).map_err(|e| ValidationError::BadModel {
                family: family.to_string(),
                why: format!("weights do not restore: {e}"),
            })?;
        let parameter_count = model.parameter_count() as u64;
        let replaced = lock(&self.models)
            .insert(
                family,
                Arc::new(ZooModel {
                    version: version.clone(),
                    model,
                }),
            )
            .map(|old| old.version.clone());
        gnnmls_obs::counter_add(
            "gnnmls_model_swaps_total",
            &[("family", family), ("version", &version)],
            1,
        );
        Ok(ModelSwapResult {
            family: family.to_string(),
            version,
            parameter_count,
            replaced,
        })
    }

    /// Answers a `LoadModel` request. A refused swap takes a
    /// quarantine strike keyed by the path (not any session spec), so
    /// an operator hammering a broken artifact trips the breaker
    /// without poisoning the session cache.
    fn load_model_response(&self, req: &Request) -> Response {
        let Some(path_str) = req.model_path.as_deref() else {
            self.counters.rejected.fetch_add(1, Ordering::SeqCst);
            return Response::rejected(req.id, "load-model request is missing `model_path`");
        };
        match self.swap_model(path_str) {
            Ok(swap) => {
                let version = swap.version.clone();
                Response::ok(req.id)
                    .with_model_swap(swap)
                    .with_model_version(version)
            }
            Err(e) => {
                self.counters.rejected.fetch_add(1, Ordering::SeqCst);
                self.record_build_failure(gnn_mls::checkpoint::fnv1a64(path_str.as_bytes()));
                Response::rejected(req.id, e)
            }
        }
    }

    fn quarantined_response(id: u64, strikes: u32, remaining_ms: u64) -> Response {
        Response::quarantined(
            id,
            format!("session build circuit-broken after {strikes} consecutive failures"),
            remaining_ms,
        )
    }

    fn health(&self) -> HealthStatus {
        let now = Instant::now();
        let mut quarantine: Vec<QuarantineInfo> = lock(&self.quarantine)
            .iter()
            .map(|(&key, e)| {
                let remaining = e
                    .open_until
                    .map_or(0, |t| t.saturating_duration_since(now).as_millis() as u64);
                QuarantineInfo {
                    key,
                    strikes: e.strikes,
                    open: remaining > 0,
                    remaining_ms: remaining,
                }
            })
            .collect();
        quarantine.sort_by_key(|q| q.key);
        HealthStatus {
            ready: self.running.load(Ordering::SeqCst),
            queue_depth: self.queue.len() as u64,
            queue_capacity: self.queue.capacity() as u64,
            workers: self.cfg.workers.max(1) as u64,
            watchdog_restarts: self.counters.watchdog_restarts.load(Ordering::SeqCst),
            admitted_cost: self.meter.in_flight(),
            admission_budget: self.meter.budget(),
            quarantine,
        }
    }

    fn server_stats(&self, session_key: Option<u64>) -> ServerStats {
        let c = &self.counters;
        let cache = lock(&self.cache);
        ServerStats {
            served: c.served.load(Ordering::SeqCst),
            busy: c.busy.load(Ordering::SeqCst),
            errors: c.errors.load(Ordering::SeqCst),
            cache_hits: c.cache_hits.load(Ordering::SeqCst),
            cache_misses: c.cache_misses.load(Ordering::SeqCst),
            cache_evictions: c.cache_evictions.load(Ordering::SeqCst),
            cached_sessions: cache.len() as u64,
            batched_inferences: c.batched_inferences.load(Ordering::SeqCst),
            max_batch: c.max_batch.load(Ordering::SeqCst),
            rejected: c.rejected.load(Ordering::SeqCst),
            quarantined: c.quarantined.load(Ordering::SeqCst),
            shed: c.shed.load(Ordering::SeqCst),
            watchdog_restarts: c.watchdog_restarts.load(Ordering::SeqCst),
            audit_failures: c.audit_failures.load(Ordering::SeqCst),
            session: session_key.and_then(|k| cache.peek(k)).map(|s| s.stats()),
        }
    }

    fn respond(&self, job: Job, resp: Response) {
        match resp.kind {
            ResponseKind::Error => {
                self.counters.errors.fetch_add(1, Ordering::SeqCst);
            }
            ResponseKind::Quarantined => {
                self.counters.quarantined.fetch_add(1, Ordering::SeqCst);
            }
            ResponseKind::Rejected => {
                self.counters.rejected.fetch_add(1, Ordering::SeqCst);
            }
            _ => {}
        }
        self.counters.served.fetch_add(1, Ordering::SeqCst);
        REQUESTS.inc();
        let outcome = outcome_name(resp.kind);
        gnnmls_obs::counter_add("gnnmls_serve_responses_total", &[("outcome", outcome)], 1);
        // Same funnel, split by serving model: over any window the
        // per-version counts sum to `gnnmls_serve_responses_total`.
        gnnmls_obs::counter_add(
            "gnnmls_serve_responses_by_model_total",
            &[(
                "version",
                resp.model_version.as_deref().unwrap_or("builtin"),
            )],
            1,
        );
        // Request-lifecycle trace: the wall-clock durations live only in
        // this emitted event, never in a metric a caller reads back.
        if gnnmls_obs::enabled() {
            gnnmls_obs::event(
                "request",
                &[
                    ("id", FieldValue::U64(job.req.id)),
                    ("kind", FieldValue::Str(kind_name(job.req.kind).to_string())),
                    ("outcome", FieldValue::Str(outcome.to_string())),
                    (
                        "total_us",
                        FieldValue::U64(job.enqueued_at.elapsed().as_micros() as u64),
                    ),
                ],
            );
        }
        self.meter.release(job.cost);
        job.reply.send(resp);
    }

    fn what_if_response(&self, req: &Request) -> Response {
        let Some(net) = req.net else {
            return Response::error(req.id, "what-if request is missing `net`");
        };
        let session = match self.session(&req.spec) {
            SessionGate::Ready(s) => s,
            SessionGate::Quarantined {
                strikes,
                remaining_ms,
            } => return Self::quarantined_response(req.id, strikes, remaining_ms),
            SessionGate::Failed(e) => return Response::error(req.id, e),
        };
        let budget = req.deadline_expansions.map(|e| e as usize);
        match session.what_if(net, req.allow_mls.unwrap_or(true), budget) {
            Ok(w) => Response::ok(req.id).with_what_if(w),
            Err(e) => Response::error(req.id, e),
        }
    }

    /// Serves a group of `InferMls` jobs that share one spec with a
    /// single batched forward pass.
    fn infer_group(&self, group: Vec<Job>) {
        let Some(first) = group.first() else { return };
        let n = group.len() as u64;
        self.counters.max_batch.fetch_max(n, Ordering::SeqCst);
        BATCH_SIZE.observe(n);
        if n > 1 {
            self.counters
                .batched_inferences
                .fetch_add(n, Ordering::SeqCst);
        }
        let session = match self.session(&first.req.spec) {
            SessionGate::Ready(s) => s,
            SessionGate::Quarantined {
                strikes,
                remaining_ms,
            } => {
                for job in group {
                    let id = job.req.id;
                    self.respond(job, Self::quarantined_response(id, strikes, remaining_ms));
                }
                return;
            }
            SessionGate::Failed(e) => {
                let why = e.to_string();
                for job in group {
                    let id = job.req.id;
                    self.respond(job, Response::error(id, &why));
                }
                return;
            }
        };
        let ks: Vec<usize> = group
            .iter()
            .map(|j| {
                (j.req.paths.unwrap_or(DEFAULT_INFER_PATHS) as usize).min(session.samples().len())
            })
            .collect();
        let kmax = ks.iter().copied().max().unwrap_or(0);
        // A hot-swapped zoo model overrides the session's built-in one.
        // The `Arc` cloned here outlives any concurrent swap: this
        // whole group finishes on the weights it started with.
        let zoo = self.zoo_model(&first.req.spec.design);
        let version: &str = zoo.as_ref().map_or("builtin", |z| z.version.as_str());
        let model = match &zoo {
            Some(z) => &z.model,
            None => match session.model() {
                Some(m) => m,
                None => {
                    for job in group {
                        let id = job.req.id;
                        self.respond(job, Response::error(id, SessionError::NoModel));
                    }
                    return;
                }
            },
        };
        // One forward pass covers the longest request; shorter requests
        // reuse its probability prefix — identical to solo calls because
        // predictions are per-sample.
        let probs = match model.predict_paths(&session.samples()[..kmax]) {
            Ok(p) => p,
            Err(e) => {
                let why = e.to_string();
                for job in group {
                    let id = job.req.id;
                    self.respond(job, Response::error(id, &why));
                }
                return;
            }
        };
        for (job, k) in group.into_iter().zip(ks) {
            let result = session.infer_from_probs(k, &probs);
            let id = job.req.id;
            self.respond(
                job,
                Response::ok(id)
                    .with_infer(result)
                    .with_model_version(version),
            );
        }
    }

    fn handle(&self, job: Job) {
        let req = &job.req;
        if gnnmls_obs::enabled() {
            gnnmls_obs::event(
                "job_start",
                &[
                    ("id", FieldValue::U64(req.id)),
                    ("kind", FieldValue::Str(kind_name(req.kind).to_string())),
                    (
                        "queue_wait_us",
                        FieldValue::U64(job.enqueued_at.elapsed().as_micros() as u64),
                    ),
                ],
            );
        }
        let resp = match req.kind {
            RequestKind::WhatIf => self.what_if_response(req),
            RequestKind::InferMls => {
                // Jobs normally reach inference via the batch path; a
                // stray single is just a batch of one.
                return self.infer_group(vec![job]);
            }
            RequestKind::RunFlow => match gnn_mls::api::run_flow(&req.spec) {
                Ok(report) => match serde_json::to_string_pretty(&report) {
                    Ok(json) => Response::ok(req.id).with_report(json),
                    Err(e) => Response::error(req.id, e),
                },
                Err(e) => Response::error(req.id, e),
            },
            RequestKind::Stats => {
                let stats = self.server_stats(Some(req.spec.cache_key()));
                Response::ok(req.id).with_stats(stats)
            }
            // Health, Metrics, LoadModel, and Shutdown are answered at
            // the connection; never queued.
            RequestKind::Health => Response::ok(req.id).with_health(self.health()),
            RequestKind::Metrics => Response::ok(req.id).with_metrics(gnn_mls::api::metrics()),
            RequestKind::LoadModel => self.load_model_response(req),
            RequestKind::Shutdown => Response::ok(req.id),
        };
        self.respond(job, resp);
    }

    fn handle_batch(&self, jobs: Vec<Job>) {
        let mut groups: HashMap<u64, Vec<Job>> = HashMap::new();
        let mut rest = Vec::new();
        for job in jobs {
            if job.req.kind == RequestKind::InferMls {
                groups
                    .entry(job.req.spec.cache_key())
                    .or_default()
                    .push(job);
            } else {
                rest.push(job);
            }
        }
        for (_, group) in groups {
            self.infer_group(group);
        }
        for job in rest {
            self.handle(job);
        }
    }
}

/// One worker's supervision slot: the watchdog reads `handle` to tell
/// dead from alive and recovers `inflight` when a worker dies holding
/// a job.
#[derive(Default)]
struct WorkerSlot {
    handle: Mutex<Option<JoinHandle<()>>>,
    inflight: Mutex<Option<Job>>,
}

fn worker_loop(shared: &Shared, slot: &WorkerSlot) {
    loop {
        let Some(job) = shared.queue.pop() else {
            return;
        };
        // Park the job where the watchdog can see it, then take it
        // back: a worker that dies in between leaves the job
        // recoverable instead of lost.
        *lock(&slot.inflight) = Some(job);
        if fire(FaultSite::WorkerPanic) {
            panic!("injected worker panic (gnnmls-faults)");
        }
        let Some(job) = lock(&slot.inflight).take() else {
            continue;
        };
        if job.req.kind == RequestKind::InferMls {
            // Micro-batch: coalesce whatever queued up behind this job.
            let mut jobs = vec![job];
            jobs.extend(shared.queue.drain());
            shared.handle_batch(jobs);
        } else {
            shared.handle(job);
        }
    }
}

/// Polls the worker pool; a worker that finished while the queue is
/// still open can only have panicked (workers return only once the
/// closed queue drains). Its in-flight job is requeued at the front and
/// a fresh worker is spawned into the same slot. The loop exits as soon
/// as shutdown begins, so the drain can join workers without racing a
/// respawn.
fn watchdog_loop(shared: &Arc<Shared>, slots: &Arc<Vec<WorkerSlot>>) {
    while shared.running.load(Ordering::SeqCst) {
        for (i, slot) in slots.iter().enumerate() {
            let dead = lock(&slot.handle).as_ref().is_some_and(|h| h.is_finished());
            if dead && !shared.queue.is_closed() {
                if let Some(job) = lock(&slot.inflight).take() {
                    if let Err((job, _)) = shared.queue.requeue(job) {
                        // The queue closed under us: answer directly so
                        // the client is not left hanging.
                        let id = job.req.id;
                        shared.respond(job, Response::error(id, "server is shutting down"));
                    }
                }
                if let Some(h) = lock(&slot.handle).take() {
                    let _ = h.join();
                }
                let ws = Arc::clone(shared);
                let wslots = Arc::clone(slots);
                let h = std::thread::spawn(move || worker_loop(&ws, &wslots[i]));
                *lock(&slot.handle) = Some(h);
                shared
                    .counters
                    .watchdog_restarts
                    .fetch_add(1, Ordering::SeqCst);
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Timer-key namespace tags (high byte) so one wheel serves every
/// purpose without collisions: connection tokens stay below 2^56.
const TAG_MASK: u64 = !((1u64 << 56) - 1);
const TAG_STALL: u64 = 1 << 56;
const TAG_REFUSE: u64 = 2 << 56;
/// The single micro-batching window timer. All pending batches flush
/// together when it fires, so every held job waits at most one window.
const KEY_BATCH: u64 = 3 << 56;

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const TOKEN_FIRST_CONN: u64 = 2;

/// Write backpressure: reading from a connection pauses while its
/// unsent responses exceed this many bytes (the peer is not draining).
const WRITE_HIGH_WATER: usize = 1 << 20;

/// How long a connection accepted during a drain may idle before the
/// typed refusal goes out even without a request frame.
const DRAIN_REFUSE_MS: u64 = 500;

/// One connection's state on the reactor.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    writes: WriteQueue,
    interest: Interest,
    /// Jobs admitted on behalf of this connection, not yet answered.
    inflight: usize,
    /// Accepted while draining: the first frame (or a timer) gets a
    /// typed refusal and nothing is served.
    refusing: bool,
    /// Stop serving; close once the write queue drains and no job is
    /// in flight.
    closing: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            decoder: FrameDecoder::new(PROTOCOL_VERSION, MAX_FRAME),
            writes: WriteQueue::new(),
            interest: Interest::READABLE,
            inflight: 0,
            refusing: false,
            closing: false,
        }
    }
}

/// The readiness-driven I/O plane: one thread, every socket. Decodes
/// requests, runs connection-level admission, pushes jobs, and flushes
/// the responses workers hand back through the completion queue.
struct Reactor {
    shared: Arc<Shared>,
    completions: Arc<Completions>,
    listener: TcpListener,
    poller: Poller,
    timers: TimerWheel,
    wake_rx: WakeReceiver,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// `InferMls` jobs held for the batching window, keyed by spec
    /// cache key so a flush enters the queue as one contiguous run.
    batches: HashMap<u64, Vec<Job>>,
}

impl Reactor {
    fn run(&mut self) {
        let mut events = Vec::new();
        let mut fired: Vec<u64> = Vec::new();
        loop {
            if self.shared.accept_stop.load(Ordering::SeqCst) {
                self.final_flush();
                return;
            }
            // Cap the sleep so a lost wakeup can only ever delay — not
            // deadlock — a drain.
            let timeout = self
                .timers
                .next_deadline()
                .map_or(Duration::from_millis(500), |dl| {
                    dl.saturating_duration_since(Instant::now())
                })
                .min(Duration::from_millis(500));
            events.clear();
            let n = self.poller.wait(&mut events, Some(timeout)).unwrap_or(0);
            if n > 0 {
                REACTOR_WAKEUPS.inc();
            }
            for ev in &events {
                let (token, readable, writable, hangup) =
                    (ev.token, ev.readable, ev.writable, ev.hangup);
                match token {
                    TOKEN_LISTENER => self.on_accept(),
                    TOKEN_WAKER => {
                        self.wake_rx.drain();
                        self.deliver_completions();
                    }
                    _ => self.on_conn_event(token, readable, writable, hangup),
                }
            }
            fired.clear();
            self.timers.pop_expired(Instant::now(), &mut fired);
            for &key in &fired {
                self.on_timer(key);
            }
        }
    }

    fn on_accept(&mut self) {
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            REACTOR_ACCEPTS.inc();
            let token = self.next_token;
            self.next_token += 1;
            let mut conn = Conn::new(stream);
            if self
                .poller
                .register(conn.stream.as_raw_fd(), token, Interest::READABLE)
                .is_err()
            {
                continue;
            }
            REACTOR_CONNECTIONS.add(1);
            if !self.shared.running.load(Ordering::SeqCst) {
                // Draining: wait (bounded) for the client's first frame
                // and answer it with a typed refusal — refusing before
                // the client writes would race a TCP reset that
                // discards the refusal before the client reads it.
                conn.refusing = true;
                self.conns.insert(token, conn);
                self.timers
                    .schedule_after(TAG_REFUSE | token, Duration::from_millis(DRAIN_REFUSE_MS));
                continue;
            }
            if self.conns.len() >= self.shared.cfg.max_connections.max(1) {
                gnnmls_obs::counter_add("gnnmls_serve_conn_limited_total", &[], 1);
                conn.closing = true;
                self.conns.insert(token, conn);
                self.send(token, &Response::busy(0));
                continue;
            }
            self.conns.insert(token, conn);
            // Deterministic stall seam: treat this connection as a
            // wedged client without waiting out a real timeout.
            if fire(FaultSite::SlowClientStall) {
                self.stall_out(token);
            }
        }
    }

    /// Answers with a typed stall notice and closes — the reactor's
    /// rendering of the old mid-frame read timeout.
    fn stall_out(&mut self, token: u64) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.closing = true;
        }
        self.send(token, &Response::error(0, FrameError::Stalled));
    }

    /// Encodes and queues one response on `token`, then flushes as much
    /// as the socket accepts. A gone connection swallows the response.
    fn send(&mut self, token: u64, resp: &Response) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        match encode_msg(resp) {
            Ok(frame) => conn.writes.push(frame),
            // An unencodable response mirrors a failed blocking
            // write_frame: the connection is torn down.
            Err(_) => {
                self.close_conn(token);
                return;
            }
        }
        self.flush_conn(token);
    }

    fn flush_conn(&mut self, token: u64) {
        let flushed = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            conn.writes.flush_to(&mut conn.stream)
        };
        match flushed {
            Ok(_) => self.settle(token),
            Err(_) => self.close_conn(token),
        }
    }

    /// Closes a finished connection or re-syncs its poll interest.
    fn settle(&mut self, token: u64) {
        let Some(conn) = self.conns.get(&token) else {
            return;
        };
        if conn.closing && conn.writes.is_empty() && conn.inflight == 0 {
            self.close_conn(token);
        } else {
            self.update_interest(token);
        }
    }

    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let want = Interest {
            readable: !conn.closing && conn.writes.buffered() < WRITE_HIGH_WATER,
            writable: !conn.writes.is_empty(),
        };
        if want.readable != conn.interest.readable || want.writable != conn.interest.writable {
            let fd = conn.stream.as_raw_fd();
            if self.poller.modify(fd, token, want).is_err() {
                self.close_conn(token);
                return;
            }
            conn.interest = want;
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.timers.cancel(TAG_STALL | token);
            self.timers.cancel(TAG_REFUSE | token);
            REACTOR_CONNECTIONS.add(-1);
        }
    }

    fn on_conn_event(&mut self, token: u64, readable: bool, writable: bool, hangup: bool) {
        if writable {
            self.flush_conn(token);
        }
        if readable {
            self.on_readable(token);
        }
        if hangup && !readable {
            // ERR/HUP with nothing left to read: the peer is gone for
            // good, pending work is undeliverable.
            self.close_conn(token);
        }
    }

    fn on_readable(&mut self, token: u64) {
        let budget = self.shared.cfg.read_budget.max(1);
        let eof = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.closing || conn.writes.buffered() >= WRITE_HIGH_WATER {
                return;
            }
            match conn.decoder.fill_from(&mut conn.stream, budget) {
                Ok((_, eof)) => eof,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        };
        // Decode every complete frame buffered so far.
        loop {
            let (payload, refusing) = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                if conn.closing {
                    break;
                }
                match conn.decoder.next_frame() {
                    Ok(Some(payload)) => (payload, conn.refusing),
                    Ok(None) => break,
                    Err(e) => {
                        // The stream is no longer frame-aligned: one
                        // typed error, then close (mirrors the blocking
                        // reader's oversized/version paths).
                        conn.closing = true;
                        self.send(token, &Response::error(0, FrameError::from(e)));
                        break;
                    }
                }
            };
            if refusing {
                self.refuse(token);
            } else {
                self.handle_payload(token, payload);
            }
        }
        if eof {
            let truncated = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                let truncated = conn.decoder.mid_frame() && !conn.refusing && !conn.closing;
                conn.closing = true;
                truncated
            };
            if truncated {
                // One best-effort typed error for a peer that vanished
                // mid-frame; pending responses still flush first.
                self.send(token, &Response::error(0, FrameError::Truncated));
            }
        }
        // Stall deadline: armed only while a frame is partially read —
        // an idle connection between frames never times out.
        let Some(conn) = self.conns.get(&token) else {
            return;
        };
        let (mid, closing) = (conn.decoder.mid_frame(), conn.closing);
        if mid && !closing {
            self.timers.schedule_after(
                TAG_STALL | token,
                Duration::from_millis(self.shared.cfg.read_timeout_ms.max(1)),
            );
        } else {
            self.timers.cancel(TAG_STALL | token);
        }
        self.settle(token);
    }

    /// Sends the typed drain refusal on a connection accepted while the
    /// daemon is shutting down.
    fn refuse(&mut self, token: u64) {
        self.timers.cancel(TAG_REFUSE | token);
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.closing = true;
        }
        gnnmls_obs::counter_add("gnnmls_serve_drain_refused_total", &[], 1);
        self.send(
            token,
            &Response::rejected(0, "server is draining; connection refused"),
        );
    }

    fn on_timer(&mut self, key: u64) {
        if key == KEY_BATCH {
            self.flush_batches();
            return;
        }
        let token = key & !TAG_MASK;
        match key & TAG_MASK {
            TAG_STALL => {
                let stalled = self
                    .conns
                    .get(&token)
                    .is_some_and(|c| c.decoder.mid_frame() && !c.closing);
                if stalled {
                    self.stall_out(token);
                }
            }
            TAG_REFUSE => {
                let waiting = self
                    .conns
                    .get(&token)
                    .is_some_and(|c| c.refusing && !c.closing);
                if waiting {
                    self.refuse(token);
                }
            }
            _ => {}
        }
    }

    /// Routes worker responses back to the connections that asked.
    fn deliver_completions(&mut self) {
        let ready = std::mem::take(&mut *lock(&self.completions.ready));
        for (token, resp) in ready {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.inflight = conn.inflight.saturating_sub(1);
            }
            self.send(token, &resp);
            // A closing connection whose last response just left is
            // reaped here rather than waiting for another event.
            self.settle(token);
        }
    }

    /// Connection-level dispatch for one decoded frame. Inline kinds
    /// are answered on the loop; the rest run admission and take a
    /// queue slot (or a batching-window seat).
    fn handle_payload(&mut self, token: u64, payload: Vec<u8>) {
        // Deterministic stall seam, same cadence as the threaded
        // server: checked once per incoming request.
        if fire(FaultSite::SlowClientStall) {
            self.stall_out(token);
            return;
        }
        let req: Request = match decode_payload(&payload) {
            Ok(req) => req,
            Err(e) => {
                // The length prefix already consumed the bad payload,
                // so the stream is still frame-aligned: answer with a
                // typed error and keep serving this client.
                self.send(token, &Response::error(0, e));
                return;
            }
        };
        let shared = Arc::clone(&self.shared);
        match req.kind {
            RequestKind::Shutdown => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.closing = true;
                }
                self.send(token, &Response::ok(req.id));
                shared.begin_shutdown();
                return;
            }
            // Health and Metrics are answered on the loop (never
            // queued), so they work even when the queue is full or the
            // workers are wedged — a scraper can always see a
            // saturated daemon.
            RequestKind::Health => {
                self.send(token, &Response::ok(req.id).with_health(shared.health()));
                return;
            }
            RequestKind::Metrics => {
                let resp = Response::ok(req.id).with_metrics(gnn_mls::api::metrics());
                self.send(token, &resp);
                return;
            }
            // LoadModel too: an operator must be able to roll a model
            // while the queue is full. The swap itself is a checkpoint
            // read + restore — bounded work, no session build.
            RequestKind::LoadModel => {
                let resp = shared.load_model_response(&req);
                self.send(token, &resp);
                return;
            }
            _ => {}
        }
        // Admission control: deep-validate before the request can cost
        // a queue slot or the build lock. Rejections are permanent.
        if let Err(e) = admission::validate_request(&req) {
            shared.counters.rejected.fetch_add(1, Ordering::SeqCst);
            count_admission("rejected");
            self.send(token, &Response::rejected(req.id, e));
            return;
        }
        // Circuit breaker: refuse a quarantined spec up front instead
        // of letting it queue up behind the build lock. (Re-checked in
        // `Shared::session` for jobs already in flight.)
        if matches!(req.kind, RequestKind::WhatIf | RequestKind::InferMls) {
            if let Some((strikes, remaining_ms)) = shared.quarantine_remaining(req.spec.cache_key())
            {
                shared.counters.quarantined.fetch_add(1, Ordering::SeqCst);
                count_admission("quarantined");
                let resp = Shared::quarantined_response(req.id, strikes, remaining_ms);
                self.send(token, &resp);
                return;
            }
        }
        // Cost metering: shed when admitting would blow the budget.
        let warm = lock(&shared.cache).peek(req.spec.cache_key()).is_some();
        let cost = admission::request_cost(&req, warm);
        if !shared.meter.try_admit(cost) {
            shared.counters.busy.fetch_add(1, Ordering::SeqCst);
            shared.counters.shed.fetch_add(1, Ordering::SeqCst);
            count_admission("shed");
            self.send(token, &Response::busy(req.id));
            return;
        }
        let id = req.id;
        let batch_key = (req.kind == RequestKind::InferMls && shared.cfg.batch_window_us > 0)
            .then(|| req.spec.cache_key());
        let job = Job {
            req,
            reply: Reply {
                conn: token,
                completions: Arc::clone(&self.completions),
            },
            cost,
            enqueued_at: Instant::now(),
        };
        if let Some(key) = batch_key {
            // Batching window: hold the job so same-spec inference
            // enters the queue back-to-back and coalesces into one
            // forward pass regardless of worker timing.
            self.batches.entry(key).or_default().push(job);
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.inflight += 1;
            }
            if !self.timers.is_armed(KEY_BATCH) {
                self.timers
                    .schedule_after(KEY_BATCH, Duration::from_micros(shared.cfg.batch_window_us));
            }
            return;
        }
        match shared.queue.try_push(job) {
            Ok(()) => {
                count_admission("admitted");
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.inflight += 1;
                }
            }
            Err((job, PushError::Full)) => {
                shared.meter.release(job.cost);
                shared.counters.busy.fetch_add(1, Ordering::SeqCst);
                count_admission("busy");
                self.send(token, &Response::busy(id));
            }
            Err((job, PushError::Closed)) => {
                shared.meter.release(job.cost);
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.closing = true;
                }
                self.send(token, &Response::error(id, "server is shutting down"));
            }
        }
    }

    /// Pushes every held micro-batch into the queue as one atomic run.
    /// A refused batch is shed with the same per-request accounting the
    /// immediate path uses.
    fn flush_batches(&mut self) {
        let batches = std::mem::take(&mut self.batches);
        for (_, jobs) in batches {
            BATCH_WINDOW_FILL.observe(jobs.len() as u64);
            let n = jobs.len() as u64;
            match self.shared.queue.try_push_all(jobs) {
                Ok(()) => {
                    gnnmls_obs::counter_add(
                        "gnnmls_serve_admission_total",
                        &[("verdict", "admitted")],
                        n,
                    );
                }
                Err((jobs, PushError::Full)) => {
                    for job in jobs {
                        self.shared.meter.release(job.cost);
                        self.shared.counters.busy.fetch_add(1, Ordering::SeqCst);
                        count_admission("busy");
                        let (id, token) = (job.req.id, job.reply.conn);
                        if let Some(conn) = self.conns.get_mut(&token) {
                            conn.inflight = conn.inflight.saturating_sub(1);
                        }
                        self.send(token, &Response::busy(id));
                        self.settle(token);
                    }
                }
                Err((jobs, PushError::Closed)) => {
                    for job in jobs {
                        self.shared.meter.release(job.cost);
                        let (id, token) = (job.req.id, job.reply.conn);
                        if let Some(conn) = self.conns.get_mut(&token) {
                            conn.inflight = conn.inflight.saturating_sub(1);
                            conn.closing = true;
                        }
                        self.send(token, &Response::error(id, "server is shutting down"));
                        self.settle(token);
                    }
                }
            }
        }
    }

    /// Post-drain epilogue: the workers are joined, so every owed
    /// response already sits in the completion queue. Deliver them,
    /// flush each socket under a bounded grace period, then drop
    /// everything (closing all fds).
    fn final_flush(&mut self) {
        self.flush_batches();
        let grace = Instant::now() + Duration::from_secs(2);
        let mut events = Vec::new();
        loop {
            self.wake_rx.drain();
            self.deliver_completions();
            let owed: Vec<u64> = self
                .conns
                .iter()
                .filter(|(_, c)| !c.writes.is_empty())
                .map(|(&t, _)| t)
                .collect();
            for token in owed {
                self.flush_conn(token);
            }
            let done = self.conns.values().all(|c| c.writes.is_empty())
                && lock(&self.completions.ready).is_empty();
            if done || Instant::now() >= grace {
                return;
            }
            events.clear();
            let _ = self
                .poller
                .wait(&mut events, Some(Duration::from_millis(20)));
        }
    }
}

/// A running daemon; dropping it drains gracefully.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    reactor: Option<JoinHandle<()>>,
    slots: Arc<Vec<WorkerSlot>>,
    watchdog: Option<JoinHandle<()>>,
    completions: Arc<Completions>,
    final_stats: Option<ServerStats>,
}

impl Server {
    /// Binds and starts accepting.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable, or when
    /// the reactor's poller/waker plumbing cannot be created.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_capacity),
            cache: Mutex::new(SessionCache::new(cfg.cache_capacity)),
            build_lock: Mutex::new(()),
            counters: Counters::default(),
            running: AtomicBool::new(true),
            accept_stop: AtomicBool::new(false),
            meter: AdmissionMeter::new(cfg.admission_budget.max(1)),
            quarantine: Mutex::new(HashMap::new()),
            models: Mutex::new(HashMap::new()),
            cfg,
        });

        let (waker, wake_rx) = wake_pair()?;
        let completions = Arc::new(Completions {
            ready: Mutex::new(Vec::new()),
            waker,
        });
        let mut poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)?;
        poller.register(wake_rx.raw_fd(), TOKEN_WAKER, Interest::READABLE)?;
        let mut reactor = Reactor {
            shared: Arc::clone(&shared),
            completions: Arc::clone(&completions),
            listener,
            poller,
            // 500µs granularity: fine enough for sub-millisecond batch
            // windows, coarse enough that an idle wheel costs nothing.
            timers: TimerWheel::new(Duration::from_micros(500), 512),
            wake_rx,
            conns: HashMap::new(),
            next_token: TOKEN_FIRST_CONN,
            batches: HashMap::new(),
        };
        let reactor = std::thread::spawn(move || reactor.run());

        let slots: Arc<Vec<WorkerSlot>> =
            Arc::new((0..workers).map(|_| WorkerSlot::default()).collect());
        for i in 0..workers {
            let worker_shared = Arc::clone(&shared);
            let worker_slots = Arc::clone(&slots);
            let handle = std::thread::spawn(move || worker_loop(&worker_shared, &worker_slots[i]));
            *lock(&slots[i].handle) = Some(handle);
        }
        let dog_shared = Arc::clone(&shared);
        let dog_slots = Arc::clone(&slots);
        let watchdog = std::thread::spawn(move || watchdog_loop(&dog_shared, &dog_slots));

        Ok(Self {
            shared,
            local_addr,
            reactor: Some(reactor),
            slots,
            watchdog: Some(watchdog),
            completions,
            final_stats: None,
        })
    }

    /// The bound address (resolves `:0` to the picked port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether the daemon is still accepting work.
    pub fn is_running(&self) -> bool {
        self.shared.running.load(Ordering::SeqCst)
    }

    /// Current counters (no session payload).
    pub fn stats(&self) -> ServerStats {
        self.shared.server_stats(None)
    }

    /// Blocks until a client `Shutdown` request arrives, then drains and
    /// returns the final stats.
    pub fn wait(mut self) -> ServerStats {
        while self.is_running() {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.drain()
    }

    /// Initiates shutdown locally, drains, and returns the final stats.
    pub fn shutdown(mut self) -> ServerStats {
        self.shared.begin_shutdown();
        self.drain()
    }

    /// Flips the daemon into draining mode without blocking: new work
    /// is refused (new connections get a typed `Rejected` immediately),
    /// queued jobs still complete. Call [`shutdown`](Self::shutdown) or
    /// drop the server to finish the drain and collect final stats.
    pub fn initiate_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    fn drain(&mut self) -> ServerStats {
        self.shared.begin_shutdown();
        // Stop the watchdog BEFORE joining workers, so a respawn cannot
        // race the joins below — shutdown during an in-flight respawn
        // (or while a quarantine cooldown is pending) must never
        // deadlock the drain.
        if let Some(watchdog) = self.watchdog.take() {
            let _ = watchdog.join();
        }
        // Workers exit once the closed queue is empty — every queued job
        // still gets its response (drain, not abort). The reactor stays
        // alive through this phase so late-arriving connections get a
        // typed drain refusal instead of hanging, and so the answers
        // the workers produce still reach their sockets.
        for slot in self.slots.iter() {
            let handle = lock(&slot.handle).take();
            if let Some(handle) = handle {
                let _ = handle.join();
            }
            // A job a dying worker parked after the watchdog stopped
            // still gets a typed answer instead of a silent drop.
            if let Some(job) = lock(&slot.inflight).take() {
                let id = job.req.id;
                self.shared
                    .respond(job, Response::error(id, "server is shutting down"));
            }
        }
        // Now stop the reactor: it runs a final flush (delivering every
        // completion queued above) before exiting.
        self.shared.accept_stop.store(true, Ordering::SeqCst);
        self.completions.waker.wake();
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
        let stats = self.shared.server_stats(None);
        if let Some(dir) = &self.shared.cfg.checkpoint_dir {
            save_stage_logged(dir, STATS_STAGE, &stats, "gnnmls-serve");
        }
        self.final_stats = Some(stats.clone());
        stats
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.final_stats.is_none() {
            self.drain();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_session() -> Arc<DesignSession> {
        // Building real sessions is covered by integration tests; the
        // LRU logic only needs distinct Arc identities.
        static SESSION: Mutex<Option<Arc<DesignSession>>> = Mutex::new(None);
        let mut slot = lock(&SESSION);
        if slot.is_none() {
            *slot = Some(Arc::new(
                DesignSession::build(&SessionSpec::fast("maeri16")).unwrap(),
            ));
        }
        Arc::clone(slot.as_ref().unwrap())
    }

    #[test]
    fn lru_cache_evicts_oldest_and_counts() {
        let s = dummy_session();
        let mut cache = SessionCache::new(2);
        assert_eq!(cache.insert(1, Arc::clone(&s)), 0);
        assert_eq!(cache.insert(2, Arc::clone(&s)), 0);
        // Touch 1 so 2 becomes the eviction victim.
        assert!(cache.get(1).is_some());
        assert_eq!(cache.insert(3, Arc::clone(&s)), 1);
        assert!(cache.peek(2).is_none(), "2 was least-recently used");
        assert!(cache.peek(1).is_some());
        assert!(cache.peek(3).is_some());
        assert_eq!(cache.len(), 2);
        // Reinserting an existing key never evicts.
        assert_eq!(cache.insert(1, Arc::clone(&s)), 0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_cache_still_holds_one() {
        let s = dummy_session();
        let mut cache = SessionCache::new(0);
        assert_eq!(cache.insert(1, Arc::clone(&s)), 0);
        assert!(cache.get(1).is_some());
        assert_eq!(cache.insert(2, s), 1);
        assert!(cache.peek(1).is_none());
    }

    #[test]
    fn cache_remove_forgets_key_and_recency() {
        let s = dummy_session();
        let mut cache = SessionCache::new(2);
        cache.insert(1, Arc::clone(&s));
        cache.insert(2, Arc::clone(&s));
        cache.remove(1);
        assert!(cache.peek(1).is_none());
        assert_eq!(cache.len(), 1);
        // The removed key no longer occupies an order slot: inserting
        // again evicts nothing.
        assert_eq!(cache.insert(3, Arc::clone(&s)), 0);
        assert_eq!(cache.insert(4, s), 1);
    }

    fn bare_shared(cfg: ServeConfig) -> Shared {
        Shared {
            queue: BoundedQueue::new(cfg.queue_capacity),
            cache: Mutex::new(SessionCache::new(cfg.cache_capacity)),
            build_lock: Mutex::new(()),
            counters: Counters::default(),
            running: AtomicBool::new(true),
            accept_stop: AtomicBool::new(false),
            meter: AdmissionMeter::new(cfg.admission_budget),
            quarantine: Mutex::new(HashMap::new()),
            models: Mutex::new(HashMap::new()),
            cfg,
        }
    }

    #[test]
    fn quarantine_opens_at_threshold_half_opens_after_cooldown() {
        let cfg = ServeConfig {
            quarantine_threshold: 2,
            quarantine_cooldown_ms: 30,
            ..Default::default()
        };
        let s = bare_shared(cfg);
        assert!(s.quarantine_remaining(7).is_none());
        s.record_build_failure(7);
        assert!(
            s.quarantine_remaining(7).is_none(),
            "one strike must not open the circuit"
        );
        s.record_build_failure(7);
        let (strikes, remaining) = s.quarantine_remaining(7).unwrap();
        assert_eq!(strikes, 2);
        assert!(remaining >= 1);
        let h = s.health();
        assert_eq!(h.quarantine.len(), 1);
        assert!(h.quarantine[0].open);
        assert_eq!(h.quarantine[0].key, 7);
        // Cooldown (30ms base + at most 8ms jitter) expires: half-open.
        std::thread::sleep(Duration::from_millis(60));
        assert!(
            s.quarantine_remaining(7).is_none(),
            "cooldown over: one probe may build"
        );
        // A failed probe re-opens the circuit; strikes keep counting.
        s.record_build_failure(7);
        let (strikes, _) = s.quarantine_remaining(7).unwrap();
        assert_eq!(strikes, 3);
        // Success closes it and forgets the history.
        s.record_build_success(7);
        assert!(s.quarantine_remaining(7).is_none());
        assert!(s.health().quarantine.is_empty());
    }

    #[test]
    fn quarantine_jitter_is_deterministic_per_seed() {
        let a = splitmix64(42 ^ 7 ^ 3);
        let b = splitmix64(42 ^ 7 ^ 3);
        assert_eq!(a, b);
        assert_ne!(splitmix64(42 ^ 7 ^ 3), splitmix64(43 ^ 7 ^ 3));
    }
}

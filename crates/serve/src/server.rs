//! The serve daemon: acceptor, bounded job queue, worker pool, and the
//! warm session cache.
//!
//! One thread accepts connections; each connection gets a reader thread
//! that parses frames and pushes jobs onto a
//! [`gnnmls_par::queue::BoundedQueue`]. The push **never blocks**: a
//! full queue sheds the request with a typed `Busy` response, so memory
//! use is bounded no matter how many clients pile on. A small worker
//! pool pops jobs; when a worker picks up an `InferMls` job it drains
//! whatever else is queued and coalesces the inference requests that
//! share a session into **one** batched model forward pass
//! ([`gnn_mls::GnnMls::predict_paths`]), splitting the probabilities
//! back per request — bit-identical to serving them one by one.
//!
//! Sessions are cached warm in an LRU keyed by
//! [`SessionSpec::cache_key`]; a hit answers a what-if with a usage-map
//! restore plus one detached search instead of a full place + route +
//! train, which is the ≥10× the bench records. Builds are serialized by
//! a dedicated lock so a thundering herd on a cold spec builds once.
//!
//! Shutdown (a client `Shutdown` frame or [`Server::shutdown`]) is a
//! drain, not an abort: the queue closes, workers finish every queued
//! job, every in-flight response is flushed, and the final
//! [`ServerStats`] are written as a versioned stage-checkpoint envelope
//! when a checkpoint directory is configured.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use gnn_mls::checkpoint::save_stage;
use gnn_mls::session::{run_flow_for_spec, DesignSession, SessionError, SessionSpec};
use gnnmls_faults::{fire, FaultSite};
use gnnmls_par::queue::{BoundedQueue, PushError};

use crate::protocol::{
    read_frame_idle, write_frame, FrameError, Request, RequestKind, Response, ResponseKind,
    ServerStats, DEFAULT_INFER_PATHS,
};

/// Stage name of the final drain checkpoint envelope.
pub const STATS_STAGE: &str = "serve-stats";

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; `127.0.0.1:0` picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Job-queue capacity; pushes beyond it are shed as `Busy`.
    pub queue_capacity: usize,
    /// Worker threads popping the queue.
    pub workers: usize,
    /// Warm sessions kept before LRU eviction.
    pub cache_capacity: usize,
    /// Socket read timeout; an idle timeout re-checks shutdown, a
    /// mid-frame timeout is a typed stall.
    pub read_timeout_ms: u64,
    /// Where the final [`ServerStats`] envelope is written on drain.
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            queue_capacity: 64,
            workers: 2,
            cache_capacity: 4,
            read_timeout_ms: 100,
            checkpoint_dir: None,
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// LRU cache of warm sessions keyed by [`SessionSpec::cache_key`].
struct SessionCache {
    capacity: usize,
    map: HashMap<u64, Arc<DesignSession>>,
    order: VecDeque<u64>,
}

impl SessionCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn touch(&mut self, key: u64) {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
        }
        self.order.push_back(key);
    }

    fn get(&mut self, key: u64) -> Option<Arc<DesignSession>> {
        let s = Arc::clone(self.map.get(&key)?);
        self.touch(key);
        Some(s)
    }

    /// Like `get` but without refreshing recency (stats peeking).
    fn peek(&self, key: u64) -> Option<Arc<DesignSession>> {
        self.map.get(&key).map(Arc::clone)
    }

    /// Inserts, returning how many sessions were evicted.
    fn insert(&mut self, key: u64, session: Arc<DesignSession>) -> u64 {
        let mut evicted = 0;
        if !self.map.contains_key(&key) {
            while self.map.len() >= self.capacity {
                match self.order.pop_front() {
                    Some(old) => {
                        self.map.remove(&old);
                        evicted += 1;
                    }
                    None => break,
                }
            }
        }
        self.map.insert(key, session);
        self.touch(key);
        evicted
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

#[derive(Default)]
struct Counters {
    served: AtomicU64,
    busy: AtomicU64,
    errors: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    batched_inferences: AtomicU64,
    max_batch: AtomicU64,
}

struct Job {
    req: Request,
    reply: mpsc::Sender<Response>,
}

struct Shared {
    cfg: ServeConfig,
    queue: BoundedQueue<Job>,
    cache: Mutex<SessionCache>,
    /// Serializes cold builds so a thundering herd builds once.
    build_lock: Mutex<()>,
    counters: Counters,
    running: AtomicBool,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.running.store(false, Ordering::SeqCst);
        self.queue.close();
    }

    /// Warm lookup or serialized cold build of the session for `spec`.
    fn session(&self, spec: &SessionSpec) -> Result<Arc<DesignSession>, SessionError> {
        let key = spec.cache_key();
        if let Some(s) = lock(&self.cache).get(key) {
            self.counters.cache_hits.fetch_add(1, Ordering::SeqCst);
            return Ok(s);
        }
        let _build = lock(&self.build_lock);
        if let Some(s) = lock(&self.cache).get(key) {
            self.counters.cache_hits.fetch_add(1, Ordering::SeqCst);
            return Ok(s);
        }
        self.counters.cache_misses.fetch_add(1, Ordering::SeqCst);
        let built = Arc::new(DesignSession::build(spec)?);
        let evicted = lock(&self.cache).insert(key, Arc::clone(&built));
        self.counters
            .cache_evictions
            .fetch_add(evicted, Ordering::SeqCst);
        Ok(built)
    }

    fn server_stats(&self, session_key: Option<u64>) -> ServerStats {
        let c = &self.counters;
        let cache = lock(&self.cache);
        ServerStats {
            served: c.served.load(Ordering::SeqCst),
            busy: c.busy.load(Ordering::SeqCst),
            errors: c.errors.load(Ordering::SeqCst),
            cache_hits: c.cache_hits.load(Ordering::SeqCst),
            cache_misses: c.cache_misses.load(Ordering::SeqCst),
            cache_evictions: c.cache_evictions.load(Ordering::SeqCst),
            cached_sessions: cache.len() as u64,
            batched_inferences: c.batched_inferences.load(Ordering::SeqCst),
            max_batch: c.max_batch.load(Ordering::SeqCst),
            session: session_key.and_then(|k| cache.peek(k)).map(|s| s.stats()),
        }
    }

    fn respond(&self, job: Job, resp: Response) {
        if resp.kind == ResponseKind::Error {
            self.counters.errors.fetch_add(1, Ordering::SeqCst);
        }
        self.counters.served.fetch_add(1, Ordering::SeqCst);
        // A vanished client is not a server problem.
        let _ = job.reply.send(resp);
    }

    fn what_if_response(&self, req: &Request) -> Response {
        let Some(net) = req.net else {
            return Response::error(req.id, "what-if request is missing `net`");
        };
        let session = match self.session(&req.spec) {
            Ok(s) => s,
            Err(e) => return Response::error(req.id, e),
        };
        let budget = req.deadline_expansions.map(|e| e as usize);
        match session.what_if(net, req.allow_mls.unwrap_or(true), budget) {
            Ok(w) => Response::ok(req.id).with_what_if(w),
            Err(e) => Response::error(req.id, e),
        }
    }

    /// Serves a group of `InferMls` jobs that share one spec with a
    /// single batched forward pass.
    fn infer_group(&self, group: Vec<Job>) {
        let Some(first) = group.first() else { return };
        let n = group.len() as u64;
        self.counters.max_batch.fetch_max(n, Ordering::SeqCst);
        if n > 1 {
            self.counters
                .batched_inferences
                .fetch_add(n, Ordering::SeqCst);
        }
        let session = match self.session(&first.req.spec) {
            Ok(s) => s,
            Err(e) => {
                let why = e.to_string();
                for job in group {
                    let id = job.req.id;
                    self.respond(job, Response::error(id, &why));
                }
                return;
            }
        };
        let ks: Vec<usize> = group
            .iter()
            .map(|j| {
                (j.req.paths.unwrap_or(DEFAULT_INFER_PATHS) as usize).min(session.samples().len())
            })
            .collect();
        let kmax = ks.iter().copied().max().unwrap_or(0);
        let Some(model) = session.model() else {
            for job in group {
                let id = job.req.id;
                self.respond(job, Response::error(id, SessionError::NoModel));
            }
            return;
        };
        // One forward pass covers the longest request; shorter requests
        // reuse its probability prefix — identical to solo calls because
        // predictions are per-sample.
        let probs = match model.predict_paths(&session.samples()[..kmax]) {
            Ok(p) => p,
            Err(e) => {
                let why = e.to_string();
                for job in group {
                    let id = job.req.id;
                    self.respond(job, Response::error(id, &why));
                }
                return;
            }
        };
        for (job, k) in group.into_iter().zip(ks) {
            let result = session.infer_from_probs(k, &probs);
            let id = job.req.id;
            self.respond(job, Response::ok(id).with_infer(result));
        }
    }

    fn handle(&self, job: Job) {
        let req = &job.req;
        let resp = match req.kind {
            RequestKind::WhatIf => self.what_if_response(req),
            RequestKind::InferMls => {
                // Jobs normally reach inference via the batch path; a
                // stray single is just a batch of one.
                return self.infer_group(vec![job]);
            }
            RequestKind::RunFlow => match run_flow_for_spec(&req.spec) {
                Ok(report) => match serde_json::to_string_pretty(&report) {
                    Ok(json) => Response::ok(req.id).with_report(json),
                    Err(e) => Response::error(req.id, e),
                },
                Err(e) => Response::error(req.id, e),
            },
            RequestKind::Stats => {
                let stats = self.server_stats(Some(req.spec.cache_key()));
                Response::ok(req.id).with_stats(stats)
            }
            // Shutdown is answered at the connection; never queued.
            RequestKind::Shutdown => Response::ok(req.id),
        };
        self.respond(job, resp);
    }

    fn handle_batch(&self, jobs: Vec<Job>) {
        let mut groups: HashMap<u64, Vec<Job>> = HashMap::new();
        let mut rest = Vec::new();
        for job in jobs {
            if job.req.kind == RequestKind::InferMls {
                groups
                    .entry(job.req.spec.cache_key())
                    .or_default()
                    .push(job);
            } else {
                rest.push(job);
            }
        }
        for (_, group) in groups {
            self.infer_group(group);
        }
        for job in rest {
            self.handle(job);
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        if job.req.kind == RequestKind::InferMls {
            // Micro-batch: coalesce whatever queued up behind this job.
            let mut jobs = vec![job];
            jobs.extend(shared.queue.drain());
            shared.handle_batch(jobs);
        } else {
            shared.handle(job);
        }
    }
}

fn conn_loop(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(
        shared.cfg.read_timeout_ms.max(1),
    )));
    let _ = stream.set_nodelay(true);
    loop {
        // Deterministic stall seam: treat this connection as a wedged
        // client without waiting out a real socket timeout.
        if fire(FaultSite::SlowClientStall) {
            let _ = write_frame(&mut stream, &Response::error(0, FrameError::Stalled));
            return;
        }
        let req: Request =
            match read_frame_idle(&mut stream, || shared.running.load(Ordering::SeqCst)) {
                Ok(Some(req)) => req,
                Ok(None) | Err(FrameError::Closed) => return,
                Err(e @ FrameError::Malformed(_)) => {
                    // The length prefix already consumed the bad payload,
                    // so the stream is still frame-aligned: answer with a
                    // typed error and keep serving this client.
                    if write_frame(&mut stream, &Response::error(0, e)).is_err() {
                        return;
                    }
                    continue;
                }
                Err(e) => {
                    // Oversized, truncated, stalled, or broken: the
                    // stream cannot be trusted to be frame-aligned any
                    // more. One best-effort typed error, then close.
                    let _ = write_frame(&mut stream, &Response::error(0, e));
                    return;
                }
            };
        if req.kind == RequestKind::Shutdown {
            let _ = write_frame(&mut stream, &Response::ok(req.id));
            shared.begin_shutdown();
            return;
        }
        let id = req.id;
        let (tx, rx) = mpsc::channel();
        match shared.queue.try_push(Job { req, reply: tx }) {
            Ok(()) => {
                let resp = rx
                    .recv()
                    .unwrap_or_else(|_| Response::error(id, "server dropped the job"));
                if write_frame(&mut stream, &resp).is_err() {
                    return;
                }
            }
            Err((_, PushError::Full)) => {
                shared.counters.busy.fetch_add(1, Ordering::SeqCst);
                if write_frame(&mut stream, &Response::busy(id)).is_err() {
                    return;
                }
            }
            Err((_, PushError::Closed)) => {
                let _ = write_frame(&mut stream, &Response::error(id, "server is shutting down"));
                return;
            }
        }
    }
}

/// A running daemon; dropping it drains gracefully.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    final_stats: Option<ServerStats>,
}

impl Server {
    /// Binds and starts accepting.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_capacity),
            cache: Mutex::new(SessionCache::new(cfg.cache_capacity)),
            build_lock: Mutex::new(()),
            counters: Counters::default(),
            running: AtomicBool::new(true),
            cfg,
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_shared = Arc::clone(&shared);
        let accept_conns = Arc::clone(&conns);
        let acceptor = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if !accept_shared.running.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let conn_shared = Arc::clone(&accept_shared);
                let handle = std::thread::spawn(move || conn_loop(&conn_shared, stream));
                lock(&accept_conns).push(handle);
            }
        });

        let workers = (0..workers)
            .map(|_| {
                let worker_shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&worker_shared))
            })
            .collect();

        Ok(Self {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            workers,
            conns,
            final_stats: None,
        })
    }

    /// The bound address (resolves `:0` to the picked port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether the daemon is still accepting work.
    pub fn is_running(&self) -> bool {
        self.shared.running.load(Ordering::SeqCst)
    }

    /// Current counters (no session payload).
    pub fn stats(&self) -> ServerStats {
        self.shared.server_stats(None)
    }

    /// Blocks until a client `Shutdown` request arrives, then drains and
    /// returns the final stats.
    pub fn wait(mut self) -> ServerStats {
        while self.is_running() {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.drain()
    }

    /// Initiates shutdown locally, drains, and returns the final stats.
    pub fn shutdown(mut self) -> ServerStats {
        self.shared.begin_shutdown();
        self.drain()
    }

    fn drain(&mut self) -> ServerStats {
        self.shared.begin_shutdown();
        // Unblock the acceptor's blocking accept.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Workers exit once the closed queue is empty — every queued job
        // still gets its response (drain, not abort).
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let conn_handles: Vec<_> = lock(&self.conns).drain(..).collect();
        for conn in conn_handles {
            let _ = conn.join();
        }
        let stats = self.shared.server_stats(None);
        if let Some(dir) = &self.shared.cfg.checkpoint_dir {
            if let Err(e) = save_stage(dir, STATS_STAGE, &stats) {
                eprintln!("gnnmls-serve: could not write final stats checkpoint: {e}");
            }
        }
        self.final_stats = Some(stats.clone());
        stats
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.final_stats.is_none() {
            self.drain();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_session() -> Arc<DesignSession> {
        // Building real sessions is covered by integration tests; the
        // LRU logic only needs distinct Arc identities.
        static SESSION: Mutex<Option<Arc<DesignSession>>> = Mutex::new(None);
        let mut slot = lock(&SESSION);
        if slot.is_none() {
            *slot = Some(Arc::new(
                DesignSession::build(&SessionSpec::fast("maeri16")).unwrap(),
            ));
        }
        Arc::clone(slot.as_ref().unwrap())
    }

    #[test]
    fn lru_cache_evicts_oldest_and_counts() {
        let s = dummy_session();
        let mut cache = SessionCache::new(2);
        assert_eq!(cache.insert(1, Arc::clone(&s)), 0);
        assert_eq!(cache.insert(2, Arc::clone(&s)), 0);
        // Touch 1 so 2 becomes the eviction victim.
        assert!(cache.get(1).is_some());
        assert_eq!(cache.insert(3, Arc::clone(&s)), 1);
        assert!(cache.peek(2).is_none(), "2 was least-recently used");
        assert!(cache.peek(1).is_some());
        assert!(cache.peek(3).is_some());
        assert_eq!(cache.len(), 2);
        // Reinserting an existing key never evicts.
        assert_eq!(cache.insert(1, Arc::clone(&s)), 0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_cache_still_holds_one() {
        let s = dummy_session();
        let mut cache = SessionCache::new(0);
        assert_eq!(cache.insert(1, Arc::clone(&s)), 0);
        assert!(cache.get(1).is_some());
        assert_eq!(cache.insert(2, s), 1);
        assert!(cache.peek(1).is_none());
    }
}

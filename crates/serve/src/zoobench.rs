//! `gnnmls bench zoo` — the model-zoo benchmark ledger.
//!
//! Two measurements, one JSON artifact (`BENCH_zoo.json`):
//!
//! 1. **Pretrain value**: fine-tune epochs needed to reach a hold-out
//!    accuracy target starting from a cross-corpus DGI snapshot versus
//!    from scratch, on the same labeled split with the same config —
//!    the paper's transfer claim as a tracked number.
//! 2. **Warm-swap latency**: wall time of a `LoadModel` round-trip
//!    against a live daemon (checkpoint read + integrity check +
//!    restore + atomic slot swap), sampled over `swap_iters`
//!    iterations; served inline, so it holds under queue pressure.

use std::path::{Path, PathBuf};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use gnn_mls::checkpoint::ModelVersion;
use gnn_mls::model::GnnMls;
use gnnmls_zoo::{build_corpus, epochs_to_converge, train_zoo, CorpusConfig, Registry};

use crate::client::Client;
use crate::protocol::ResponseKind;
use crate::server::{ServeConfig, Server};

/// Knobs for [`run_zoo_bench`]; the defaults fit a CI budget.
#[derive(Clone, Debug)]
pub struct ZooBenchConfig {
    /// Workspace root; the ledger lands under `target/bench/` and the
    /// scratch registry under `target/bench/zoo-registry/`.
    pub workspace_root: PathBuf,
    /// `LoadModel` round-trips to sample.
    pub swap_iters: usize,
    /// Hold-out accuracy the convergence probe races toward.
    pub target_accuracy: f64,
    /// Fine-tune epoch budget per convergence probe.
    pub max_epochs: usize,
    /// Worker threads (0 = auto).
    pub threads: usize,
}

impl Default for ZooBenchConfig {
    fn default() -> Self {
        Self {
            workspace_root: PathBuf::from("."),
            swap_iters: 10,
            target_accuracy: 0.9,
            max_epochs: 40,
            threads: 0,
        }
    }
}

/// One convergence probe's outcome (see `gnnmls_zoo::epochs_to_converge`).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ConvergenceSummary {
    /// Fine-tune epochs consumed.
    pub epochs: u64,
    /// Hold-out accuracy after the last chunk.
    pub accuracy: f64,
    /// Whether the target was reached within the budget.
    pub converged: bool,
}

/// The `BENCH_zoo.json` ledger.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ZooBenchReport {
    /// Ledger schema version.
    pub schema_version: u32,
    /// Designs in the training corpus.
    pub corpus_designs: u64,
    /// Unlabeled path samples pretrained on.
    pub corpus_samples: u64,
    /// Families a model was trained for.
    pub families: Vec<String>,
    /// Final cross-corpus DGI loss.
    pub pretrain_loss: f64,
    /// Accuracy target both convergence probes raced toward.
    pub target_accuracy: f64,
    /// From-scratch fine-tuning probe.
    pub scratch: ConvergenceSummary,
    /// DGI-pretrained fine-tuning probe (same split, same config).
    pub pretrained: ConvergenceSummary,
    /// `LoadModel` round-trips sampled.
    pub swap_iters: u64,
    /// Median warm-swap latency, microseconds.
    pub swap_p50_us: u64,
    /// Worst warm-swap latency, microseconds.
    pub swap_max_us: u64,
}

/// Trains the tiny zoo, probes pretrain-vs-scratch convergence, samples
/// warm-swap latency against a freshly booted daemon, and writes
/// `BENCH_zoo.json` under `target/bench/`.
///
/// # Errors
///
/// Returns a human-readable message when the corpus, training, registry
/// publish, daemon boot, or any swap round-trip fails.
pub fn run_zoo_bench(cfg: &ZooBenchConfig) -> Result<ZooBenchReport, String> {
    let mut corpus_cfg = CorpusConfig::tiny();
    corpus_cfg.threads = cfg.threads;
    let corpus = build_corpus(&corpus_cfg).map_err(|e| format!("corpus: {e}"))?;

    // --- pretrain-vs-scratch convergence, per-epoch resolution -------
    let model_cfg = gnn_mls::ModelConfig {
        pretrain_epochs: 2,
        // Chunk size 1 gives the convergence probe per-epoch resolution.
        finetune_epochs: 1,
        ..Default::default()
    };
    let mut base = GnnMls::new(model_cfg.clone());
    base.set_threads(cfg.threads);
    let pretrain_loss = base
        .pretrain(&corpus.unlabeled())
        .map_err(|e| format!("pretrain: {e}"))?;
    let snapshot = base.to_checkpoint();

    let family = corpus
        .families()
        .into_iter()
        .next()
        .ok_or("corpus has no families")?;
    let labeled = corpus.labeled(&family);
    if labeled.len() < 4 {
        return Err(format!(
            "family {family} has too few labels: {}",
            labeled.len()
        ));
    }
    // Deterministic 3:1 train/eval split by position.
    let (train, eval): (Vec<_>, Vec<_>) = labeled.iter().enumerate().partition(|(i, _)| i % 4 != 3);
    let train: Vec<_> = train.into_iter().map(|(_, s)| s.clone()).collect();
    let eval: Vec<_> = eval.into_iter().map(|(_, s)| s.clone()).collect();

    let probe = |pretrained: Option<&gnn_mls::checkpoint::ModelCheckpoint>| {
        epochs_to_converge(
            &model_cfg,
            pretrained,
            &train,
            &eval,
            cfg.target_accuracy,
            cfg.max_epochs,
            cfg.threads,
        )
        .map(|r| ConvergenceSummary {
            epochs: r.epochs as u64,
            accuracy: r.accuracy,
            converged: r.converged,
        })
        .map_err(|e| format!("convergence probe: {e}"))
    };
    let scratch = probe(None)?;
    let pretrained = probe(Some(&snapshot))?;

    // --- warm-swap latency against a live daemon ---------------------
    let models = train_zoo(&corpus, &model_cfg, cfg.threads).map_err(|e| format!("train: {e}"))?;
    let registry_dir = cfg.workspace_root.join("target/bench/zoo-registry");
    let registry = Registry::open(&registry_dir);
    let fam = models.first().ok_or("train_zoo returned no models")?;
    let entry = registry
        .publish(&fam.to_zoo_checkpoint(ModelVersion::new(1, 0, 0)))
        .map_err(|e| format!("publish: {e}"))?;
    let ckpt_path = registry.entry_path(&entry);

    let serve_cfg = ServeConfig::builder()
        .addr("127.0.0.1:0".to_string())
        .workers(1)
        .build()
        .map_err(|e| format!("serve config: {e}"))?;
    let server = Server::start(serve_cfg).map_err(|e| format!("daemon boot: {e}"))?;
    let swap_us = {
        let mut client =
            Client::connect(server.local_addr()).map_err(|e| format!("connect: {e}"))?;
        let mut samples = Vec::with_capacity(cfg.swap_iters.max(1));
        for i in 0..cfg.swap_iters.max(1) {
            let t0 = Instant::now();
            let resp = client
                .load_model(ckpt_path.to_string_lossy())
                .map_err(|e| format!("swap {i}: {e}"))?;
            if resp.kind != ResponseKind::Ok {
                return Err(format!("swap {i} refused: {:?}", resp.error));
            }
            samples.push(t0.elapsed().as_micros() as u64);
        }
        samples.sort_unstable();
        samples
    };
    server.shutdown();

    let report = ZooBenchReport {
        schema_version: 1,
        corpus_designs: corpus.designs.len() as u64,
        corpus_samples: corpus.len() as u64,
        families: corpus.families(),
        pretrain_loss: f64::from(pretrain_loss),
        target_accuracy: cfg.target_accuracy,
        scratch,
        pretrained,
        swap_iters: swap_us.len() as u64,
        swap_p50_us: swap_us[swap_us.len() / 2],
        swap_max_us: *swap_us.last().unwrap_or(&0),
    };
    write_zoo_report(&cfg.workspace_root, &report)?;
    Ok(report)
}

/// Writes the ledger to `target/bench/BENCH_zoo.json`.
fn write_zoo_report(workspace_root: &Path, report: &ZooBenchReport) -> Result<(), String> {
    gnnmls_bench::render::write_bench_json(workspace_root, "BENCH_zoo.json", report)
        .map(|_| ())
        .ok_or_else(|| "could not write BENCH_zoo.json".to_string())
}

//! The typed serving facade against a live daemon and a live cluster
//! front: per-request-kind methods return typed payloads, transient
//! shed work is retried behind the scenes, and permanent refusals
//! surface as the matching [`ServeError`] variant — the same taxonomy
//! against both serving topologies.

use std::sync::{Mutex, MutexGuard, PoisonError};

use gnn_mls::session::SessionSpec;
use gnnmls_faults::{install, FaultPlan, FaultSite};
use gnnmls_serve::api;
use gnnmls_serve::cluster::{ClusterConfig, ClusterFront, ShardBackendSpec};
use gnnmls_serve::{RetryPolicy, ServeConfig, ServeError, Server};

/// Fault shots are process-global; serialize the file's tests so one
/// test's armed seam can never leak into another's traffic.
fn serialize_tests() -> MutexGuard<'static, ()> {
    static SER: Mutex<()> = Mutex::new(());
    SER.lock().unwrap_or_else(PoisonError::into_inner)
}

fn spec() -> SessionSpec {
    SessionSpec::fast("maeri16")
}

#[test]
fn typed_methods_return_typed_payloads() {
    let _serial = serialize_tests();
    let server =
        Server::start(ServeConfig::builder().read_timeout_ms(50).build().unwrap()).unwrap();
    let mut client = api::Client::connect(server.local_addr()).unwrap();

    let w = client.what_if(&spec(), 0, true, None).unwrap();
    assert_eq!(w.net, 0);
    assert!(w.wirelength_um > 0.0, "typed what-if payload: {w:?}");

    let inference = client
        .infer(
            &spec().with_policy(gnn_mls::flow::FlowPolicy::GnnMls),
            Some(4),
        )
        .unwrap();
    assert!(
        inference.result.paths >= 1,
        "typed inference payload: {:?}",
        inference.result
    );

    let h = client.health().unwrap();
    assert!(h.ready && h.workers > 0, "typed health payload: {h:?}");

    let m = client.metrics().unwrap();
    assert!(m.contains("gnnmls"), "metrics text exposition");

    let s = client.stats(&spec()).unwrap();
    assert!(s.served >= 1, "typed stats payload: {s:?}");

    let report = client.run_flow(&spec()).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&report).unwrap();
    assert!(
        parsed.get("design").is_some(),
        "flow report JSON: {parsed:?}"
    );

    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn transient_shed_is_retried_and_permanent_refusal_is_typed() {
    let _serial = serialize_tests();
    let server =
        Server::start(ServeConfig::builder().read_timeout_ms(50).build().unwrap()).unwrap();
    let mut client = api::Client::connect(server.local_addr())
        .unwrap()
        .with_policy(RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 5,
            max_delay_ms: 25,
            seed: 11,
        });

    // Two shed responses are absorbed by the facade's retry loop; the
    // caller only sees the eventual typed answer.
    let guard = install(&FaultPlan::single(FaultSite::QueueOverflow, 2));
    let s = client.stats(&spec()).unwrap();
    drop(guard);
    assert!(s.busy >= 2, "the shed attempts were counted: {s:?}");

    // A malformed request fails admission permanently: no retries, a
    // typed Rejected with the server's reason.
    let bad = SessionSpec {
        design: "no-such-design".into(),
        ..spec()
    };
    match client.stats(&bad) {
        Err(ServeError::Rejected { why }) => {
            assert!(!why.is_empty(), "refusal carries the server's reason")
        }
        other => panic!("admission refusal must be typed Rejected: {other:?}"),
    }
    // Rejected is permanent; the taxonomy says so.
    let e = client.stats(&bad).unwrap_err();
    assert!(!e.is_transient());
    assert_eq!(e.retry_after_ms(), None);

    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn facade_speaks_to_the_cluster_front_unchanged() {
    let _serial = serialize_tests();
    let mut servers = Vec::new();
    let mut backends = Vec::new();
    for _ in 0..2 {
        let server = Server::start(
            ServeConfig::builder()
                .read_timeout_ms(50)
                .workers(2)
                .build()
                .unwrap(),
        )
        .unwrap();
        backends.push(ShardBackendSpec::External(server.local_addr()));
        servers.push(server);
    }
    let front = ClusterFront::start(
        ClusterConfig::builder()
            .probe_interval_ms(50)
            .retry_base_ms(5)
            .retry_max_ms(50)
            .build()
            .unwrap(),
        backends,
    )
    .unwrap();

    let mut client = api::Client::connect(front.local_addr()).unwrap();
    let w = client.what_if(&spec(), 0, true, None).unwrap();
    assert!(
        w.wirelength_um > 0.0,
        "typed answer through the front: {w:?}"
    );
    let h = client.health().unwrap();
    assert_eq!(h.workers, 2, "front health reports healthy shards: {h:?}");

    front.shutdown();
    for server in servers {
        server.wait();
    }
}

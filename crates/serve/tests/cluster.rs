//! Cluster front-tier contracts, exercised against in-process backend
//! shards (spawn-free, so the suite stays fast in the dev profile):
//! routing and relay for every request kind, bit-identity with a
//! single daemon, failover to the deterministic secondary when the
//! primary dies, the three injected fault seams, the merged drain
//! envelope, and the drain-refusal regression for `client metrics`
//! against a draining server.

use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use gnn_mls::checkpoint::load_stage;
use gnn_mls::session::SessionSpec;
use gnnmls_faults::{install, FaultPlan, FaultSite};
use gnnmls_serve::cluster::{ClusterConfig, ClusterFront, ShardBackendSpec, CLUSTER_STATS_STAGE};
use gnnmls_serve::protocol::ResponseKind;
use gnnmls_serve::{Client, ClusterStats, ServeConfig, Server};

/// Fault shots are process-global; serialize the file's tests so one
/// test's armed seam can never leak into another's traffic.
fn serialize_tests() -> MutexGuard<'static, ()> {
    static SER: Mutex<()> = Mutex::new(());
    SER.lock().unwrap_or_else(PoisonError::into_inner)
}

fn spec() -> SessionSpec {
    SessionSpec::fast("maeri16")
}

/// A spec whose session trains the GNN model, so inference requests
/// are answerable.
fn mls_spec() -> SessionSpec {
    spec().with_policy(gnn_mls::flow::FlowPolicy::GnnMls)
}

/// Starts `n` in-process shard daemons and a front routing to them.
/// Returns the servers in ring-id order (backend `i` is shard id `i`).
fn start_cluster(n: usize, cfg: ClusterConfig) -> (Vec<Option<Server>>, ClusterFront) {
    let mut servers = Vec::with_capacity(n);
    let mut backends = Vec::with_capacity(n);
    for _ in 0..n {
        let server = Server::start(
            ServeConfig::builder()
                .read_timeout_ms(50)
                .workers(2)
                .build()
                .unwrap(),
        )
        .unwrap();
        backends.push(ShardBackendSpec::External(server.local_addr()));
        servers.push(Some(server));
    }
    let front = ClusterFront::start(cfg, backends).unwrap();
    (servers, front)
}

fn fast_cfg() -> ClusterConfig {
    ClusterConfig {
        probe_interval_ms: 50,
        breaker_cooldown_ms: 200,
        retry_base_ms: 5,
        retry_max_ms: 50,
        ..ClusterConfig::default()
    }
}

/// Drains the front, then reaps any shard daemons the front's drain
/// shut down over the wire.
fn teardown(servers: Vec<Option<Server>>, front: ClusterFront) -> ClusterStats {
    let stats = front.shutdown();
    for server in servers.into_iter().flatten() {
        server.wait();
    }
    stats
}

#[test]
fn front_routes_every_request_kind_and_merges_drain_stats() {
    let _serial = serialize_tests();
    let (servers, front) = start_cluster(3, fast_cfg());
    let mut client = Client::connect(front.local_addr()).unwrap();

    let r = client.what_if(&spec(), 0, true, None).unwrap();
    assert_eq!(r.kind, ResponseKind::Ok, "{r:?}");
    assert!(r.what_if.is_some());

    let r = client.infer(&mls_spec(), Some(4)).unwrap();
    assert_eq!(r.kind, ResponseKind::Ok, "{r:?}");
    assert!(r.infer.is_some());

    // Health and metrics are answered by the front itself.
    let h = client.health().unwrap().health.unwrap();
    assert!(h.ready);
    assert_eq!(h.workers, 3, "all shards healthy");
    let m = client.metrics().unwrap();
    assert_eq!(m.kind, ResponseKind::Ok);
    assert!(m.metrics.unwrap().contains("gnnmls"));

    let stats = teardown(servers, front);
    assert!(stats.requests >= 2, "{stats:?}");
    assert!(stats.relayed_ok >= 2, "{stats:?}");
    assert_eq!(stats.lost_after_retry, 0, "{stats:?}");
    assert_eq!(stats.shards.len(), 3);
    // The merged envelope carries each shard's own final stats; the
    // two routed requests landed somewhere.
    let served: u64 = stats
        .shards
        .iter()
        .filter_map(|s| s.stats.as_ref())
        .map(|s| s.served)
        .sum();
    assert!(served >= 2, "{stats:?}");
}

#[test]
fn cluster_answers_are_bit_identical_to_a_single_daemon() {
    let _serial = serialize_tests();
    let solo = Server::start(ServeConfig::builder().read_timeout_ms(50).build().unwrap()).unwrap();
    let mut direct = Client::connect(solo.local_addr()).unwrap();
    let (servers, front) = start_cluster(3, fast_cfg());
    let mut routed = Client::connect(front.local_addr()).unwrap();

    for net in [0u32, 3, 7] {
        let a = direct.what_if(&spec(), net, true, None).unwrap();
        let b = routed.what_if(&spec(), net, true, None).unwrap();
        assert_eq!(a.kind, ResponseKind::Ok);
        assert_eq!(b.kind, ResponseKind::Ok);
        assert_eq!(
            serde_json::to_string(&a.what_if).unwrap(),
            serde_json::to_string(&b.what_if).unwrap(),
            "net {net}: the front must relay the shard's answer unchanged"
        );
    }
    let a = direct.infer(&mls_spec(), Some(4)).unwrap();
    let b = routed.infer(&mls_spec(), Some(4)).unwrap();
    assert_eq!(a.kind, ResponseKind::Ok);
    assert_eq!(
        serde_json::to_string(&a.infer).unwrap(),
        serde_json::to_string(&b.infer).unwrap()
    );

    solo.shutdown();
    teardown(servers, front);
}

#[test]
fn failover_answers_from_the_secondary_when_the_primary_dies() {
    let _serial = serialize_tests();
    let (mut servers, front) = start_cluster(3, fast_cfg());
    let key = spec().cache_key();
    let primary = front.primary_shard(key).unwrap();
    let secondary = front.secondary_shard(key).unwrap();
    assert_ne!(primary, secondary);

    // Warm the primary, then kill it for real.
    let mut client = Client::connect(front.local_addr()).unwrap();
    let r = client.what_if(&spec(), 0, true, None).unwrap();
    assert_eq!(r.kind, ResponseKind::Ok);
    servers[primary as usize].take().unwrap().shutdown();

    // The front must absorb the dead primary inside one request's
    // retry budget: cold-build on the deterministic secondary.
    let r = client.what_if(&spec(), 1, true, None).unwrap();
    assert_eq!(r.kind, ResponseKind::Ok, "failover must answer: {r:?}");

    let stats = teardown(servers, front);
    assert!(stats.failovers >= 1, "{stats:?}");
    assert!(stats.failover_cold >= 1, "cold build accepted: {stats:?}");
    assert_eq!(stats.lost_after_retry, 0, "{stats:?}");
}

#[test]
fn injected_fault_seams_are_absorbed_by_the_retry_path() {
    let _serial = serialize_tests();
    let (servers, front) = start_cluster(3, fast_cfg());
    let mut client = Client::connect(front.local_addr()).unwrap();
    let r = client.what_if(&spec(), 0, true, None).unwrap();
    assert_eq!(r.kind, ResponseKind::Ok);

    // shard-stall: the forward times out once; the failover path still
    // answers the same request.
    let guard = install(&FaultPlan::single(FaultSite::ShardStall, 1));
    let r = client.what_if(&spec(), 1, true, None).unwrap();
    drop(guard);
    assert_eq!(r.kind, ResponseKind::Ok, "stall absorbed: {r:?}");

    // conn-reset: the front↔shard stream dies mid-exchange; same
    // contract.
    let guard = install(&FaultPlan::single(FaultSite::ConnReset, 1));
    let r = client.what_if(&spec(), 2, true, None).unwrap();
    drop(guard);
    assert_eq!(r.kind, ResponseKind::Ok, "reset absorbed: {r:?}");

    // shard-crash: the routed-to shard is declared dead before the
    // forward; the crash is counted and the breaker opens, and the
    // request is still answered.
    let guard = install(&FaultPlan::single(FaultSite::ShardCrash, 1));
    let r = client.what_if(&spec(), 3, true, None).unwrap();
    drop(guard);
    assert_eq!(r.kind, ResponseKind::Ok, "crash absorbed: {r:?}");

    let stats = teardown(servers, front);
    assert!(
        stats.failovers >= 2,
        "stall + reset each failed over: {stats:?}"
    );
    assert!(stats.shard_crashes >= 1, "{stats:?}");
    assert_eq!(stats.lost_after_retry, 0, "{stats:?}");
}

/// Value of `{metric}{{reason="{reason}"}}` in the exposition text, 0
/// when the series has never been touched.
fn failover_count(metrics: &str, reason: &str) -> u64 {
    let series = format!("gnnmls_cluster_failovers_total{{reason=\"{reason}\"}}");
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(series.as_str()))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// Regression for the per-forward blocking-stream leak: a backend that
/// stalls mid-forward must surface as a *typed* failover reason and be
/// absorbed inside the request's retry budget — never parked as a
/// thread blocked on a 2-minute read holding the backend stream. The
/// timing asserts are the teeth: with the old leak, the answer waited
/// out the stall and the drain waited out the parked thread.
#[test]
fn shard_stall_fails_over_typed_without_hung_threads() {
    let _serial = serialize_tests();
    let cfg = ClusterConfig::builder()
        .probe_interval_ms(50)
        .breaker_cooldown_ms(200)
        .retry_base_ms(5)
        .retry_max_ms(50)
        .forward_timeout_ms(60_000)
        .build()
        .unwrap();
    let (servers, front) = start_cluster(3, cfg);
    let mut client = Client::connect(front.local_addr()).unwrap();
    let r = client.what_if(&spec(), 0, true, None).unwrap();
    assert_eq!(r.kind, ResponseKind::Ok);
    let before = failover_count(&client.metrics().unwrap().metrics.unwrap(), "stall");

    let guard = install(&FaultPlan::single(FaultSite::ShardStall, 1));
    let t0 = Instant::now();
    let r = client.what_if(&spec(), 1, true, None).unwrap();
    let answered_in = t0.elapsed();
    drop(guard);
    assert_eq!(r.kind, ResponseKind::Ok, "stall must fail over: {r:?}");
    assert!(
        answered_in < Duration::from_secs(10),
        "failover must not wait out the 60s forward timeout: {answered_in:?}"
    );

    let after = failover_count(&client.metrics().unwrap().metrics.unwrap(), "stall");
    assert!(
        after > before,
        "stall failover must be counted under its typed reason \
         (before {before}, after {after})"
    );

    // The drain is the leak detector: a thread still parked on the
    // stalled forward's read would hold shutdown for the rest of the
    // 60s timeout.
    let t0 = Instant::now();
    let stats = teardown(servers, front);
    assert!(
        t0.elapsed() < Duration::from_secs(15),
        "drain hung on a leaked forward: {:?}",
        t0.elapsed()
    );
    assert!(stats.failovers >= 1, "{stats:?}");
    assert_eq!(stats.lost_after_retry, 0, "{stats:?}");
}

#[test]
fn drain_checkpoints_the_merged_envelope() {
    let _serial = serialize_tests();
    let dir = std::env::temp_dir().join("gnnmls_cluster_envelope_test");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ClusterConfig {
        checkpoint_dir: Some(dir.clone()),
        ..fast_cfg()
    };
    let (servers, front) = start_cluster(2, cfg);
    let mut client = Client::connect(front.local_addr()).unwrap();
    assert_eq!(
        client.what_if(&spec(), 0, true, None).unwrap().kind,
        ResponseKind::Ok
    );
    let stats = teardown(servers, front);

    let from_disk: ClusterStats = load_stage(&dir, CLUSTER_STATS_STAGE)
        .expect("envelope decodes")
        .expect("envelope exists");
    assert_eq!(from_disk, stats, "disk envelope matches the returned stats");
    assert_eq!(from_disk.schema_version, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A `LoadModel` through the front is a broadcast: every live shard
/// swaps, a dead shard is skipped without failing the roll, and a
/// shard's typed refusal (damaged artifact) is relayed naming the
/// shard instead of being half-applied silently.
#[test]
fn load_model_broadcasts_to_every_shard_and_relays_refusals() {
    let _serial = serialize_tests();
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("cluster-swap");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt_path = dir.join("maeri-v2.0.0.ckpt");
    gnn_mls::checkpoint::ZooModelCheckpoint {
        family: "maeri".to_string(),
        version: gnn_mls::checkpoint::ModelVersion::new(2, 0, 0),
        corpus_hashes: vec![7],
        pretrain_epochs: 1,
        finetune_epochs: 1,
        model: gnn_mls::GnnMls::new(gnn_mls::ModelConfig::default()).to_checkpoint(),
    }
    .save(&ckpt_path)
    .unwrap();

    let (mut servers, front) = start_cluster(3, fast_cfg());
    let mut client = Client::connect(front.local_addr()).unwrap();

    // All three shards up: the broadcast lands everywhere and answers
    // with the swap payload.
    let resp = client.load_model(ckpt_path.to_string_lossy()).unwrap();
    assert_eq!(resp.kind, ResponseKind::Ok, "{:?}", resp.error);
    let payload = resp.model_swap.expect("swap payload");
    assert_eq!(payload.family, "maeri");
    assert_eq!(payload.version, "2.0.0");

    // Kill one shard: the roll still succeeds across the survivors.
    servers[1].take().unwrap().shutdown();
    let resp = client.load_model(ckpt_path.to_string_lossy()).unwrap();
    assert_eq!(
        resp.kind,
        ResponseKind::Ok,
        "dead shard must be skipped, not fail the roll: {:?}",
        resp.error
    );

    // Damage the artifact: the shards refuse, and the front relays the
    // first refusal naming the shard.
    let mut bytes = std::fs::read(&ckpt_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x08;
    std::fs::write(&ckpt_path, &bytes).unwrap();
    let resp = client.load_model(ckpt_path.to_string_lossy()).unwrap();
    assert_eq!(resp.kind, ResponseKind::Rejected, "{resp:?}");
    assert!(
        resp.error.as_deref().unwrap_or("").contains("shard"),
        "refusal must name the shard: {:?}",
        resp.error
    );

    drop(client);
    teardown(servers, front);
}

#[test]
fn metrics_against_a_draining_server_is_refused_immediately() {
    let _serial = serialize_tests();
    let server =
        Server::start(ServeConfig::builder().read_timeout_ms(50).build().unwrap()).unwrap();
    let addr = server.local_addr();
    server.initiate_shutdown();

    // A new connection during the drain gets a typed `Rejected` at
    // once — not a hang until the drain finishes, not a raw reset.
    let t0 = Instant::now();
    let mut client = Client::connect(addr).unwrap();
    let resp = client.metrics().unwrap();
    assert_eq!(resp.kind, ResponseKind::Rejected, "{resp:?}");
    assert_eq!(resp.id, 0, "connection-level refusal");
    assert!(
        resp.error.unwrap().contains("draining"),
        "the refusal names the cause"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "refusal must be immediate, not wait out the drain"
    );
    server.wait();
}

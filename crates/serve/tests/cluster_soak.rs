//! Cluster chaos soak: a front over three *spawned* shard daemons
//! survives ~60 seconds of mixed traffic with seeded shard kills —
//! every kill is discovered by the prober, failed over, and respawned;
//! zero requests are lost after retry; a `LoadModel` broadcast rolled
//! mid-storm lands without dropping traffic (inference before the roll
//! answers on the built-in weights, after it on the zoo version, and
//! never on anything else); per-version response counters on every
//! shard sum to that shard's total responses; and a respawned shard
//! serves warm cache hits again once traffic returns to it.
//!
//! Long-running and process-spawning, so ignored by default; the CI
//! soak job runs it with
//! `cargo test --release -p gnnmls-serve --test cluster_soak -- --ignored`.
//! Override the duration with `GNNMLS_SOAK_SECS` (seconds, default 60).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use gnn_mls::checkpoint::{load_stage, save_stage, ModelVersion};
use gnn_mls::flow::FlowPolicy;
use gnn_mls::session::SessionSpec;
use gnn_mls::store::scrub_dir;
use gnn_mls::ModelConfig;
use gnnmls_faults::{install, FaultPlan, FaultSite};
use gnnmls_par::rng::SplitMix64;
use gnnmls_serve::client::RetryPolicy;
use gnnmls_serve::cluster::{ClusterConfig, ClusterFront, ShardBackendSpec, ShardSpawnSpec};
use gnnmls_serve::protocol::ResponseKind;
use gnnmls_serve::{Client, ClientError, ClusterStats, CLUSTER_STATS_STAGE};
use gnnmls_zoo::{build_corpus, train_zoo, CorpusConfig, Registry};

const SHARDS: usize = 3;
/// Version the mid-storm roll publishes and swaps in.
const ROLLED_VERSION: &str = "1.0.0";

/// Trains a real maeri zoo model on a one-design corpus and publishes
/// it under the target tmpdir, returning the checkpoint path.
fn publish_roll_artifact() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("soak-zoo");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let corpus_cfg = CorpusConfig {
        families: vec!["maeri".to_string()],
        ..CorpusConfig::tiny()
    };
    let corpus = build_corpus(&corpus_cfg).unwrap();
    let model_cfg = ModelConfig {
        pretrain_epochs: 2,
        finetune_epochs: 8,
        ..ModelConfig::default()
    };
    let models = train_zoo(&corpus, &model_cfg, 0).unwrap();
    let registry = Registry::open(&dir);
    let entry = registry
        .publish(&models[0].to_zoo_checkpoint(ModelVersion::new(1, 0, 0)))
        .unwrap();
    registry.entry_path(&entry)
}

/// Sums every sample of counter family `name` (labeled or not) in a
/// Prometheus-style text exposition.
fn counter_sum(text: &str, name: &str) -> u64 {
    text.lines()
        .filter(|l| {
            l.strip_prefix(name)
                .is_some_and(|rest| rest.starts_with('{') || rest.starts_with(' '))
        })
        .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
        .sum()
}

/// Spec variant `i`, gnn-mls policy so the inference share of the mix
/// is answerable. Distinct frequencies spread the ring.
fn soak_spec(i: u64) -> SessionSpec {
    let mut spec = SessionSpec::fast("maeri16");
    spec.policy = FlowPolicy::GnnMls;
    spec.target_freq_mhz = 2500.0 + i as f64;
    spec
}

#[test]
#[ignore = "long-running process-spawning chaos soak; run explicitly or via the CI soak job"]
fn chaos_soak_loses_nothing_and_recovers_warm() {
    let secs: u64 = std::env::var("GNNMLS_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60);
    let roll_path = publish_roll_artifact();
    let exe = std::path::PathBuf::from(env!("CARGO_BIN_EXE_gnnmls"));
    let backends = (0..SHARDS)
        .map(|_| {
            ShardBackendSpec::Spawn(ShardSpawnSpec {
                exe: exe.clone(),
                args: vec!["serve".into()],
            })
        })
        .collect();
    let ckpt_dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("soak-ckpt");
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    std::fs::create_dir_all(&ckpt_dir).unwrap();
    let cfg = ClusterConfig {
        probe_interval_ms: 100,
        breaker_cooldown_ms: 300,
        retries: 6,
        retry_base_ms: 10,
        retry_max_ms: 300,
        checkpoint_dir: Some(ckpt_dir.clone()),
        ..ClusterConfig::default()
    };
    let front = ClusterFront::start(cfg, backends).expect("cluster starts");
    let addr = front.local_addr();
    let deadline = Instant::now() + Duration::from_secs(secs);
    let stop = AtomicBool::new(false);
    let answered = AtomicU64::new(0);
    let gave_up = AtomicU64::new(0);
    let builtin_served = AtomicU64::new(0);
    let zoo_served = AtomicU64::new(0);
    let roll_done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // Mid-storm model roll: once traffic is flowing, broadcast a
        // `LoadModel` through the front. Shard kills may race it, so
        // retry until the broadcast lands; the roll must succeed well
        // before the storm ends.
        {
            let roll_done = &roll_done;
            let roll_path = &roll_path;
            scope.spawn(move || {
                std::thread::sleep(Duration::from_secs((secs / 3).max(2)));
                for _ in 0..40 {
                    let Ok(mut client) = Client::connect(addr) else {
                        std::thread::sleep(Duration::from_millis(250));
                        continue;
                    };
                    match client.load_model(roll_path.to_string_lossy()) {
                        Ok(resp) if resp.kind == ResponseKind::Ok => {
                            let swap = resp.model_swap.expect("swap payload");
                            assert_eq!(swap.family, "maeri");
                            assert_eq!(swap.version, ROLLED_VERSION);
                            roll_done.store(true, Ordering::SeqCst);
                            return;
                        }
                        // Shard mid-kill or transport hiccup: go again.
                        Ok(_) | Err(_) => std::thread::sleep(Duration::from_millis(250)),
                    }
                }
                panic!("the mid-storm model roll never landed");
            });
        }
        // Chaos driver: a seeded kill every ~5s, any shard fair game.
        // The prober must notice, fail traffic over, and respawn.
        scope.spawn(|| {
            let mut rng = SplitMix64::new(0x000C_1A05);
            while Instant::now() < deadline {
                for _ in 0..50 {
                    if Instant::now() >= deadline {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
                if Instant::now() >= deadline {
                    break;
                }
                let victim = rng.next_below(SHARDS as u64) as u16;
                front.kill_shard(victim);
            }
            stop.store(true, Ordering::SeqCst);
        });
        // Traffic: three clients, mixed what-if / infer / stats over
        // six specs, through the retrying client path.
        for c in 0..3u64 {
            let stop = &stop;
            let answered = &answered;
            let gave_up = &gave_up;
            let builtin_served = &builtin_served;
            let zoo_served = &zoo_served;
            scope.spawn(move || {
                let policy = RetryPolicy {
                    max_attempts: 8,
                    base_delay_ms: 10,
                    max_delay_ms: 200,
                    seed: c + 1,
                };
                let mut i = c * 1_000_000;
                while !stop.load(Ordering::SeqCst) {
                    let Ok(mut client) = Client::connect(addr) else {
                        std::thread::sleep(Duration::from_millis(50));
                        continue;
                    };
                    for _ in 0..16 {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        i += 1;
                        let spec = soak_spec(i % 6);
                        let req = match i % 10 {
                            0..=6 => {
                                gnnmls_serve::Request::what_if(i, spec, (i % 16) as u32, true, None)
                            }
                            7 | 8 => gnnmls_serve::Request::infer(i, spec, Some(8)),
                            _ => gnnmls_serve::Request::stats(i, spec),
                        };
                        match client.request_with_retry(&req, &policy) {
                            Ok(resp) => {
                                assert_eq!(resp.id, req.id, "mismatched response");
                                assert!(matches!(
                                    resp.kind,
                                    ResponseKind::Ok
                                        | ResponseKind::Error
                                        | ResponseKind::Rejected
                                        | ResponseKind::Quarantined
                                ));
                                // Every answered inference names the
                                // weights it ran on: the session's
                                // built-in model or the rolled zoo
                                // version — never anything else, even
                                // across the swap.
                                if resp.kind == ResponseKind::Ok && resp.infer.is_some() {
                                    match resp.model_version.as_deref() {
                                        Some("builtin") => {
                                            builtin_served.fetch_add(1, Ordering::SeqCst);
                                        }
                                        Some(ROLLED_VERSION) => {
                                            zoo_served.fetch_add(1, Ordering::SeqCst);
                                        }
                                        other => panic!("unexpected model version {other:?}"),
                                    }
                                }
                                answered.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(ClientError::GaveUp { .. }) => {
                                gave_up.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(ClientError::Frame(_)) => break, // reconnect
                        }
                    }
                }
            });
        }
    });

    // Recovery: wait for every breaker to close (all shards respawned
    // and probing healthy again).
    let mut client = Client::connect(addr).expect("front alive after the storm");
    let recovered = Instant::now() + Duration::from_secs(15);
    loop {
        let h = client.health().expect("health answered").health.unwrap();
        if h.workers == SHARDS as u64 {
            break;
        }
        assert!(
            Instant::now() < recovered,
            "all shards must probe healthy again after the storm: {h:?}"
        );
        std::thread::sleep(Duration::from_millis(200));
    }

    // Warm-hit recovery: drive one spec twice, then read its shard's
    // stats through the front — the second answer must have been a
    // cache hit on whichever (possibly respawned) shard owns it now.
    let spec = soak_spec(0);
    for net in [0u32, 1] {
        let r = client.what_if(&spec, net, true, None).expect("routed");
        assert_eq!(r.kind, ResponseKind::Ok, "{r:?}");
    }
    let stats = client.stats(&spec).expect("routed").stats.unwrap();
    assert!(
        stats.cache_hits >= 1,
        "the owning shard must serve warm again after respawn: {stats:?}"
    );

    // The roll landed, traffic answered on both sides of it, and no
    // response ever named a third set of weights (asserted inline).
    assert!(
        roll_done.load(Ordering::SeqCst),
        "the mid-storm model roll must have succeeded"
    );
    assert!(
        builtin_served.load(Ordering::SeqCst) > 0,
        "inference before the roll must answer on the built-in weights"
    );
    assert!(
        zoo_served.load(Ordering::SeqCst) > 0,
        "inference after the roll must answer on the zoo version"
    );

    // Per-version accounting: on every shard, the responses-by-model
    // counter family sums to exactly the shard's total responses — the
    // swap never leaks a response outside the versioned ledger.
    for (id, shard_addr) in front.shard_addrs().iter().enumerate() {
        let mut shard_client = Client::connect(shard_addr).expect("shard reachable");
        let text = shard_client
            .metrics()
            .expect("shard metrics")
            .metrics
            .expect("exposition text");
        let total = counter_sum(&text, "gnnmls_serve_responses_total");
        let by_model = counter_sum(&text, "gnnmls_serve_responses_by_model_total");
        assert_eq!(
            by_model, total,
            "shard {id}: per-version response counters must sum to the total"
        );
    }

    // Kill-9-mid-envelope-write round: the drain's final stats envelope
    // crashes between fsync and rename — exactly the residue a kill -9
    // at that instant leaves (complete, fsynced tmp; untouched dest).
    // The drain itself must survive (the write is logged, not fatal),
    // fsck must delete the orphan, and a restart rewriting the envelope
    // from the returned stats must leave the directory fsck-clean.
    let seam = install(&FaultPlan::single(FaultSite::RenameCrash, 1));
    let cluster = front.shutdown();
    drop(seam);
    assert!(
        ckpt_dir.join("cluster-stats.ckpt.tmp").exists(),
        "the crashed envelope write must leave its orphan tmp behind"
    );
    assert!(
        !ckpt_dir.join("cluster-stats.ckpt").exists(),
        "the crashed rename must not have landed"
    );
    let fsck = scrub_dir(&ckpt_dir).expect("fsck scans the checkpoint dir");
    assert!(
        fsck.consistent() && fsck.repaired >= 1,
        "fsck must repair the crash residue: {:?}",
        fsck.findings
    );
    assert!(!ckpt_dir.join("cluster-stats.ckpt.tmp").exists());
    save_stage(&ckpt_dir, CLUSTER_STATS_STAGE, &cluster)
        .expect("a restarted front rewrites the envelope durably");
    let replayed: ClusterStats = load_stage(&ckpt_dir, CLUSTER_STATS_STAGE)
        .expect("envelope decodes")
        .expect("envelope present");
    assert_eq!(replayed.schema_version, cluster.schema_version);
    assert!(
        scrub_dir(&ckpt_dir).expect("rescan").clean(),
        "the rewritten checkpoint dir must be fsck-clean"
    );

    let answered = answered.load(Ordering::SeqCst);
    let gave_up = gave_up.load(Ordering::SeqCst);
    assert!(answered > 0, "the soak must answer traffic");
    assert_eq!(
        cluster.lost_after_retry, 0,
        "no request may be lost after retry: {cluster:?}"
    );
    assert!(
        cluster.shard_respawns >= 1,
        "the storm must have respawned at least one shard: {cluster:?}"
    );
    println!(
        "cluster soak: {secs}s — {answered} answered, {gave_up} gave up, \
         {} requests / {} ok / {} failovers ({} cold) / {} crashes / \
         {} respawns / {} lost",
        cluster.requests,
        cluster.relayed_ok,
        cluster.failovers,
        cluster.failover_cold,
        cluster.shard_crashes,
        cluster.shard_respawns,
        cluster.lost_after_retry
    );
}

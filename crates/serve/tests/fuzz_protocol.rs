//! Protocol fuzzing: arbitrary bytes and boundary-value specs pushed
//! through the wire must always come back as typed errors — never a
//! panic, never a wedged connection, never an untyped close without a
//! best-effort notice.

use std::io::{Read, Write};
use std::net::TcpStream;

use gnn_mls::session::SessionSpec;
use gnnmls_serve::protocol::{
    read_frame, write_frame, Request, Response, ResponseKind, PROTOCOL_VERSION,
};
use gnnmls_serve::{Client, ServeConfig, Server};

/// Deterministic byte source (splitmix64) so every failure reproduces.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn garbage(seed: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (splitmix64(seed ^ i as u64) & 0xFF) as u8)
        .collect()
}

#[test]
fn arbitrary_bytes_never_panic_or_wedge_the_server() {
    let server =
        Server::start(ServeConfig::builder().read_timeout_ms(50).build().unwrap()).unwrap();
    let addr = server.local_addr();

    for round in 0u64..24 {
        let len = 1 + (splitmix64(round) % 300) as usize;
        let payload = garbage(round.wrapping_mul(31) + 7, len);
        let mut s = TcpStream::connect(addr).unwrap();
        if round % 2 == 0 {
            // Well-framed garbage: the stream stays frame-aligned, so
            // the server must answer a typed Malformed notice and keep
            // serving this very connection.
            let mut buf = vec![PROTOCOL_VERSION];
            buf.extend_from_slice(&(len as u32).to_be_bytes());
            buf.extend_from_slice(&payload);
            s.write_all(&buf).unwrap();
            let resp: Response = read_frame(&mut s).unwrap();
            assert_eq!(resp.kind, ResponseKind::Error, "round {round}");
            assert_eq!(resp.id, 0, "connection-level notice carries id 0");
            // The connection survived: a real request round-trips.
            write_frame(&mut s, &Request::health(round + 1)).unwrap();
            let resp: Response = read_frame(&mut s).unwrap();
            assert_eq!(resp.id, round + 1, "round {round}: conn wedged");
            assert_eq!(resp.kind, ResponseKind::Ok);
        } else {
            // Raw garbage: the first byte is an arbitrary protocol
            // version and the next four an arbitrary length prefix
            // (possibly huge, possibly never satisfied). The server may
            // close the connection — it must not crash and the close
            // must not take the daemon down.
            let _ = s.write_all(&payload);
            let _ = s.read(&mut [0u8; 256]);
        }
    }

    // The daemon survived the storm and still answers.
    let mut client = Client::connect(addr).unwrap();
    let resp = client.health().unwrap();
    assert_eq!(resp.kind, ResponseKind::Ok);
    assert!(resp.health.unwrap().ready);
    server.shutdown();
}

#[test]
fn boundary_value_specs_are_rejected_typed_and_never_wedge() {
    let server =
        Server::start(ServeConfig::builder().read_timeout_ms(50).build().unwrap()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let good = SessionSpec::fast("maeri16");

    let bad_freq = |f: f64| {
        let mut s = good.clone();
        s.target_freq_mhz = f;
        s
    };
    let mut cases: Vec<(Request, &str)> = vec![
        (Request::stats(1, SessionSpec::fast("nonesuch")), "design"),
        (Request::stats(2, bad_freq(0.0)), "frequency"),
        (Request::stats(3, bad_freq(-2500.0)), "frequency"),
        (Request::stats(4, bad_freq(1e12)), "frequency"),
        (
            Request::what_if(6, good.clone(), 0, true, Some(0)),
            "deadline",
        ),
        (
            Request::what_if(7, good.clone(), 0, true, Some(u64::MAX)),
            "deadline",
        ),
        (Request::infer(8, good.clone(), Some(0)), "paths"),
        (Request::infer(9, good.clone(), Some(u64::MAX)), "paths"),
    ];
    {
        let mut unknown_tech = good.clone();
        unknown_tech.tech = "exotic".to_string();
        cases.push((Request::stats(10, unknown_tech), "tech"));
        let mut netless = Request::what_if(11, good.clone(), 0, true, None);
        netless.net = None;
        cases.push((netless, "net"));
    }

    let total = cases.len() as u64;
    for (req, what) in &cases {
        let resp = client.request(req).unwrap();
        assert_eq!(
            resp.kind,
            ResponseKind::Rejected,
            "case `{what}` (id {}) must be rejected: {resp:?}",
            req.id
        );
        assert_eq!(resp.id, req.id, "rejection echoes the request id");
        let why = resp.error.unwrap();
        assert!(
            why.to_lowercase().contains(what),
            "case `{what}`: error `{why}` does not name the problem"
        );
    }

    // All of it was refused before any build: the same connection still
    // serves a valid request, and nothing was built or queued.
    let resp = client.request(&Request::stats(99, good.clone())).unwrap();
    assert_eq!(resp.kind, ResponseKind::Ok);
    let stats = resp.stats.unwrap();
    assert_eq!(stats.rejected, total);
    assert_eq!(stats.cache_misses, 0, "rejected specs must never build");
    assert_eq!(stats.errors, 0, "rejections are their own kind");
    server.shutdown();
}

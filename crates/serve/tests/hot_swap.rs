//! Hot model swap against a live daemon: a published zoo checkpoint is
//! loaded over the wire, inference flips to the new version without the
//! session being rebuilt, repeated swaps report what they replaced,
//! and damaged or unknown-family artifacts are refused with typed
//! `Rejected` responses that never disturb serving traffic.

use std::fs;
use std::path::{Path, PathBuf};

use gnn_mls::checkpoint::{ModelVersion, ZooModelCheckpoint};
use gnn_mls::flow::FlowPolicy;
use gnn_mls::session::SessionSpec;
use gnn_mls::{GnnMls, ModelConfig};
use gnnmls_faults::{install, FaultPlan, FaultSite};
use gnnmls_serve::protocol::ResponseKind;
use gnnmls_serve::{Client, ServeConfig, Server};
use gnnmls_zoo::{build_corpus, train_zoo, CorpusConfig, Registry};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("hotswap-{tag}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn mls_spec() -> SessionSpec {
    SessionSpec::fast("maeri16").with_policy(FlowPolicy::GnnMls)
}

/// Trains a real maeri zoo model on a one-design corpus and publishes
/// it, returning the registry and the checkpoint path.
fn publish_maeri_model(dir: &Path) -> (Registry, PathBuf) {
    let corpus_cfg = CorpusConfig {
        families: vec!["maeri".to_string()],
        ..CorpusConfig::tiny()
    };
    let corpus = build_corpus(&corpus_cfg).unwrap();
    let model_cfg = ModelConfig {
        pretrain_epochs: 2,
        finetune_epochs: 8,
        ..ModelConfig::default()
    };
    let models = train_zoo(&corpus, &model_cfg, 0).unwrap();
    let registry = Registry::open(dir);
    let entry = registry
        .publish(&models[0].to_zoo_checkpoint(ModelVersion::new(1, 0, 0)))
        .unwrap();
    let path = registry.entry_path(&entry);
    (registry, path)
}

#[test]
fn daemon_hot_swaps_refuses_damage_and_keeps_serving() {
    let dir = scratch_dir("swap");
    let (_registry, ckpt_path) = publish_maeri_model(&dir);

    let server = Server::start(
        ServeConfig::builder()
            .read_timeout_ms(50)
            .workers(2)
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let spec = mls_spec();

    // Before any swap the session's own trained model answers.
    let before = client.infer(&spec, Some(4)).unwrap();
    assert_eq!(before.kind, ResponseKind::Ok, "{:?}", before.error);
    assert_eq!(before.model_version.as_deref(), Some("builtin"));

    // First swap: fresh slot, nothing replaced.
    let swap = client.load_model(ckpt_path.to_string_lossy()).unwrap();
    assert_eq!(swap.kind, ResponseKind::Ok, "{:?}", swap.error);
    let payload = swap.model_swap.expect("swap payload");
    assert_eq!(payload.family, "maeri");
    assert_eq!(payload.version, "1.0.0");
    assert!(payload.parameter_count > 0);
    assert_eq!(payload.replaced, None);
    assert_eq!(swap.model_version.as_deref(), Some("1.0.0"));

    // Inference now answers with the zoo model — same warm session, new
    // weights — and stays deterministic call to call.
    let after = client.infer(&spec, Some(4)).unwrap();
    assert_eq!(after.kind, ResponseKind::Ok, "{:?}", after.error);
    assert_eq!(after.model_version.as_deref(), Some("1.0.0"));
    let again = client.infer(&spec, Some(4)).unwrap();
    assert_eq!(
        again.infer, after.infer,
        "swapped model must serve deterministically"
    );

    // Re-swapping the same artifact reports what it displaced.
    let reswap = client.load_model(ckpt_path.to_string_lossy()).unwrap();
    assert_eq!(reswap.kind, ResponseKind::Ok);
    assert_eq!(
        reswap.model_swap.expect("swap payload").replaced.as_deref(),
        Some("1.0.0")
    );

    // A damaged artifact is refused with a typed rejection and the live
    // slot keeps the healthy weights.
    let bad_path = dir.join("damaged.ckpt");
    let mut bytes = fs::read(&ckpt_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    fs::write(&bad_path, &bytes).unwrap();
    let refused = client.load_model(bad_path.to_string_lossy()).unwrap();
    assert_eq!(refused.kind, ResponseKind::Rejected, "{:?}", refused.kind);
    assert!(refused.error.is_some());

    // An unknown family is refused up front.
    let alien_path = dir.join("warp9-v1.0.0.ckpt");
    ZooModelCheckpoint {
        family: "warp9".to_string(),
        version: ModelVersion::new(1, 0, 0),
        corpus_hashes: vec![],
        pretrain_epochs: 0,
        finetune_epochs: 0,
        model: GnnMls::new(ModelConfig::default()).to_checkpoint(),
    }
    .save(&alien_path)
    .unwrap();
    let alien = client.load_model(alien_path.to_string_lossy()).unwrap();
    assert_eq!(alien.kind, ResponseKind::Rejected);

    // The injected read-side corruption seam: typed refusal while the
    // shot is armed, clean swap right after — the daemon never wedges.
    {
        let _guard = install(&FaultPlan::single(FaultSite::ModelSwapCorrupt, 1));
        let seamed = client.load_model(ckpt_path.to_string_lossy()).unwrap();
        assert_eq!(seamed.kind, ResponseKind::Rejected, "{:?}", seamed.kind);
    }
    let healed = client.load_model(ckpt_path.to_string_lossy()).unwrap();
    assert_eq!(healed.kind, ResponseKind::Ok, "{:?}", healed.error);

    // Serving traffic was never disturbed by the refused swaps.
    let still = client.infer(&spec, Some(4)).unwrap();
    assert_eq!(still.kind, ResponseKind::Ok);
    assert_eq!(still.model_version.as_deref(), Some("1.0.0"));
    assert_eq!(still.infer, after.infer);

    // The swap and per-version serving counters are visible to a scrape.
    let metrics = client.metrics().unwrap().metrics.unwrap();
    assert!(
        metrics.contains("gnnmls_model_swaps_total{"),
        "swap counter missing from exposition"
    );
    assert!(
        metrics.contains("gnnmls_serve_responses_by_model_total{"),
        "per-version response counter missing from exposition"
    );
    assert!(metrics.contains("version=\"1.0.0\""));

    drop(client);
    server.shutdown();
}

//! Reactor I/O-plane contracts that a thread-per-connection server
//! cannot honor: slow-loris clients hold sockets, not worker threads;
//! thousands of idle connections coexist with a live request trickle.
//!
//! The two storm tests are ignored by default: the CI soak job runs the
//! 2k variant explicitly, and the 10k variant is the local evidence run
//! behind the `BENCH_serve.json` soak numbers. The 10k storm runs the
//! daemon as a child process — one process cannot hold both ends of
//! 10k sockets under a 20k `RLIMIT_NOFILE` hard limit.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use gnn_mls::session::SessionSpec;
use gnnmls_reactor::net::raise_nofile_limit;
use gnnmls_serve::protocol::{ResponseKind, PROTOCOL_VERSION};
use gnnmls_serve::{Client, ServeConfig, Server};

fn spec() -> SessionSpec {
    SessionSpec::fast("maeri16")
}

/// 100 slow-loris connections — each dribbles one byte of a frame and
/// then stalls — must not consume worker threads: a real client's
/// queries complete promptly while every loris is still connected.
/// (The threaded server parked one thread per loris; with 2 workers it
/// would have wedged at loris #2. The reactor parks them in epoll and
/// reaps them with the per-connection stall timer.)
#[test]
fn slow_loris_clients_do_not_consume_workers() {
    let server = Server::start(
        ServeConfig::builder()
            .workers(2)
            .read_timeout_ms(5_000)
            .build()
            .unwrap(),
    )
    .unwrap();
    let addr = server.local_addr();

    let lorises: Vec<TcpStream> = (0..100)
        .map(|i| {
            let mut s = TcpStream::connect(addr).unwrap_or_else(|e| panic!("loris {i}: {e}"));
            // One byte of the 5-byte header: mid-frame forever (until
            // the stall timer fires, well after this test's asserts).
            s.write_all(&[PROTOCOL_VERSION]).unwrap();
            s
        })
        .collect();

    // With all 100 lorises mid-frame, a real client must still be
    // served: health inline, what-if through the worker pool.
    let mut client = Client::connect(addr).unwrap();
    let t0 = Instant::now();
    let h = client.health().unwrap().health.unwrap();
    assert!(h.ready, "healthy under loris load");
    let r = client.what_if(&spec(), 0, true, None).unwrap();
    assert_eq!(r.kind, ResponseKind::Ok, "{r:?}");
    for _ in 0..10 {
        let r = client.health().unwrap();
        assert_eq!(r.kind, ResponseKind::Ok);
    }
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "real work starved by slow-loris connections: {:?}",
        t0.elapsed()
    );

    drop(lorises);
    server.shutdown();
}

/// Opens `n` idle connections against `addr`, interleaving a request
/// trickle, then measures warm what-if latency with the whole storm
/// still connected. Returns (p50, p99) in milliseconds.
fn idle_storm_against(addr: SocketAddr, n: usize) -> (f64, f64) {
    // Prime the session cache so the measured trickle is warm.
    let mut client = Client::connect(addr).unwrap();
    let r = client.what_if(&spec(), 0, true, None).unwrap();
    assert_eq!(r.kind, ResponseKind::Ok, "{r:?}");

    let mut idle: Vec<TcpStream> = Vec::with_capacity(n);
    for i in 0..n {
        idle.push(TcpStream::connect(addr).unwrap_or_else(|e| panic!("idle conn {i}: {e}")));
        // A request trickle interleaved with the ramp: the plane keeps
        // answering while it accepts.
        if i % 1_000 == 999 {
            let r = client.what_if(&spec(), 0, true, None).unwrap();
            assert_eq!(r.kind, ResponseKind::Ok, "trickle during ramp: {r:?}");
        }
    }

    // p50/p99 of warm what-if with every idle connection still open.
    let mut lat_ms: Vec<f64> = (0..200)
        .map(|_| {
            let t0 = Instant::now();
            let r = client.what_if(&spec(), 0, true, None).unwrap();
            assert_eq!(r.kind, ResponseKind::Ok);
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    lat_ms.sort_by(f64::total_cmp);
    let p50 = lat_ms[lat_ms.len() / 2];
    let p99 = lat_ms[lat_ms.len() * 99 / 100];

    let h = client.health().unwrap().health.unwrap();
    assert!(h.ready, "healthy with {n} idle connections");
    (p50, p99)
}

/// The CI soak job's high-concurrency step: 2k idle connections plus a
/// trickle against an in-process daemon (≈4k fds, inside any sane
/// rlimit).
#[test]
#[ignore = "2k-connection storm; the CI soak job runs it explicitly"]
fn idle_storm_2k_connections_keep_serving() {
    const N: usize = 2_000;
    if let Err(e) = raise_nofile_limit((N as u64) * 2 + 1_024) {
        eprintln!("skipping idle storm: cannot raise RLIMIT_NOFILE: {e}");
        return;
    }
    let server = Server::start(ServeConfig::default()).unwrap();
    let (p50, p99) = idle_storm_against(server.local_addr(), N);
    println!("idle storm 2k: warm what-if p50 {p50:.3} ms, p99 {p99:.3} ms");
    server.shutdown();
}

/// Spawns `gnnmls serve` as a child on a free port and waits until it
/// answers health.
// The child escapes to the caller, which reaps it; the failure path
// below kills and waits. The lint cannot see through the ready-loop.
#[allow(clippy::zombie_processes)]
fn spawn_daemon() -> (Child, SocketAddr) {
    let addr = {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap()
    };
    let mut child = Command::new(env!("CARGO_BIN_EXE_gnnmls"))
        .args(["serve", "--addr", &addr.to_string()])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn gnnmls serve");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(mut c) = Client::connect(addr) {
            if matches!(c.health(), Ok(r) if r.kind == ResponseKind::Ok) {
                return (child, addr);
            }
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("spawned daemon never became ready");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The local evidence run behind the `BENCH_serve.json` soak numbers:
/// 10k idle connections plus a trickle, daemon out of process.
#[test]
#[ignore = "10k-connection storm; run locally for soak evidence"]
fn idle_storm_10k_connections_keep_serving() {
    const N: usize = 10_000;
    if let Err(e) = raise_nofile_limit((N as u64) + 2_048) {
        eprintln!("skipping idle storm: cannot raise RLIMIT_NOFILE: {e}");
        return;
    }
    let (mut child, addr) = spawn_daemon();
    let (p50, p99) = idle_storm_against(addr, N);
    println!("idle storm 10k: warm what-if p50 {p50:.3} ms, p99 {p99:.3} ms");
    let mut client = Client::connect(addr).unwrap();
    let r = client.shutdown().unwrap();
    assert_eq!(r.kind, ResponseKind::Ok);
    let status = child.wait().expect("daemon exit status");
    assert!(status.success(), "daemon drain failed: {status:?}");
}

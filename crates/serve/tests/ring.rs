//! Property tests for the consistent-hash ring: load balance within
//! ±20% of fair share across 6+ shards, and minimal key movement on
//! membership change — removing a shard remaps only the keys it owned,
//! and re-adding it restores the exact original mapping.

use std::collections::HashMap;

use gnnmls_serve::ring::DEFAULT_VNODES;
use gnnmls_serve::HashRing;

/// A deterministic pseudo-random key stream, deliberately *different*
/// from the splitmix64 mixer the ring itself uses so the balance test
/// is not a fixed point of the hash.
fn keys(n: u64) -> impl Iterator<Item = u64> {
    (0..n).map(|i| {
        i.wrapping_mul(0x5851_F42D_4C95_7F2D)
            .wrapping_add(0x1405_7B7E_F767_814F)
    })
}

const KEYS: u64 = 10_000;

#[test]
fn load_balances_within_twenty_percent_of_fair_share() {
    for shards in [6usize, 8, 12] {
        let ring = HashRing::new(0..shards as u16);
        let mut owned: HashMap<u16, u64> = HashMap::new();
        for key in keys(KEYS) {
            *owned.entry(ring.primary(key).unwrap()).or_default() += 1;
        }
        assert_eq!(owned.len(), shards, "every shard must own some keys");
        let fair = KEYS as f64 / shards as f64;
        for (shard, count) in owned {
            let skew = (count as f64 - fair).abs() / fair;
            assert!(
                skew <= 0.20,
                "{shards} shards, {DEFAULT_VNODES} vnodes: shard {shard} owns \
                 {count} of {KEYS} keys ({:.1}% vs fair {:.1}%, skew {:.1}%)",
                100.0 * count as f64 / KEYS as f64,
                100.0 / shards as f64,
                100.0 * skew
            );
        }
    }
}

#[test]
fn removing_a_shard_remaps_only_its_own_keys() {
    let shards = 8u16;
    let ring = HashRing::new(0..shards);
    let before: Vec<(u64, u16)> = keys(KEYS).map(|k| (k, ring.primary(k).unwrap())).collect();

    for victim in 0..shards {
        let mut shrunk = ring.clone();
        shrunk.remove(victim);
        let mut moved = 0u64;
        for &(key, old) in &before {
            let new = shrunk.primary(key).unwrap();
            if old == victim {
                moved += 1;
                assert_ne!(new, victim, "removed shard cannot own keys");
            } else {
                assert_eq!(
                    new, old,
                    "key {key} moved off surviving shard {old} when \
                     unrelated shard {victim} left"
                );
            }
        }
        // Sanity: the victim actually owned a share, so the test is
        // exercising real movement, not a vacuous pass.
        assert!(moved > 0, "victim {victim} owned no keys out of {KEYS}");
    }
}

#[test]
fn re_adding_a_shard_restores_the_exact_original_mapping() {
    let ring = HashRing::new(0..8u16);
    let before: Vec<(u64, u16)> = keys(KEYS).map(|k| (k, ring.primary(k).unwrap())).collect();

    let mut churned = ring.clone();
    churned.remove(3);
    churned.remove(6);
    churned.add(6);
    churned.add(3);
    assert_eq!(ring.shards(), churned.shards());
    for (key, old) in before {
        assert_eq!(
            churned.primary(key),
            Some(old),
            "key {key}: mapping must be a pure function of membership"
        );
        assert_eq!(ring.secondary(key), churned.secondary(key));
    }
}

#[test]
fn secondary_is_deterministic_across_independently_built_rings() {
    // Two fronts that never talked to each other must agree on every
    // failover target — that is what makes failover "partition
    // tolerant" rather than a per-process coin flip.
    let a = HashRing::new([5u16, 0, 2, 4, 1, 3]);
    let b = HashRing::new(0..6u16);
    for key in keys(2_000) {
        assert_eq!(a.primary(key), b.primary(key));
        assert_eq!(a.secondary(key), b.secondary(key));
        assert_ne!(a.primary(key), a.secondary(key));
    }
}

//! Fault-storm soak: the daemon must survive a seeded storm cycling
//! every registered fault site for at least 60 seconds with zero
//! crashes, every response typed, and a clean drain that writes a
//! decodable final stats envelope.
//!
//! Long-running, so ignored by default; the CI soak job runs it with
//! `cargo test -p gnnmls-serve --test soak -- --ignored`. Override the
//! duration with `GNNMLS_SOAK_SECS` (seconds, default 60).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use gnn_mls::checkpoint::load_stage;
use gnn_mls::session::SessionSpec;
use gnnmls_faults::{install, FaultPlan, ALL_SITES};
use gnnmls_serve::client::{ClientError, RetryPolicy};
use gnnmls_serve::protocol::ResponseKind;
use gnnmls_serve::{Client, Request, ServeConfig, Server, ServerStats};

fn spec() -> SessionSpec {
    SessionSpec::fast("maeri16")
}

#[test]
#[ignore = "long-running fault-storm soak; run explicitly or via the CI soak job"]
fn fault_storm_soak_survives_every_site() {
    let secs: u64 = std::env::var("GNNMLS_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60);
    let dir = std::env::temp_dir().join("gnnmls_serve_soak_test");
    let _ = std::fs::remove_dir_all(&dir);

    let server = Server::start(
        ServeConfig::builder()
            .read_timeout_ms(50)
            .workers(2)
            .quarantine_threshold(2)
            .quarantine_cooldown_ms(500)
            .checkpoint_dir(Some(dir.clone()))
            .build()
            .unwrap(),
    )
    .unwrap();
    let addr = server.local_addr();
    let deadline = Instant::now() + Duration::from_secs(secs);
    let stop = AtomicBool::new(false);
    let answered = AtomicU64::new(0);
    let gave_up = AtomicU64::new(0);

    std::thread::scope(|scope| {
        // Storm driver: seeded plans cycling all registered sites, a
        // fresh plan every 200ms so each site gets armed many times
        // over the soak.
        scope.spawn(|| {
            let mut round = 0u64;
            while Instant::now() < deadline {
                let plan = FaultPlan::from_seed(round.wrapping_mul(0x9E37).wrapping_add(1));
                let guard = install(&plan);
                std::thread::sleep(Duration::from_millis(200));
                drop(guard);
                round += 1;
            }
            stop.store(true, Ordering::SeqCst);
        });
        // Client hammers: every request kind, through the retrying
        // path, reconnecting whenever a stall or corrupt frame kills
        // the connection.
        for c in 0..3u64 {
            let stop = &stop;
            let answered = &answered;
            let gave_up = &gave_up;
            scope.spawn(move || {
                let policy = RetryPolicy {
                    max_attempts: 4,
                    base_delay_ms: 2,
                    max_delay_ms: 25,
                    seed: c + 1,
                };
                let mut i = c * 1_000_000;
                while !stop.load(Ordering::SeqCst) {
                    let Ok(mut client) = Client::connect(addr) else {
                        std::thread::sleep(Duration::from_millis(20));
                        continue;
                    };
                    for _ in 0..16 {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        i += 1;
                        let req = match i % 4 {
                            0 => Request::what_if(
                                i,
                                spec(),
                                (i % 48) as u32,
                                true,
                                Some(1 + i % 5_000),
                            ),
                            1 => Request::infer(i, spec(), Some(1 + i % 8)),
                            2 => Request::stats(i, spec()),
                            _ => Request::health(i),
                        };
                        match client.request_with_retry(&req, &policy) {
                            Ok(resp) => {
                                // Every answer is typed and matched.
                                assert_eq!(resp.id, req.id, "mismatched response");
                                assert!(matches!(
                                    resp.kind,
                                    ResponseKind::Ok
                                        | ResponseKind::Error
                                        | ResponseKind::Rejected
                                        | ResponseKind::Quarantined
                                ));
                                answered.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(ClientError::GaveUp { .. }) => {
                                gave_up.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(ClientError::Frame(_)) => break, // reconnect
                        }
                    }
                }
            });
        }
    });

    // The storm is over (all guards dropped): a clean drain must
    // complete and checkpoint the final stats envelope.
    let mut client = Client::connect(addr).expect("daemon alive after the storm");
    let resp = client.shutdown().expect("shutdown answered");
    assert_eq!(resp.kind, ResponseKind::Ok);
    let stats = server.wait();

    let from_disk: ServerStats = load_stage(&dir, gnnmls_serve::server::STATS_STAGE)
        .expect("envelope decodes")
        .expect("envelope exists");
    assert_eq!(from_disk, stats);

    let answered = answered.load(Ordering::SeqCst);
    let gave_up = gave_up.load(Ordering::SeqCst);
    assert!(answered > 0, "the soak must answer traffic");
    println!(
        "soak: {}s over {} sites — {answered} answered, {gave_up} gave up, \
         {} served / {} busy / {} errors / {} rejected / {} quarantined / \
         {} watchdog restarts / {} audit failures",
        secs,
        ALL_SITES.len(),
        stats.served,
        stats.busy,
        stats.errors,
        stats.rejected,
        stats.quarantined,
        stats.watchdog_restarts,
        stats.audit_failures
    );
    let _ = std::fs::remove_dir_all(&dir);
}

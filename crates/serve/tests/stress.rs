//! Threaded stress and determinism contracts: N clients × M requests
//! with no lost or duplicated responses, `Busy` exactly when the queue
//! is full, warm what-if answers bit-identical to a single-shot run,
//! micro-batched inference identical to unbatched, and drain-on-shutdown
//! writing a decodable final stats envelope.

use std::sync::{Mutex, MutexGuard, PoisonError};

use gnn_mls::checkpoint::load_stage;
use gnn_mls::session::{DesignSession, SessionSpec};
use gnnmls_faults::{install, FaultPlan, FaultSite};
use gnnmls_serve::client::{ClientError, RetryPolicy};
use gnnmls_serve::protocol::ResponseKind;
use gnnmls_serve::{Client, ServeConfig, Server, ServerStats};

/// Fault shots are process-global; serialize the file's tests so one
/// test's armed seam can never leak into another's traffic.
fn serialize_tests() -> MutexGuard<'static, ()> {
    static SER: Mutex<()> = Mutex::new(());
    SER.lock().unwrap_or_else(PoisonError::into_inner)
}

fn spec() -> SessionSpec {
    SessionSpec::fast("maeri16")
}

#[test]
fn stress_no_lost_or_duplicated_responses() {
    let _serial = serialize_tests();
    const CLIENTS: u64 = 6;
    const REQUESTS: u64 = 20;
    let server = Server::start(
        ServeConfig::builder()
            .queue_capacity(8)
            .workers(4)
            .read_timeout_ms(50)
            .build()
            .unwrap(),
    )
    .unwrap();
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..REQUESTS {
                    let id = c * 1000 + i;
                    let req = gnnmls_serve::Request::stats(id, SessionSpec::fast("maeri16"));
                    let resp = client.request(&req).expect("response for every request");
                    // Exactly one response per request, echoing its id.
                    assert_eq!(resp.id, id, "response for the wrong request");
                    assert!(
                        matches!(resp.kind, ResponseKind::Ok | ResponseKind::Busy),
                        "stats can only succeed or be shed: {resp:?}"
                    );
                }
            });
        }
    });

    // Conservation: every request was either served by a worker or shed
    // as Busy — nothing lost, nothing double-counted. (The final stats
    // request snapshots the counters before counting itself.)
    let mut client = Client::connect(addr).unwrap();
    let resp = client.stats(&spec()).unwrap();
    let stats = resp.stats.expect("stats payload");
    assert_eq!(
        stats.served + stats.busy,
        CLIENTS * REQUESTS,
        "lost or duplicated responses: {stats:?}"
    );
    server.shutdown();
}

#[test]
fn busy_exactly_when_queue_full() {
    let _serial = serialize_tests();
    const SHED: u64 = 3;
    let server =
        Server::start(ServeConfig::builder().read_timeout_ms(50).build().unwrap()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // The QueueOverflow seam forces try_push to report a full queue for
    // exactly SHED pushes — each must surface as a typed Busy, and the
    // moment the queue has room again the same request succeeds.
    let guard = install(&FaultPlan::single(FaultSite::QueueOverflow, SHED as u32));
    let mut busy = 0u64;
    let mut ok = 0u64;
    for _ in 0..SHED + 2 {
        match client.stats(&spec()).unwrap().kind {
            ResponseKind::Busy => busy += 1,
            ResponseKind::Ok => ok += 1,
            other => panic!("unexpected response kind {other:?}"),
        }
    }
    drop(guard);
    assert_eq!(busy, SHED, "Busy exactly when the queue reports full");
    assert_eq!(ok, 2);

    let stats = client.stats(&spec()).unwrap().stats.unwrap();
    assert_eq!(stats.busy, SHED);
    server.shutdown();
}

#[test]
fn retry_rides_through_shed_requests_and_gives_up_typed() {
    let _serial = serialize_tests();
    let server =
        Server::start(ServeConfig::builder().read_timeout_ms(50).build().unwrap()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Three forced sheds, then room: the retrying client never surfaces
    // a Busy — the fourth attempt lands.
    let guard = install(&FaultPlan::single(FaultSite::QueueOverflow, 3));
    let req = gnnmls_serve::Request::stats(77, spec());
    let policy = RetryPolicy {
        max_attempts: 5,
        base_delay_ms: 1,
        max_delay_ms: 5,
        seed: 1,
    };
    let resp = client.request_with_retry(&req, &policy).unwrap();
    assert_eq!(resp.kind, ResponseKind::Ok);
    assert_eq!(resp.id, 77);
    drop(guard);

    // More sheds than attempts: a typed GaveUp carrying the count, not
    // a hang and not an untyped error.
    let guard = install(&FaultPlan::single(FaultSite::QueueOverflow, 10));
    let err = client
        .request_with_retry(
            &req,
            &RetryPolicy {
                max_attempts: 3,
                base_delay_ms: 1,
                max_delay_ms: 2,
                seed: 2,
            },
        )
        .unwrap_err();
    match err {
        ClientError::GaveUp { attempts, last } => {
            assert_eq!(attempts, 3);
            assert!(last.contains("busy"), "{last}");
        }
        other => panic!("expected GaveUp, got {other:?}"),
    }
    drop(guard);
    server.shutdown();
}

#[test]
fn warm_what_if_matches_single_shot_run() {
    let _serial = serialize_tests();
    let spec = spec();
    // The single-shot reference: exactly what `gnnmls client whatif`
    // against a freshly started daemon computes, minus the socket.
    let oneshot = DesignSession::build(&spec).unwrap();

    let server =
        Server::start(ServeConfig::builder().read_timeout_ms(50).build().unwrap()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let mut compared = 0u64;
    for net in 0..24u32 {
        for allow in [true, false] {
            let served = client.what_if(&spec, net, allow, None).unwrap();
            let local = oneshot.what_if(net, allow, None);
            match (served.kind, local) {
                (ResponseKind::Ok, Ok(expect)) => {
                    assert_eq!(
                        served.what_if,
                        Some(expect),
                        "daemon diverged from single-shot on net {net} allow={allow}"
                    );
                    compared += 1;
                }
                (ResponseKind::Error, Err(_)) => {}
                (kind, local) => {
                    panic!("outcome diverged on net {net}: served {kind:?} vs local {local:?}")
                }
            }
        }
    }
    assert!(compared > 0, "no nets compared");

    // Warm cache: the build happened exactly once for all 48 queries
    // (the first query is the miss, every later one is a hit).
    let stats = client.stats(&spec).unwrap().stats.unwrap();
    assert_eq!(stats.cache_misses, 1, "one cold build");
    assert!(stats.cache_hits >= compared - 1, "the rest were warm");
    assert_eq!(stats.cached_sessions, 1);
    server.shutdown();
}

#[test]
fn deadline_budget_degrades_over_the_wire() {
    let _serial = serialize_tests();
    let spec = spec();
    let server =
        Server::start(ServeConfig::builder().read_timeout_ms(50).build().unwrap()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    // Find a routable net, then starve its budget: the answer must
    // degrade to pattern routes (pattern_sinks > 0), not hang or error.
    let net = (0..64u32)
        .find(|&n| {
            client
                .what_if(&spec, n, false, None)
                .is_ok_and(|r| r.kind == ResponseKind::Ok)
        })
        .expect("some net answers");
    let starved = client.what_if(&spec, net, false, Some(1)).unwrap();
    assert_eq!(starved.kind, ResponseKind::Ok);
    assert!(
        starved.what_if.unwrap().pattern_sinks > 0,
        "a starved deadline must degrade gracefully"
    );
    server.shutdown();
}

#[test]
fn shutdown_drains_and_checkpoints_final_stats() {
    let _serial = serialize_tests();
    let dir = std::env::temp_dir().join("gnnmls_serve_drain_test");
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(
        ServeConfig::builder()
            .read_timeout_ms(50)
            .checkpoint_dir(Some(dir.clone()))
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    assert_eq!(client.stats(&spec()).unwrap().kind, ResponseKind::Ok);
    // Client-initiated graceful drain.
    let resp = client.shutdown().unwrap();
    assert_eq!(resp.kind, ResponseKind::Ok);
    let final_stats = server.wait();
    assert!(final_stats.served >= 1);

    // The drain wrote the final stats as a versioned, checksummed stage
    // envelope that decodes back to exactly what `wait` returned.
    let from_disk: ServerStats = load_stage(&dir, gnnmls_serve::server::STATS_STAGE)
        .expect("envelope decodes")
        .expect("envelope exists");
    assert_eq!(from_disk, final_stats);
    let _ = std::fs::remove_dir_all(&dir);
}

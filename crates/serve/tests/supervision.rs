//! Self-healing supervision contracts: the quarantine circuit breaker
//! provably prevents rebuilding a poisoned spec until its cooldown
//! expires, the watchdog respawns a dead worker without losing its
//! in-flight job, and shutdown during an open quarantine cooldown
//! drains promptly (the drain-deadlock regression).

use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use gnn_mls::session::SessionSpec;
use gnnmls_faults::{install, FaultPlan, FaultSite};
use gnnmls_serve::protocol::ResponseKind;
use gnnmls_serve::{Client, ServeConfig, Server};

/// Fault shots are process-global; serialize the file's tests so one
/// test's armed seam can never leak into another's traffic.
fn serialize_tests() -> MutexGuard<'static, ()> {
    static SER: Mutex<()> = Mutex::new(());
    SER.lock().unwrap_or_else(PoisonError::into_inner)
}

fn spec() -> SessionSpec {
    SessionSpec::fast("maeri16")
}

#[test]
fn quarantine_prevents_rebuilding_a_poisoned_spec_until_cooldown() {
    let _serial = serialize_tests();
    let server = Server::start(
        ServeConfig::builder()
            .read_timeout_ms(50)
            .quarantine_threshold(2)
            .quarantine_cooldown_ms(400)
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Two injected build failures strike the spec out.
    let guard = install(&FaultPlan::single(FaultSite::SessionBuildFail, 2));
    for attempt in 0..2 {
        let r = client.what_if(&spec(), 0, true, None).unwrap();
        assert_eq!(r.kind, ResponseKind::Error, "attempt {attempt}: {r:?}");
        assert!(
            r.error.unwrap().contains("injected"),
            "attempt {attempt} must surface the injected failure"
        );
    }
    drop(guard);

    // The circuit is open: a third request is refused with a typed
    // Quarantined and a bounded retry_after_ms — and, decisively, no
    // third build happens (the seam is disarmed, so an attempted build
    // would have *succeeded* and answered Ok).
    let r = client.what_if(&spec(), 0, true, None).unwrap();
    assert_eq!(r.kind, ResponseKind::Quarantined, "{r:?}");
    let retry_after = r.retry_after_ms.unwrap();
    assert!((1..=1_000).contains(&retry_after), "{retry_after}");
    assert!(r.error.unwrap().contains("circuit-broken"));

    let stats = client.stats(&spec()).unwrap().stats.unwrap();
    assert_eq!(
        stats.cache_misses, 2,
        "no build may happen while the circuit is open"
    );
    assert_eq!(stats.quarantined, 1);

    // Health reports the open circuit without taking a queue slot.
    let h = client.health().unwrap().health.unwrap();
    assert!(h.ready);
    assert_eq!(h.quarantine.len(), 1);
    assert!(h.quarantine[0].open);
    assert_eq!(h.quarantine[0].strikes, 2);

    // Once the cooldown (400ms base + at most ~101ms jitter) expires,
    // the half-open probe builds for real and closes the circuit.
    std::thread::sleep(Duration::from_millis(650));
    let r = client.what_if(&spec(), 0, true, None).unwrap();
    assert_eq!(r.kind, ResponseKind::Ok, "half-open probe must succeed");
    let h = client.health().unwrap().health.unwrap();
    assert!(h.quarantine.is_empty(), "success closes the circuit");
    let stats = client.stats(&spec()).unwrap().stats.unwrap();
    assert_eq!(stats.cache_misses, 3, "exactly one post-cooldown build");
    server.shutdown();
}

#[test]
fn watchdog_respawns_a_dead_worker_without_losing_the_job() {
    let _serial = serialize_tests();
    let server = Server::start(
        ServeConfig::builder()
            .read_timeout_ms(50)
            .workers(1)
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Warm the session first so the replayed job is cheap.
    let r = client.what_if(&spec(), 0, true, None).unwrap();
    assert_eq!(r.kind, ResponseKind::Ok);

    // One armed panic kills the only worker the moment it picks up the
    // next job. The watchdog must requeue that job and respawn — the
    // same connection still gets its typed answer.
    let guard = install(&FaultPlan::single(FaultSite::WorkerPanic, 1));
    let r = client.what_if(&spec(), 1, true, None).unwrap();
    drop(guard);
    assert_eq!(r.kind, ResponseKind::Ok, "job survived the dead worker");

    let stats = client.stats(&spec()).unwrap().stats.unwrap();
    assert_eq!(stats.watchdog_restarts, 1, "exactly one respawn");
    let h = client.health().unwrap().health.unwrap();
    assert_eq!(h.watchdog_restarts, 1);

    // The respawned worker keeps serving.
    let r = client.what_if(&spec(), 2, true, None).unwrap();
    assert_eq!(r.kind, ResponseKind::Ok);
    server.shutdown();
}

#[test]
fn shutdown_during_quarantine_cooldown_drains_promptly() {
    let _serial = serialize_tests();
    // A cooldown far longer than the test: if the drain ever waited on
    // quarantine state, this would hang.
    let server = Server::start(
        ServeConfig::builder()
            .read_timeout_ms(50)
            .quarantine_threshold(1)
            .quarantine_cooldown_ms(600_000)
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let guard = install(&FaultPlan::single(FaultSite::SessionBuildFail, 1));
    let r = client.what_if(&spec(), 0, true, None).unwrap();
    assert_eq!(r.kind, ResponseKind::Error);
    drop(guard);
    let r = client.what_if(&spec(), 0, true, None).unwrap();
    assert_eq!(r.kind, ResponseKind::Quarantined);

    let t0 = Instant::now();
    assert_eq!(client.shutdown().unwrap().kind, ResponseKind::Ok);
    let stats = server.wait();
    assert!(
        t0.elapsed() < Duration::from_secs(20),
        "drain must not wait out the quarantine cooldown"
    );
    assert_eq!(stats.quarantined, 1);
}

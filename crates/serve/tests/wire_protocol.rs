//! Wire-protocol robustness against a live daemon: malformed,
//! truncated, and oversized frames, mid-frame disconnects, and the
//! frame-corruption / slow-client fault seams must all surface as typed
//! errors — the server never panics and never wedges.

use std::io::Write;
use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard, PoisonError};

use gnn_mls::session::SessionSpec;
use gnnmls_faults::{install, FaultPlan, FaultSite};
use gnnmls_serve::protocol::{
    read_frame, write_frame, Request, Response, ResponseKind, MAX_FRAME, PROTOCOL_VERSION,
};
use gnnmls_serve::{Client, ServeConfig, Server};

/// Fault shots are process-global, so a concurrent test's connection
/// could consume a seam armed for another. Serialize the whole file.
fn serialize_tests() -> MutexGuard<'static, ()> {
    static SER: Mutex<()> = Mutex::new(());
    SER.lock().unwrap_or_else(PoisonError::into_inner)
}

fn test_server() -> Server {
    Server::start(ServeConfig::builder().read_timeout_ms(50).build().unwrap())
        .expect("bind 127.0.0.1:0")
}

fn spec() -> SessionSpec {
    SessionSpec::fast("maeri16")
}

/// Stats round-trips should still work on the same or a fresh
/// connection — the proof the server neither panicked nor wedged.
fn assert_server_alive(server: &Server) {
    let mut client = Client::connect(server.local_addr()).expect("reconnect");
    let resp = client.stats(&spec()).expect("stats after abuse");
    assert_eq!(resp.kind, ResponseKind::Ok);
    assert!(resp.stats.is_some());
}

#[test]
fn malformed_frame_gets_typed_error_and_connection_survives() {
    let _serial = serialize_tests();
    let server = test_server();
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();

    // A well-framed payload that is not a Request.
    let payload = b"this is not json";
    raw.write_all(&[PROTOCOL_VERSION]).unwrap();
    raw.write_all(&(payload.len() as u32).to_be_bytes())
        .unwrap();
    raw.write_all(payload).unwrap();
    raw.flush().unwrap();
    let resp: Response = read_frame(&mut raw).unwrap();
    assert_eq!(resp.kind, ResponseKind::Error);
    assert_eq!(resp.id, 0, "unparseable request cannot echo an id");
    assert!(resp.error.unwrap().contains("malformed"));

    // The stream stayed frame-aligned: a valid request on the SAME
    // connection is served normally.
    write_frame(&mut raw, &Request::stats(11, spec())).unwrap();
    let resp: Response = read_frame(&mut raw).unwrap();
    assert_eq!(resp.kind, ResponseKind::Ok);
    assert_eq!(resp.id, 11);

    assert_server_alive(&server);
    server.shutdown();
}

#[test]
fn oversized_frame_is_refused_and_connection_closed() {
    let _serial = serialize_tests();
    let server = test_server();
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.write_all(&[PROTOCOL_VERSION]).unwrap();
    raw.write_all(&((MAX_FRAME + 1) as u32).to_be_bytes())
        .unwrap();
    raw.flush().unwrap();
    let resp: Response = read_frame(&mut raw).unwrap();
    assert_eq!(resp.kind, ResponseKind::Error);
    assert!(resp.error.unwrap().contains("exceeds"));
    // The server cannot trust this stream any more; it must close it.
    assert!(matches!(
        read_frame::<Response, _>(&mut raw),
        Err(gnnmls_serve::FrameError::Closed)
    ));
    assert_server_alive(&server);
    server.shutdown();
}

#[test]
fn mid_frame_disconnect_does_not_wedge_the_server() {
    let _serial = serialize_tests();
    let server = test_server();
    {
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        // Promise 4096 bytes, send 10, vanish.
        raw.write_all(&[PROTOCOL_VERSION]).unwrap();
        raw.write_all(&4096u32.to_be_bytes()).unwrap();
        raw.write_all(b"0123456789").unwrap();
        raw.flush().unwrap();
    } // dropped here
    assert_server_alive(&server);
    server.shutdown();
}

#[test]
fn metrics_round_trips_as_parsable_exposition() {
    let _serial = serialize_tests();
    let server = test_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    // Exercise the request path first so the counters are warm: the
    // first what-if is a cache miss (cold build), the second a hit.
    assert_eq!(client.stats(&spec()).unwrap().kind, ResponseKind::Ok);
    for _ in 0..2 {
        let r = client.what_if(&spec(), 0, true, None).unwrap();
        assert_eq!(r.kind, ResponseKind::Ok);
    }

    let resp = client.metrics().unwrap();
    assert_eq!(resp.kind, ResponseKind::Ok);
    let text = resp.metrics.expect("metrics response carries exposition");
    // Prometheus-style text: every non-comment line is `name{labels} value`.
    for line in text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (name, value) = line.rsplit_once(' ').expect("name-value split");
        assert!(
            name.starts_with("gnnmls_"),
            "unexpected metric family: {line}"
        );
        assert!(value.parse::<f64>().is_ok(), "unparsable value: {line}");
    }
    for family in [
        "gnnmls_serve_requests_total",
        "gnnmls_serve_responses_total",
        "gnnmls_serve_cache_hits_total",
        "gnnmls_serve_cache_misses_total",
        "gnnmls_serve_admission_total",
    ] {
        assert!(text.contains(family), "missing {family} in:\n{text}");
    }
    assert_server_alive(&server);
    server.shutdown();
}

#[test]
fn frame_corrupt_fault_is_survived() {
    let _serial = serialize_tests();
    let server = test_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    // Warm the connection first so the only in-flight write after the
    // plan installs is ours.
    assert_eq!(client.stats(&spec()).unwrap().kind, ResponseKind::Ok);

    let guard = install(&FaultPlan::single(FaultSite::FrameCorrupt, 1));
    // Our outgoing request gets one byte flipped; the server must answer
    // with a typed malformed-frame error, not die.
    let resp = client.stats(&spec()).unwrap();
    assert_eq!(resp.kind, ResponseKind::Error);
    assert!(resp.error.unwrap().contains("malformed"));
    drop(guard);

    // Same connection still serves clean frames.
    let resp = client.stats(&spec()).unwrap();
    assert_eq!(resp.kind, ResponseKind::Ok);
    assert_server_alive(&server);
    server.shutdown();
}

#[test]
fn slow_client_fault_closes_with_typed_stall() {
    let _serial = serialize_tests();
    let server = test_server();
    let guard = install(&FaultPlan::single(FaultSite::SlowClientStall, 1));
    // The next accepted connection is treated as stalled mid-frame.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let resp: Response = read_frame(&mut raw).unwrap();
    assert_eq!(resp.kind, ResponseKind::Error);
    assert!(resp.error.unwrap().contains("stalled"));
    drop(guard);
    assert_server_alive(&server);
    server.shutdown();
}

#[test]
fn abuse_in_parallel_never_wedges() {
    let _serial = serialize_tests();
    let server = test_server();
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        for i in 0..6 {
            scope.spawn(move || {
                for j in 0..8 {
                    match (i + j) % 3 {
                        0 => {
                            // Clean request.
                            let mut c = Client::connect(addr).unwrap();
                            let resp = c.stats(&spec()).unwrap();
                            assert!(matches!(resp.kind, ResponseKind::Ok | ResponseKind::Busy));
                        }
                        1 => {
                            // Garbage frame.
                            let mut raw = TcpStream::connect(addr).unwrap();
                            raw.write_all(&[PROTOCOL_VERSION]).unwrap();
                            raw.write_all(&3u32.to_be_bytes()).unwrap();
                            raw.write_all(b"???").unwrap();
                            raw.flush().unwrap();
                            let resp: Response = read_frame(&mut raw).unwrap();
                            assert_eq!(resp.kind, ResponseKind::Error);
                        }
                        _ => {
                            // Mid-frame disconnect.
                            let mut raw = TcpStream::connect(addr).unwrap();
                            raw.write_all(&[PROTOCOL_VERSION]).unwrap();
                            raw.write_all(&64u32.to_be_bytes()).unwrap();
                            raw.write_all(b"partial").unwrap();
                            raw.flush().unwrap();
                        }
                    }
                }
            });
        }
    });
    assert_server_alive(&server);
    server.shutdown();
}

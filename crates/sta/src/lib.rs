//! Static timing analysis for routed two-tier designs.
//!
//! The timer implements the standard topological STA recipe at the level
//! of detail the GNN-MLS experiments need:
//!
//! - **cell delay** — `intrinsic + R_drive × C_load`, where the load is the
//!   routed net's wire + via + pad + sink-pin capacitance (from
//!   [`gnnmls_route::RouteDb`]);
//! - **net delay** — Elmore delay over the extracted route tree, per sink;
//! - **propagation** — one pass over cells in topological order (paths cut
//!   at registers/macros), tracking the worst predecessor per pin;
//! - **metrics** — slack per endpoint against an ideal clock, WNS, TNS,
//!   violating-endpoint count (the paper's `#Vio. Paths` / Figure 2's
//!   violation points), and effective frequency `1 / (T − WNS)`;
//! - **paths** — K-worst critical paths by backtracking worst
//!   predecessors, the unit of the GNN's training data;
//! - **what-if** — re-evaluate one path's slack with substitute routes for
//!   some of its nets ([`TimingPath::slack_with`]): the per-net
//!   iterative-STA step that labels MLS decisions.

#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod path;
pub mod report;

pub use path::TimingPath;
pub use report::TimingReport;

use std::fmt;

use gnnmls_netlist::graph::{CircuitDag, GraphError};
use gnnmls_netlist::{CellClass, Netlist};
use gnnmls_route::RouteDb;

/// Typed STA failures: no flow stage downstream of routing should have
/// to guard against a panic from the timer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StaError {
    /// The netlist graph could not be levelized (combinational loop).
    Graph(GraphError),
    /// The route DB does not cover every net of the netlist, so net
    /// loads and Elmore delays would be silently wrong.
    RouteCoverage {
        /// Routes present in the DB.
        have: usize,
        /// Nets in the netlist.
        need: usize,
    },
}

impl fmt::Display for StaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaError::Graph(e) => write!(f, "timing graph: {e}"),
            StaError::RouteCoverage { have, need } => {
                write!(f, "route db covers {have} of {need} nets")
            }
        }
    }
}

impl std::error::Error for StaError {}

impl From<GraphError> for StaError {
    fn from(e: GraphError) -> Self {
        StaError::Graph(e)
    }
}

/// STA configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StaConfig {
    /// Ideal clock period in ps.
    pub clock_period_ps: f64,
}

impl StaConfig {
    /// Config from a target frequency in MHz (the paper quotes targets of
    /// 2500/2000 MHz).
    pub fn from_freq_mhz(mhz: f64) -> Self {
        assert!(mhz > 0.0, "target frequency must be positive");
        Self {
            clock_period_ps: 1.0e6 / mhz,
        }
    }
}

/// Runs full STA over a routed design.
///
/// # Errors
///
/// Returns [`StaError::Graph`] if the netlist is cyclic and
/// [`StaError::RouteCoverage`] if `routes` does not cover every net of
/// `netlist` (an incomplete routing must never produce a timing table).
pub fn analyze(
    netlist: &Netlist,
    routes: &RouteDb,
    cfg: StaConfig,
) -> Result<TimingReport, StaError> {
    if routes.nets.len() != netlist.net_count() {
        return Err(StaError::RouteCoverage {
            have: routes.nets.len(),
            need: netlist.net_count(),
        });
    }
    let dag = CircuitDag::build(netlist)?;

    let mut arrival = vec![0.0f64; netlist.pin_count()];
    let mut worst_pred = vec![u32::MAX; netlist.pin_count()];

    for &cell in dag.topo_order() {
        let class = netlist.class(cell);
        let tpl = netlist.template(cell);

        // Output arrivals.
        for out in netlist.output_pins(cell) {
            let load = match netlist.pin(out).net {
                Some(net) => routes.route(net).total_cap_ff,
                None => 0.0,
            };
            let stage = tpl.delay_ps + tpl.drive_kohm * load;
            let (base, pred) = if class.is_startpoint() {
                (0.0, u32::MAX)
            } else {
                // Worst input arrival. The select pin (ordinal 1) of a
                // DFT scan MUX carries the static test-enable signal — a
                // declared false path in functional mode, so it never
                // constrains arrival (`set_false_path -from test_en`).
                let mut best = 0.0f64;
                let mut best_pin = u32::MAX;
                for inp in netlist.input_pins(cell) {
                    if netlist.pin(inp).net.is_none() {
                        continue;
                    }
                    if class == CellClass::ScanMux && netlist.pin(inp).ordinal == 1 {
                        continue;
                    }
                    if arrival[inp.index()] >= best {
                        best = arrival[inp.index()];
                        best_pin = inp.raw();
                    }
                }
                (best, best_pin)
            };
            arrival[out.index()] = base + stage;
            worst_pred[out.index()] = pred;

            // Net arcs to sinks.
            if let Some(net) = netlist.pin(out).net {
                let route = routes.route(net);
                for (i, &sink) in netlist.sinks(net).iter().enumerate() {
                    let a = arrival[out.index()] + route.sink_elmore_ps[i];
                    if a >= arrival[sink.index()] {
                        arrival[sink.index()] = a;
                        worst_pred[sink.index()] = out.raw();
                    }
                }
            }
        }
    }

    // Endpoint slacks. Shadow scan FFs (wire-based MLS DFT) capture only
    // in test mode; functionally their D pins are false paths, exactly
    // like the test-enable select arcs above.
    let mut endpoints = Vec::new();
    for cell in netlist.cell_ids() {
        let class = netlist.class(cell);
        if !class.is_endpoint() || class == CellClass::ScanRegister {
            continue;
        }
        let setup = netlist.template(cell).setup_ps;
        for inp in netlist.input_pins(cell) {
            if netlist.pin(inp).net.is_none() {
                continue;
            }
            let slack = cfg.clock_period_ps - setup - arrival[inp.index()];
            endpoints.push((inp, slack));
        }
    }

    Ok(TimingReport::new(
        cfg.clock_period_ps,
        arrival,
        worst_pred,
        endpoints,
    ))
}

/// Internal helper shared with [`path`]: the arc delay of a cell stage
/// (`intrinsic + drive × load`) given an explicit load.
pub(crate) fn stage_delay_ps(netlist: &Netlist, cell: gnnmls_netlist::CellId, load_ff: f64) -> f64 {
    let t = netlist.template(cell);
    t.delay_ps + t.drive_kohm * load_ff
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
    use gnnmls_netlist::tech::TechConfig;
    use gnnmls_netlist::{CellLibrary, NetlistBuilder, PinId, Tier};
    use gnnmls_phys::{place, PlaceConfig};
    use gnnmls_route::{route_design, MlsPolicy, RouteConfig};

    /// Routes MAERI-16 and analyzes at a given clock.
    fn analyzed(mhz: f64) -> TimingReport {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
        let (db, _) = route_design(
            &d.netlist,
            &p,
            &tech,
            MlsPolicy::Disabled,
            RouteConfig::default(),
        )
        .unwrap();
        analyze(&d.netlist, &db, StaConfig::from_freq_mhz(mhz)).unwrap()
    }

    #[test]
    fn arrivals_are_finite_and_monotone_along_paths() {
        let r = analyzed(2000.0);
        for &a in r.arrival_ps() {
            assert!(a.is_finite() && a >= 0.0);
        }
        assert!(r.endpoint_count() > 0);
    }

    #[test]
    fn tighter_clock_means_worse_slack() {
        let fast = analyzed(4000.0);
        let slow = analyzed(500.0);
        assert!(fast.wns_ps() < slow.wns_ps());
        assert!(fast.tns_ps() <= slow.tns_ps());
        assert!(fast.violating_endpoints() >= slow.violating_endpoints());
        // At 500 MHz (2 ns) the tiny design should easily close timing.
        assert_eq!(slow.violating_endpoints(), 0);
        assert_eq!(slow.tns_ps(), 0.0);
    }

    #[test]
    fn wns_bounds_every_endpoint_slack() {
        let r = analyzed(2500.0);
        for &(_, s) in r.endpoint_slacks() {
            assert!(s >= r.wns_ps() - 1e-9);
        }
    }

    #[test]
    fn effective_frequency_matches_paper_formula() {
        // Paper: 2500 MHz target (400 ps) with WNS −85 ps → 2061 MHz.
        let r = TimingReport::new(400.0, vec![], vec![], vec![(PinId::new(0), -85.0)]);
        assert!((r.eff_freq_mhz() - 2061.85).abs() < 1.0);
        // Positive slack → can clock faster than target.
        let r2 = TimingReport::new(400.0, vec![], vec![], vec![(PinId::new(0), 50.0)]);
        assert!(r2.eff_freq_mhz() > 2500.0);
    }

    #[test]
    fn hand_built_pipeline_delay_matches_hand_calc() {
        // dff -> inv -> po with a known route. Build routes manually.
        let lib = CellLibrary::for_node(&gnnmls_netlist::tech::TechNode::n28());
        let mut b = NetlistBuilder::new("h");
        let ff = b.add_cell("ff", lib.expect("DFF"), Tier::Logic).unwrap();
        let inv = b.add_cell("inv", lib.expect("INV"), Tier::Logic).unwrap();
        let po = b.add_cell("po", lib.expect("PO"), Tier::Logic).unwrap();
        let q = b.add_net("q").unwrap();
        b.connect_output(q, ff, 0).unwrap();
        b.connect_input(q, inv, 0).unwrap();
        let z = b.add_net("z").unwrap();
        b.connect_output(z, inv, 0).unwrap();
        b.connect_input(z, po, 0).unwrap();
        let n = b.finish().unwrap();

        // Zero-wire routes: loads are pin caps only.
        use gnnmls_route::{NetRoute, RouteSummary};
        let mk = |net, cap: f64| NetRoute {
            net,
            tree: Default::default(),
            wirelength_um: 0.0,
            f2f_crossings: 0,
            is_mls: false,
            total_cap_ff: cap,
            sink_elmore_ps: vec![0.0],
            overflowed: false,
            pattern_sinks: 0,
        };
        let inv_t = lib.expect("INV");
        let po_t = lib.expect("PO");
        let db = RouteDb {
            nets: vec![
                mk(n.net_by_name("q").unwrap(), inv_t.input_cap_ff),
                mk(n.net_by_name("z").unwrap(), po_t.input_cap_ff),
            ],
            summary: RouteSummary::default(),
        };
        let r = analyze(
            &n,
            &db,
            StaConfig {
                clock_period_ps: 100.0,
            },
        )
        .unwrap();
        let dff_t = lib.expect("DFF");
        let expect = (dff_t.delay_ps + dff_t.drive_kohm * inv_t.input_cap_ff)
            + (inv_t.delay_ps + inv_t.drive_kohm * po_t.input_cap_ff);
        let (_, slack) = r.endpoint_slacks()[0];
        assert!(
            (slack - (100.0 - expect)).abs() < 1e-9,
            "slack {slack}, expected {}",
            100.0 - expect
        );
    }

    #[test]
    fn incomplete_route_db_is_a_typed_error() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let db = RouteDb {
            nets: vec![],
            summary: Default::default(),
        };
        let err = analyze(&d.netlist, &db, StaConfig::from_freq_mhz(1000.0)).unwrap_err();
        assert_eq!(
            err,
            StaError::RouteCoverage {
                have: 0,
                need: d.netlist.net_count()
            }
        );
        assert!(err.to_string().contains("covers 0 of"));
    }

    #[test]
    fn scanmux_select_arc_is_a_false_path() {
        // pi --n0--> mux.in0 ; slowpath: pi2 -> inv*3 -> mux.sel(ordinal 1)
        // The select must not set the mux output arrival.
        let lib = CellLibrary::for_node(&gnnmls_netlist::tech::TechNode::n28());
        let mut b = NetlistBuilder::new("fp");
        let pi = b.add_cell("pi", lib.expect("PI"), Tier::Logic).unwrap();
        let pi2 = b.add_cell("pi2", lib.expect("PI"), Tier::Logic).unwrap();
        let mux = b
            .add_cell("mux", lib.expect("SCANMUX"), Tier::Logic)
            .unwrap();
        let po = b.add_cell("po", lib.expect("PO"), Tier::Logic).unwrap();
        let mut prev = {
            let n = b.add_net("sel0").unwrap();
            b.connect_output(n, pi2, 0).unwrap();
            n
        };
        for i in 0..3 {
            let inv = b
                .add_cell(format!("i{i}"), lib.expect("INV"), Tier::Logic)
                .unwrap();
            b.connect_input(prev, inv, 0).unwrap();
            let n = b.add_net(format!("sel{}", i + 1)).unwrap();
            b.connect_output(n, inv, 0).unwrap();
            prev = n;
        }
        let n0 = b.add_net("n0").unwrap();
        b.connect_output(n0, pi, 0).unwrap();
        b.connect_input(n0, mux, 0).unwrap();
        b.connect_input(prev, mux, 1).unwrap(); // select = slow chain
        let nz = b.add_net("nz").unwrap();
        b.connect_output(nz, mux, 0).unwrap();
        b.connect_input(nz, po, 0).unwrap();
        let n = b.finish().unwrap();

        use gnnmls_route::{NetRoute, RouteDb, RouteSummary};
        let mk = |net: gnnmls_netlist::NetId| NetRoute {
            net,
            tree: Default::default(),
            wirelength_um: 0.0,
            f2f_crossings: 0,
            is_mls: false,
            total_cap_ff: 1.0,
            sink_elmore_ps: vec![0.0; n.sinks(net).len()],
            overflowed: false,
            pattern_sinks: 0,
        };
        let db = RouteDb {
            nets: n.net_ids().map(mk).collect(),
            summary: RouteSummary::default(),
        };
        let rep = analyze(
            &n,
            &db,
            StaConfig {
                clock_period_ps: 1000.0,
            },
        )
        .unwrap();
        let (_, slack) = rep.endpoint_slacks()[0];
        // Data path: PI stage + MUX stage only — well under 100 ps. If the
        // 3-inverter select chain leaked in, it would add ~20+ ps more.
        let lib_mux = lib.expect("SCANMUX");
        let lib_pi = lib.expect("PI");
        let expect = (lib_pi.delay_ps + lib_pi.drive_kohm * 1.0)
            + (lib_mux.delay_ps + lib_mux.drive_kohm * 1.0);
        assert!(
            (1000.0 - slack - expect).abs() < 1e-9,
            "select chain leaked into arrival: slack {slack}"
        );
    }

    #[test]
    fn shadow_scan_registers_are_not_functional_endpoints() {
        let lib = CellLibrary::for_node(&gnnmls_netlist::tech::TechNode::n28());
        let mut b = NetlistBuilder::new("sr");
        let pi = b.add_cell("pi", lib.expect("PI"), Tier::Logic).unwrap();
        let sr = b
            .add_cell("sr", lib.expect("SCANDFF"), Tier::Logic)
            .unwrap();
        let po = b.add_cell("po", lib.expect("PO"), Tier::Logic).unwrap();
        let n0 = b.add_net("n0").unwrap();
        b.connect_output(n0, pi, 0).unwrap();
        b.connect_input(n0, sr, 0).unwrap();
        b.connect_input(n0, po, 0).unwrap();
        let n = b.finish().unwrap();
        use gnnmls_route::{NetRoute, RouteDb, RouteSummary};
        let db = RouteDb {
            nets: vec![NetRoute {
                net: gnnmls_netlist::NetId::new(0),
                tree: Default::default(),
                wirelength_um: 0.0,
                f2f_crossings: 0,
                is_mls: false,
                total_cap_ff: 1.0,
                sink_elmore_ps: vec![0.0, 0.0],
                overflowed: false,
                pattern_sinks: 0,
            }],
            summary: RouteSummary::default(),
        };
        let rep = analyze(
            &n,
            &db,
            StaConfig {
                clock_period_ps: 100.0,
            },
        )
        .unwrap();
        // Only the PO counts as an endpoint; the shadow FF is test-only.
        assert_eq!(rep.endpoint_count(), 1);
    }

    #[test]
    fn from_freq_mhz_converts_to_period() {
        let c = StaConfig::from_freq_mhz(2500.0);
        assert!((c.clock_period_ps - 400.0).abs() < 1e-9);
    }
}

//! Critical timing paths and what-if re-evaluation.
//!
//! A [`TimingPath`] is the worst arrival chain into one endpoint:
//! `launch-Q → net → gate → net → … → endpoint-D`. Paths are the unit of
//! GNN-MLS training data (the paper samples 500 per design), and
//! [`TimingPath::slack_with`] is the per-net what-if primitive: recompute
//! the path's slack with substitute routes for some of its nets, exactly
//! the `slack_2D + f(δ(n_1), …)` decomposition of the paper's eq. (1).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use gnnmls_netlist::{CellId, NetId, Netlist, PinId};
use gnnmls_route::{NetRoute, RouteDb};

use crate::report::TimingReport;
use crate::stage_delay_ps;

/// One extracted critical path.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimingPath {
    /// Pins along the path: `[Q0, D1, Q1, D2, …, D_end]` — alternating
    /// output (launch/drive) and input (sink) pins.
    pub pins: Vec<PinId>,
    /// Cells traversed, launch cell first, capture cell last.
    pub cells: Vec<CellId>,
    /// Nets traversed, in path order (one per output→input arc).
    pub nets: Vec<NetId>,
    /// The capturing endpoint pin.
    pub endpoint: PinId,
    /// Slack under the baseline routes, ps.
    pub slack_ps: f64,
    /// Clock period the slack was computed against, ps.
    pub clock_period_ps: f64,
    /// Setup requirement of the capture cell, ps.
    pub setup_ps: f64,
}

impl TimingPath {
    /// Extracts the worst path into `endpoint` by walking the report's
    /// worst-predecessor chain, or `None` if `endpoint` is not an
    /// endpoint recorded in the report.
    pub fn extract(netlist: &Netlist, report: &TimingReport, endpoint: PinId) -> Option<Self> {
        let slack = report
            .endpoint_slacks()
            .iter()
            .find(|&&(p, _)| p == endpoint)
            .map(|&(_, s)| s)?;
        Some(Self::extract_with_slack(netlist, report, endpoint, slack))
    }

    /// [`TimingPath::extract`] for an `(endpoint, slack)` pair already
    /// known to come from the report (e.g.
    /// [`TimingReport::worst_endpoints`]), so extraction cannot fail.
    fn extract_with_slack(
        netlist: &Netlist,
        report: &TimingReport,
        endpoint: PinId,
        slack: f64,
    ) -> Self {
        // Walk back: input pin -> its driver output pin (worst_pred), then
        // output pin -> worst input pin of its cell (worst_pred), until a
        // launch output (pred == MAX).
        let mut rev_pins = vec![endpoint];
        let mut cur = endpoint;
        loop {
            let pred = report.worst_pred()[cur.index()];
            if pred == u32::MAX {
                break;
            }
            cur = PinId::new(pred);
            rev_pins.push(cur);
        }
        rev_pins.reverse();
        let pins = rev_pins;

        // Derive cells and nets from the pin chain.
        let mut cells = Vec::new();
        let mut nets = Vec::new();
        for (k, &p) in pins.iter().enumerate() {
            let pin = netlist.pin(p);
            if k == 0 || cells.last() != Some(&pin.cell) {
                cells.push(pin.cell);
            }
            // Output -> input arcs carry a net; the walk only reaches an
            // output pin through a net arc, so it is always connected.
            if k + 1 < pins.len() && netlist.pin(p).dir == gnnmls_netlist::PinDir::Output {
                let Some(net) = pin.net else {
                    unreachable!("driving pin on a path is connected");
                };
                nets.push(net);
            }
        }

        let capture = netlist.pin(endpoint).cell;
        Self {
            pins,
            cells,
            nets,
            endpoint,
            slack_ps: slack,
            clock_period_ps: report.clock_period_ps(),
            setup_ps: netlist.template(capture).setup_ps,
        }
    }

    /// Number of stages (cells) on the path.
    pub fn depth(&self) -> usize {
        self.cells.len()
    }

    /// Path delay under baseline routes with optional substitutions, ps,
    /// or `None` if the path disagrees with the netlist (e.g. a
    /// deserialized path from a different design): a mismatched path
    /// must never yield a silently wrong delay.
    ///
    /// `subs` maps a net to a candidate route (e.g. a what-if MLS re-route
    /// from [`gnnmls_route::Router::what_if`]); all other nets use `routes`.
    pub fn delay_with(
        &self,
        netlist: &Netlist,
        routes: &RouteDb,
        subs: &HashMap<NetId, &NetRoute>,
    ) -> Option<f64> {
        let route_of = |net: NetId| -> Option<&NetRoute> {
            subs.get(&net)
                .copied()
                .or_else(|| routes.nets.get(net.index()))
        };
        let mut delay = 0.0;
        // Pins alternate output/input starting with the launch output.
        let mut k = 0;
        while k + 1 < self.pins.len() {
            let out = self.pins[k];
            let sink = self.pins[k + 1];
            let net = netlist.pin(out).net?;
            let r = route_of(net)?;
            // Cell stage driving this net.
            delay += stage_delay_ps(netlist, netlist.pin(out).cell, r.total_cap_ff);
            // Wire arc to the sink.
            let sink_idx = netlist.sinks(net).iter().position(|&p| p == sink)?;
            delay += *r.sink_elmore_ps.get(sink_idx)?;
            k += 2;
        }
        Some(delay)
    }

    /// Path slack with substitute routes, ps (eq. (1):
    /// `slack_opt = T − setup − delay(δ)`), or `None` if the path
    /// disagrees with the netlist or routes (see
    /// [`TimingPath::delay_with`]).
    pub fn slack_with(
        &self,
        netlist: &Netlist,
        routes: &RouteDb,
        subs: &HashMap<NetId, &NetRoute>,
    ) -> Option<f64> {
        Some(self.clock_period_ps - self.setup_ps - self.delay_with(netlist, routes, subs)?)
    }
}

/// Extracts the `k` worst paths (most negative endpoint slack first).
///
/// One path per endpoint — the paper counts violating *paths* the same
/// way (violating endpoints, each with its single worst path).
pub fn worst_paths(netlist: &Netlist, report: &TimingReport, k: usize) -> Vec<TimingPath> {
    worst_paths_par(netlist, report, k, 1)
}

/// [`worst_paths`] with the extraction fanned out over `threads`
/// workers (`0` = all cores). Each path walks the report's
/// worst-predecessor chain independently, reading only shared state, so
/// the result is identical to the serial extraction for every thread
/// count.
pub fn worst_paths_par(
    netlist: &Netlist,
    report: &TimingReport,
    k: usize,
    threads: usize,
) -> Vec<TimingPath> {
    let endpoints = report.worst_endpoints(k);
    let extract =
        |&(pin, slack): &(PinId, f64)| TimingPath::extract_with_slack(netlist, report, pin, slack);
    // A worker panic is retried serially; if even that fails, fall back
    // to the plain serial loop (a panic there is a genuine bug).
    match gnnmls_par::recovering_par_map(threads, &endpoints, extract) {
        Ok(v) => v,
        Err(_) => endpoints.iter().map(extract).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, StaConfig};
    use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
    use gnnmls_netlist::tech::TechConfig;
    use gnnmls_phys::{place, PlaceConfig};
    use gnnmls_route::{route_design, MlsPolicy, RouteConfig};

    fn setup() -> (gnnmls_netlist::Netlist, RouteDb, TimingReport) {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
        let (db, _) = route_design(
            &d.netlist,
            &p,
            &tech,
            MlsPolicy::Disabled,
            RouteConfig::default(),
        )
        .unwrap();
        let r = analyze(&d.netlist, &db, StaConfig::from_freq_mhz(2500.0)).unwrap();
        (d.netlist, db, r)
    }

    #[test]
    fn extracted_paths_are_well_formed() {
        let (netlist, _, report) = setup();
        let paths = worst_paths(&netlist, &report, 20);
        assert_eq!(paths.len(), 20);
        for p in &paths {
            assert!(p.pins.len() >= 2, "launch + capture at minimum");
            assert_eq!(p.pins.len() % 2, 0, "alternating out/in pins");
            assert_eq!(p.nets.len(), p.pins.len() / 2);
            assert!(p.depth() >= 2);
            // Launch cell is a startpoint; capture cell is an endpoint.
            assert!(netlist.class(p.cells[0]).is_startpoint());
            assert!(netlist.class(*p.cells.last().unwrap()).is_endpoint());
            // Consecutive worst paths are sorted by slack.
        }
        for w in paths.windows(2) {
            assert!(w[0].slack_ps <= w[1].slack_ps + 1e-9);
        }
    }

    #[test]
    fn recomputed_delay_matches_reported_slack() {
        let (netlist, db, report) = setup();
        for p in worst_paths(&netlist, &report, 10) {
            let slack = p.slack_with(&netlist, &db, &HashMap::new()).unwrap();
            assert!(
                (slack - p.slack_ps).abs() < 1e-6,
                "path recompute {slack} vs reported {}",
                p.slack_ps
            );
        }
    }

    #[test]
    fn substitute_route_changes_slack() {
        let (netlist, db, report) = setup();
        let p = &worst_paths(&netlist, &report, 1)[0];
        let net = p.nets[p.nets.len() / 2];
        // Fake a much slower route for one path net.
        let mut slow = db.route(net).clone();
        slow.total_cap_ff += 100.0;
        for e in &mut slow.sink_elmore_ps {
            *e += 50.0;
        }
        let mut subs: HashMap<NetId, &NetRoute> = HashMap::new();
        subs.insert(net, &slow);
        let s = p.slack_with(&netlist, &db, &subs).unwrap();
        assert!(s < p.slack_ps, "slower net must reduce slack");
    }

    #[test]
    fn parallel_extraction_matches_serial() {
        let (netlist, _, report) = setup();
        let serial = worst_paths(&netlist, &report, 30);
        for threads in [2, 4, 0] {
            let par = worst_paths_par(&netlist, &report, 30, threads);
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn extracting_a_non_endpoint_returns_none() {
        let (netlist, _, report) = setup();
        // Pin 0 of cell 0 is a PI output, not an endpoint.
        let pin = netlist.cell(gnnmls_netlist::CellId::new(0)).pins[0];
        assert!(TimingPath::extract(&netlist, &report, pin).is_none());
        // A real endpoint extracts, and matches the worst-paths result.
        let (ep, _) = report.worst_endpoints(1)[0];
        let p = TimingPath::extract(&netlist, &report, ep).unwrap();
        assert_eq!(p, worst_paths(&netlist, &report, 1)[0]);
    }

    #[test]
    fn mismatched_path_yields_none_not_a_wrong_delay() {
        let (netlist, db, report) = setup();
        let mut p = worst_paths(&netlist, &report, 1).remove(0);
        // Corrupt the pin chain the way a checkpoint from a different
        // design would: the delay must refuse, not fabricate a number.
        p.pins = vec![p.pins[0], p.pins[0]];
        assert!(p.delay_with(&netlist, &db, &HashMap::new()).is_none());
    }
}

//! Timing report: per-pin arrivals, endpoint slacks, and summary metrics.

use serde::{Deserialize, Serialize};

use gnnmls_netlist::PinId;

/// Result of a full STA run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimingReport {
    clock_period_ps: f64,
    arrival_ps: Vec<f64>,
    worst_pred: Vec<u32>,
    endpoint_slack: Vec<(PinId, f64)>,
}

impl TimingReport {
    /// Assembles a report (used by [`crate::analyze`] and tests).
    pub fn new(
        clock_period_ps: f64,
        arrival_ps: Vec<f64>,
        worst_pred: Vec<u32>,
        endpoint_slack: Vec<(PinId, f64)>,
    ) -> Self {
        Self {
            clock_period_ps,
            arrival_ps,
            worst_pred,
            endpoint_slack,
        }
    }

    /// The clock period used, ps.
    #[inline]
    pub fn clock_period_ps(&self) -> f64 {
        self.clock_period_ps
    }

    /// Arrival time per pin, ps.
    #[inline]
    pub fn arrival_ps(&self) -> &[f64] {
        &self.arrival_ps
    }

    /// Worst-predecessor pin per pin (raw id, `u32::MAX` at launch points).
    #[inline]
    pub fn worst_pred(&self) -> &[u32] {
        &self.worst_pred
    }

    /// Slack per endpoint pin, ps.
    #[inline]
    pub fn endpoint_slacks(&self) -> &[(PinId, f64)] {
        &self.endpoint_slack
    }

    /// Number of endpoints.
    #[inline]
    pub fn endpoint_count(&self) -> usize {
        self.endpoint_slack.len()
    }

    /// Worst negative slack, ps (negative when timing fails; the smallest
    /// positive slack when it passes; 0 with no endpoints).
    pub fn wns_ps(&self) -> f64 {
        self.endpoint_slack
            .iter()
            .map(|&(_, s)| s)
            .fold(f64::MAX, f64::min)
            .pipe_finite()
    }

    /// Total negative slack, ps (≤ 0).
    pub fn tns_ps(&self) -> f64 {
        self.endpoint_slack.iter().map(|&(_, s)| s.min(0.0)).sum()
    }

    /// Total negative slack in ns (the paper's `TNS (ns)` unit).
    pub fn tns_ns(&self) -> f64 {
        self.tns_ps() / 1000.0
    }

    /// Number of endpoints with negative slack — the paper's `#Vio. Paths`
    /// and Figure 2's violation points.
    pub fn violating_endpoints(&self) -> usize {
        self.endpoint_slack
            .iter()
            .filter(|&&(_, s)| s < 0.0)
            .count()
    }

    /// Effective frequency in MHz: `1 / (T − WNS)` (Tables IV–VI's
    /// `Eff. Freq.` row: 400 ps with WNS −85 ps → 2061 MHz).
    pub fn eff_freq_mhz(&self) -> f64 {
        let t = self.clock_period_ps - self.wns_ps();
        if t <= 0.0 {
            f64::INFINITY
        } else {
            1.0e6 / t
        }
    }

    /// Endpoints sorted by ascending slack (most critical first), capped
    /// at `k`.
    pub fn worst_endpoints(&self, k: usize) -> Vec<(PinId, f64)> {
        let mut v = self.endpoint_slack.clone();
        v.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }
}

/// Tiny helper: collapse the `f64::MAX` sentinel of an empty fold to 0.
trait PipeFinite {
    fn pipe_finite(self) -> f64;
}

impl PipeFinite for f64 {
    fn pipe_finite(self) -> f64 {
        if self == f64::MAX {
            0.0
        } else {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(slacks: &[f64]) -> TimingReport {
        TimingReport::new(
            400.0,
            vec![],
            vec![],
            slacks
                .iter()
                .enumerate()
                .map(|(i, &s)| (PinId::new(i as u32), s))
                .collect(),
        )
    }

    #[test]
    fn summary_metrics() {
        let r = report(&[-85.0, -10.0, 25.0]);
        assert_eq!(r.wns_ps(), -85.0);
        assert_eq!(r.tns_ps(), -95.0);
        assert!((r.tns_ns() + 0.095).abs() < 1e-12);
        assert_eq!(r.violating_endpoints(), 2);
        assert_eq!(r.endpoint_count(), 3);
        let worst = r.worst_endpoints(2);
        assert_eq!(worst[0].1, -85.0);
        assert_eq!(worst[1].1, -10.0);
    }

    #[test]
    fn all_positive_slack_gives_zero_tns() {
        let r = report(&[5.0, 10.0]);
        assert_eq!(r.tns_ps(), 0.0);
        assert_eq!(r.violating_endpoints(), 0);
        assert_eq!(r.wns_ps(), 5.0);
        assert!(r.eff_freq_mhz() > 2500.0);
    }

    #[test]
    fn empty_report_is_neutral() {
        let r = report(&[]);
        assert_eq!(r.wns_ps(), 0.0);
        assert_eq!(r.tns_ps(), 0.0);
        assert_eq!(r.violating_endpoints(), 0);
        assert!((r.eff_freq_mhz() - 2500.0).abs() < 1e-9);
    }
}

//! Deterministic cross-design training corpus.
//!
//! A corpus is a sweep over the seeded netlist generators: for each
//! requested family (`maeri` / `a7` / `noc`), a couple of design
//! variants at several generator seeds, each taken through the exact
//! baseline pipeline the flow uses — place, ECO, no-MLS route, STA,
//! worst-path extraction — plus an oracle-labeled subset for
//! fine-tuning. Every design records its
//! [`gnnmls_netlist::Netlist::content_hash`] so a trained checkpoint can name exactly
//! what it was trained on.

use serde::{Deserialize, Serialize};

use gnn_mls::flow::{prepare, FlowConfig};
use gnn_mls::oracle::{label_paths, OracleConfig, OracleStats};
use gnn_mls::paths::{extract_path_samples_par, PathSample};
use gnn_mls::session::build_tech;
use gnn_mls::FAMILIES;
use gnnmls_netlist::generators::{
    generate_a7, generate_maeri, generate_noc, A7Config, GeneratedDesign, MaeriConfig, NocConfig,
};
use gnnmls_netlist::tech::TechConfig;
use gnnmls_route::{MlsPolicy, Router};
use gnnmls_sta::{analyze, StaConfig};

use crate::ZooError;

/// What to sweep when building a corpus. The same config always builds
/// the same corpus, bit for bit.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Families to include (subset of [`gnn_mls::FAMILIES`]).
    pub families: Vec<String>,
    /// Generator seeds swept per variant.
    pub seeds: Vec<u64>,
    /// Design variants per family (1 or 2; more is clamped to 2).
    pub variants_per_family: usize,
    /// Target frequency for the baseline STA, MHz.
    pub target_freq_mhz: f64,
    /// Worst timing paths extracted per design (the unlabeled DGI
    /// corpus).
    pub paths_per_design: usize,
    /// Of those, how many get oracle labels for fine-tuning.
    pub labeled_per_design: usize,
    /// Worker threads (`0` = all cores). Results are identical for
    /// every value.
    pub threads: usize,
}

impl CorpusConfig {
    /// A full three-family sweep at suite scale.
    pub fn full() -> Self {
        Self {
            families: FAMILIES.iter().map(|f| (*f).to_string()).collect(),
            seeds: vec![1, 2],
            variants_per_family: 2,
            target_freq_mhz: 2500.0,
            paths_per_design: 60,
            labeled_per_design: 16,
            threads: 0,
        }
    }

    /// A two-family, one-seed corpus small enough for CI smoke tests.
    pub fn tiny() -> Self {
        Self {
            families: vec!["maeri".to_string(), "noc".to_string()],
            seeds: vec![1],
            variants_per_family: 1,
            target_freq_mhz: 2500.0,
            paths_per_design: 40,
            labeled_per_design: 10,
            threads: 0,
        }
    }

    /// Rejects unknown families, empty sweeps, and degenerate budgets.
    ///
    /// # Errors
    ///
    /// Returns [`ZooError::UnknownFamily`] or [`ZooError::EmptyCorpus`].
    pub fn validate(&self) -> Result<(), ZooError> {
        for family in &self.families {
            if !FAMILIES.contains(&family.as_str()) {
                return Err(ZooError::UnknownFamily(family.clone()));
            }
        }
        if self.families.is_empty() || self.seeds.is_empty() || self.paths_per_design == 0 {
            return Err(ZooError::EmptyCorpus);
        }
        Ok(())
    }
}

/// One generated design's contribution to the corpus.
#[derive(Clone, Debug)]
pub struct CorpusDesign {
    /// Zoo family (`maeri` | `a7` | `noc`).
    pub family: String,
    /// Variant name (e.g. `maeri16`, `noc4x4`).
    pub variant: String,
    /// Generator seed.
    pub seed: u64,
    /// [`gnnmls_netlist::Netlist::content_hash`] of the generated netlist — the
    /// checkpoint's provenance record.
    pub content_hash: u64,
    /// Worst-path samples (unlabeled; DGI pretraining input).
    pub samples: Vec<PathSample>,
    /// Oracle-labeled prefix of `samples` (fine-tuning input).
    pub labeled: Vec<PathSample>,
    /// What the oracle saw while labeling.
    pub oracle: OracleStats,
}

/// The assembled corpus: designs in deterministic sweep order
/// (family → variant → seed).
#[derive(Clone, Debug, Default)]
pub struct Corpus {
    /// Per-design sample sets.
    pub designs: Vec<CorpusDesign>,
}

impl Corpus {
    /// Families present, in first-appearance order.
    pub fn families(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for d in &self.designs {
            if !out.contains(&d.family) {
                out.push(d.family.clone());
            }
        }
        out
    }

    /// Sorted content hashes of every design (pretraining provenance).
    pub fn all_hashes(&self) -> Vec<u64> {
        let mut h: Vec<u64> = self.designs.iter().map(|d| d.content_hash).collect();
        h.sort_unstable();
        h.dedup();
        h
    }

    /// Sorted content hashes of one family's designs.
    pub fn family_hashes(&self, family: &str) -> Vec<u64> {
        let mut h: Vec<u64> = self
            .designs
            .iter()
            .filter(|d| d.family == family)
            .map(|d| d.content_hash)
            .collect();
        h.sort_unstable();
        h.dedup();
        h
    }

    /// Every unlabeled sample across all designs, in corpus order —
    /// the cross-design DGI pretraining set.
    pub fn unlabeled(&self) -> Vec<PathSample> {
        self.designs
            .iter()
            .flat_map(|d| d.samples.iter().cloned())
            .collect()
    }

    /// One family's labeled samples, in corpus order — its fine-tuning
    /// set.
    pub fn labeled(&self, family: &str) -> Vec<PathSample> {
        self.designs
            .iter()
            .filter(|d| d.family == family)
            .flat_map(|d| d.labeled.iter().cloned())
            .collect()
    }

    /// Total unlabeled samples.
    pub fn len(&self) -> usize {
        self.designs.iter().map(|d| d.samples.len()).sum()
    }

    /// True when no design contributed samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The generator variants swept per family, smallest first. Index 0 is
/// the family's canonical suite-scale design; index 1 a structurally
/// different sibling so the pretrain set is not one topology repeated.
fn build_variant(
    family: &str,
    variant: usize,
    seed: u64,
    tech: &TechConfig,
) -> Result<(String, GeneratedDesign), ZooError> {
    let (name, design) = match (family, variant) {
        ("maeri", 0) => (
            "maeri16",
            generate_maeri(&MaeriConfig::pe16_bw4().with_seed(seed), tech),
        ),
        ("maeri", _) => (
            "maeri24",
            generate_maeri(&MaeriConfig::new(24, 6).with_seed(seed), tech),
        ),
        ("a7", 0) => (
            "a7mini",
            generate_a7(
                &A7Config::new(1).with_gates_per_stage(300).with_seed(seed),
                tech,
            ),
        ),
        ("a7", _) => (
            "a7mini-deep",
            generate_a7(
                &A7Config::new(1).with_gates_per_stage(450).with_seed(seed),
                tech,
            ),
        ),
        ("noc", 0) => (
            "noc4x4",
            generate_noc(&NocConfig::mesh4x4().with_seed(seed), tech),
        ),
        ("noc", _) => (
            "noc3x4",
            generate_noc(&NocConfig::new(3, 4).with_seed(seed), tech),
        ),
        _ => return Err(ZooError::UnknownFamily(family.to_string())),
    };
    Ok((name.to_string(), design?))
}

/// The heterogeneous stack a family's designs are built against (a7
/// uses 8 metal layers per die, the rest 6 — same rule as the serve
/// tier's `build_tech`).
fn family_tech(family: &str) -> Result<TechConfig, ZooError> {
    let representative = match family {
        "a7" => "a7mini",
        "maeri" => "maeri16",
        "noc" => "noc4x4",
        other => return Err(ZooError::UnknownFamily(other.to_string())),
    };
    build_tech("hetero", representative).ok_or_else(|| ZooError::UnknownFamily(family.to_string()))
}

/// Builds one design's corpus entry: prepare → baseline (no-MLS) route
/// → STA → worst-path extraction → oracle labels on the prefix.
fn build_design_entry(
    family: &str,
    variant: &str,
    seed: u64,
    design: &GeneratedDesign,
    flow_cfg: &FlowConfig,
    cfg: &CorpusConfig,
) -> Result<CorpusDesign, ZooError> {
    let (netlist, placement) = prepare(design, flow_cfg)?;
    let mut router = Router::new(
        &netlist,
        &placement,
        &design.tech,
        MlsPolicy::Disabled,
        flow_cfg.route_cfg(),
    )?;
    router.route_all()?;
    let routes = router.db()?;
    let timing = analyze(
        &netlist,
        &routes,
        StaConfig::from_freq_mhz(cfg.target_freq_mhz),
    )?;
    let samples = extract_path_samples_par(
        &netlist,
        &placement,
        &design.tech,
        &timing,
        cfg.paths_per_design,
        cfg.threads,
    );
    let take = cfg.labeled_per_design.min(samples.len());
    let mut labeled: Vec<PathSample> = samples.iter().take(take).cloned().collect();
    let oracle = label_paths(
        &mut labeled,
        &netlist,
        &router,
        &routes,
        &OracleConfig::default(),
    )?;
    Ok(CorpusDesign {
        family: family.to_string(),
        variant: variant.to_string(),
        seed,
        content_hash: netlist.content_hash(),
        samples,
        labeled,
        oracle,
    })
}

/// Builds the full corpus described by `cfg`, deterministically.
///
/// Sweep order is family → variant → seed; each design runs the same
/// baseline pipeline as the flow's learning stage. Emits a
/// `gnnmls_zoo_corpus_designs_total{family}` counter per design built.
///
/// # Errors
///
/// Returns [`ZooError`] if the config is invalid or any design's
/// pipeline stage fails.
pub fn build_corpus(cfg: &CorpusConfig) -> Result<Corpus, ZooError> {
    cfg.validate()?;
    let flow_cfg = FlowConfig::fast_test(cfg.target_freq_mhz).with_threads(cfg.threads);
    let variants = cfg.variants_per_family.clamp(1, 2);
    let mut designs = Vec::new();
    for family in &cfg.families {
        let tech = family_tech(family)?;
        for variant in 0..variants {
            for &seed in &cfg.seeds {
                let (name, design) = build_variant(family, variant, seed, &tech)?;
                let entry = build_design_entry(family, &name, seed, &design, &flow_cfg, cfg)?;
                gnnmls_obs::counter_add(
                    "gnnmls_zoo_corpus_designs_total",
                    &[("family", family.as_str())],
                    1,
                );
                designs.push(entry);
            }
        }
    }
    let corpus = Corpus { designs };
    if corpus.is_empty() {
        return Err(ZooError::EmptyCorpus);
    }
    Ok(corpus)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_refuses_garbage() {
        let mut cfg = CorpusConfig::tiny();
        cfg.families = vec!["riscv".to_string()];
        assert!(matches!(
            cfg.validate(),
            Err(ZooError::UnknownFamily(f)) if f == "riscv"
        ));
        let mut cfg = CorpusConfig::tiny();
        cfg.seeds.clear();
        assert!(matches!(cfg.validate(), Err(ZooError::EmptyCorpus)));
        assert!(CorpusConfig::tiny().validate().is_ok());
        assert!(CorpusConfig::full().validate().is_ok());
    }

    #[test]
    fn every_family_has_two_distinct_variants() {
        for family in FAMILIES {
            let tech = family_tech(family).unwrap();
            let (a, da) = build_variant(family, 0, 1, &tech).unwrap();
            let (b, db) = build_variant(family, 1, 1, &tech).unwrap();
            assert_ne!(a, b, "{family} variants must differ in name");
            assert_ne!(
                da.netlist.content_hash(),
                db.netlist.content_hash(),
                "{family} variants must differ structurally"
            );
        }
    }

    #[test]
    fn variant_generation_is_seed_deterministic() {
        let tech = family_tech("noc").unwrap();
        let (_, a) = build_variant("noc", 0, 7, &tech).unwrap();
        let (_, b) = build_variant("noc", 0, 7, &tech).unwrap();
        let (_, c) = build_variant("noc", 0, 8, &tech).unwrap();
        assert_eq!(a.netlist.content_hash(), b.netlist.content_hash());
        assert_ne!(a.netlist.content_hash(), c.netlist.content_hash());
    }
}

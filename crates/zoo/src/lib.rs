//! **gnnmls-zoo** — the GNN-MLS model zoo.
//!
//! The flow trains one model per run, on one design. This crate turns
//! that into an asset pipeline with three layers:
//!
//! 1. [`corpus`] — a deterministic cross-design training corpus swept
//!    from the seeded netlist generators (MAERI / A7 / NoC variants ×
//!    seeds), with [`gnnmls_netlist::Netlist::content_hash`] provenance
//!    per design, unlabeled [`gnn_mls::PathSample`]s for DGI
//!    pretraining and oracle-labeled subsets for fine-tuning;
//! 2. [`train`] — pretrain *once* across the whole corpus, then
//!    fine-tune a per-family copy on that family's labels, all
//!    thread-count independent;
//! 3. [`registry`] — versioned [`gnn_mls::ZooModelCheckpoint`]s under a
//!    `MANIFEST.json` index with content-hash integrity, ready for the
//!    serve tier's hot-swapping `LoadModel` request.
//!
//! Everything is deterministic: the same [`CorpusConfig`] always builds
//! the same corpus (same content hashes), and the same corpus + model
//! config always trains bit-identical weights regardless of the thread
//! count.

// Library code degrades with typed errors, never panics; diagnostics go
// through gnnmls-obs. Tests may unwrap and print freely.
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::print_stdout,
        clippy::print_stderr
    )
)]

pub mod corpus;
pub mod registry;
pub mod train;

pub use corpus::{build_corpus, Corpus, CorpusConfig, CorpusDesign};
pub use registry::{ManifestEntry, Registry, VerifyReport, ZooManifest, MANIFEST_FILE};
pub use train::{epochs_to_converge, train_zoo, ConvergenceRun, FamilyModel};

use std::fmt;

/// Why a zoo operation failed. Every variant is a typed, printable
/// refusal — the zoo never panics on bad input or a damaged registry.
#[derive(Debug)]
pub enum ZooError {
    /// A flow-level stage (placement, routing, STA, oracle) failed
    /// while building the corpus.
    Flow(gnn_mls::FlowError),
    /// Training or inference failed (shape mismatch, divergence).
    Model(gnn_mls::model::ModelError),
    /// A checkpoint could not be written, read, or validated.
    Checkpoint(gnn_mls::CheckpointError),
    /// A family name outside [`gnn_mls::FAMILIES`].
    UnknownFamily(String),
    /// The corpus has no samples to train on.
    EmptyCorpus,
    /// The registry manifest or a published file is inconsistent
    /// (missing entry, hash mismatch, family mismatch).
    Registry(String),
}

impl fmt::Display for ZooError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZooError::Flow(e) => write!(f, "corpus build failed: {e}"),
            ZooError::Model(e) => write!(f, "training failed: {e}"),
            ZooError::Checkpoint(e) => write!(f, "checkpoint failed: {e}"),
            ZooError::UnknownFamily(name) => write!(
                f,
                "unknown design family `{name}` (expected one of {})",
                gnn_mls::FAMILIES.join(", ")
            ),
            ZooError::EmptyCorpus => write!(f, "corpus is empty: nothing to train on"),
            ZooError::Registry(why) => write!(f, "registry inconsistent: {why}"),
        }
    }
}

impl std::error::Error for ZooError {}

impl From<gnn_mls::FlowError> for ZooError {
    fn from(e: gnn_mls::FlowError) -> Self {
        ZooError::Flow(e)
    }
}

impl From<gnn_mls::model::ModelError> for ZooError {
    fn from(e: gnn_mls::model::ModelError) -> Self {
        ZooError::Model(e)
    }
}

impl From<gnn_mls::CheckpointError> for ZooError {
    fn from(e: gnn_mls::CheckpointError) -> Self {
        ZooError::Checkpoint(e)
    }
}

impl From<gnnmls_netlist::NetlistError> for ZooError {
    fn from(e: gnnmls_netlist::NetlistError) -> Self {
        ZooError::Flow(e.into())
    }
}

impl From<gnnmls_route::RouteError> for ZooError {
    fn from(e: gnnmls_route::RouteError) -> Self {
        ZooError::Flow(e.into())
    }
}

impl From<gnnmls_sta::StaError> for ZooError {
    fn from(e: gnnmls_sta::StaError) -> Self {
        ZooError::Flow(e.into())
    }
}

//! Versioned on-disk model registry.
//!
//! A registry directory holds one `.ckpt` file per published
//! family+version (the [`ZooModelCheckpoint`] envelope) plus a
//! `MANIFEST.json` index. Every manifest entry records the FNV-1a hash
//! of the exact file bytes it indexed, so [`Registry::load`] and
//! [`Registry::verify`] catch swapped, truncated, or bit-rotted
//! checkpoints before they reach a serving model — the same
//! integrity-first posture as the stage-checkpoint envelope itself.

use std::fs;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use gnn_mls::checkpoint::{
    decode_stage, fnv1a64, write_json_file, ModelVersion, ZooModelCheckpoint, ZOO_MODEL_STAGE,
};
use gnn_mls::model::GnnMls;
use gnn_mls::store::{
    classify_envelope, damaged_path, ArtifactClass, RepairAction, ScrubReport, DAMAGED_SUFFIX,
    TMP_SUFFIX,
};

use crate::ZooError;

/// The manifest file name inside a registry directory.
pub const MANIFEST_FILE: &str = "MANIFEST.json";

/// Manifest schema version this code reads and writes.
pub const MANIFEST_SCHEMA_VERSION: u32 = 1;

/// One published model in the manifest.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Zoo family the model serves.
    pub family: String,
    /// Model version within the family.
    pub version: ModelVersion,
    /// Checkpoint file name, relative to the registry directory.
    pub file: String,
    /// FNV-1a 64 hash of the checkpoint file's exact bytes.
    pub file_hash: u64,
    /// Trainable parameters in the model.
    pub parameter_count: u64,
    /// Designs in the training corpus (length of the checkpoint's
    /// `corpus_hashes`).
    pub corpus_designs: u64,
}

/// The `MANIFEST.json` payload: schema version plus entries sorted by
/// family then version.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ZooManifest {
    /// Schema version ([`MANIFEST_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Published models.
    pub entries: Vec<ManifestEntry>,
}

/// What [`Registry::verify`] found.
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// Entries checked.
    pub checked: usize,
    /// Human-readable integrity problems (empty when healthy).
    pub problems: Vec<String>,
}

impl VerifyReport {
    /// True when every entry checked out.
    pub fn ok(&self) -> bool {
        self.problems.is_empty()
    }
}

/// A model registry rooted at a directory.
#[derive(Clone, Debug)]
pub struct Registry {
    dir: PathBuf,
    last_scrub: Option<ScrubReport>,
}

impl Registry {
    /// Opens a registry at `dir`, running [`Registry::scrub`] first so
    /// crash residue (orphan tmps, torn checkpoints, a damaged
    /// manifest) is repaired and the registry degrades to its last-good
    /// state instead of failing later reads. The scrub is best-effort:
    /// a scrub error is logged, never propagated, and the report (when
    /// one was produced) is available from [`Registry::last_scrub`].
    pub fn open(dir: impl Into<PathBuf>) -> Self {
        let mut reg = Self::open_unscrubbed(dir);
        match reg.scrub() {
            Ok(report) => reg.last_scrub = Some(report),
            Err(e) => gnnmls_obs::warn("zoo", &format!("registry scrub failed: {e}")),
        }
        reg
    }

    /// Opens a registry without the automatic scrub — for `fsck`
    /// (which wants to run and report the scrub itself) and for tests
    /// that seed damage deliberately.
    pub fn open_unscrubbed(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            last_scrub: None,
        }
    }

    /// The report of the scrub [`Registry::open`] ran, if any.
    pub fn last_scrub(&self) -> Option<&ScrubReport> {
        self.last_scrub.as_ref()
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Absolute path of an entry's checkpoint file.
    pub fn entry_path(&self, entry: &ManifestEntry) -> PathBuf {
        self.dir.join(&entry.file)
    }

    /// Reads the manifest; a missing file is an empty registry, a
    /// malformed or wrong-schema file is an error.
    ///
    /// # Errors
    ///
    /// Returns [`ZooError::Registry`] for unreadable or wrong-schema
    /// manifests.
    pub fn manifest(&self) -> Result<ZooManifest, ZooError> {
        let path = self.dir.join(MANIFEST_FILE);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(ZooManifest {
                    schema_version: MANIFEST_SCHEMA_VERSION,
                    entries: Vec::new(),
                })
            }
            Err(e) => {
                return Err(ZooError::Registry(format!(
                    "cannot read {}: {e}",
                    path.display()
                )))
            }
        };
        let manifest: ZooManifest = serde_json::from_str(&text)
            .map_err(|e| ZooError::Registry(format!("malformed {}: {e}", path.display())))?;
        if manifest.schema_version != MANIFEST_SCHEMA_VERSION {
            return Err(ZooError::Registry(format!(
                "manifest schema {} unsupported (expected {MANIFEST_SCHEMA_VERSION})",
                manifest.schema_version
            )));
        }
        Ok(manifest)
    }

    /// The next version to publish for a family: `1.0.0` for the first
    /// model, otherwise the latest version with the minor bumped.
    ///
    /// # Errors
    ///
    /// Returns [`ZooError::Registry`] if the manifest is unreadable.
    pub fn next_version(&self, family: &str) -> Result<ModelVersion, ZooError> {
        Ok(match self.latest(family)? {
            Some(entry) => ModelVersion::new(entry.version.major, entry.version.minor + 1, 0),
            None => ModelVersion::new(1, 0, 0),
        })
    }

    /// The highest published version of a family, if any.
    ///
    /// # Errors
    ///
    /// Returns [`ZooError::Registry`] if the manifest is unreadable.
    pub fn latest(&self, family: &str) -> Result<Option<ManifestEntry>, ZooError> {
        Ok(self
            .manifest()?
            .entries
            .into_iter()
            .filter(|e| e.family == family)
            .max_by_key(|e| e.version))
    }

    /// Finds one entry: the exact version when given, else the latest.
    ///
    /// # Errors
    ///
    /// Returns [`ZooError::Registry`] when nothing matches.
    pub fn entry(
        &self,
        family: &str,
        version: Option<ModelVersion>,
    ) -> Result<ManifestEntry, ZooError> {
        let found = match version {
            Some(v) => self
                .manifest()?
                .entries
                .into_iter()
                .find(|e| e.family == family && e.version == v),
            None => self.latest(family)?,
        };
        found.ok_or_else(|| {
            ZooError::Registry(match version {
                Some(v) => format!("no model {family} v{v} in {}", self.dir.display()),
                None => format!("no model for family {family} in {}", self.dir.display()),
            })
        })
    }

    /// Publishes a checkpoint: validates the weights restore, writes
    /// `<family>-v<version>.ckpt`, and rewrites the manifest (replacing
    /// any entry with the same family+version).
    ///
    /// # Errors
    ///
    /// Returns [`ZooError::Checkpoint`] when the model does not restore
    /// or the file cannot be written, [`ZooError::Registry`] for
    /// manifest problems.
    pub fn publish(&self, cp: &ZooModelCheckpoint) -> Result<ManifestEntry, ZooError> {
        // A checkpoint that cannot restore must never be indexed.
        let model = GnnMls::from_checkpoint(cp.model.clone())?;
        let file = format!("{}-v{}.ckpt", cp.family, cp.version);
        let path = self.dir.join(&file);
        cp.save(&path)?;
        let bytes = fs::read(&path)
            .map_err(|e| ZooError::Registry(format!("cannot re-read {}: {e}", path.display())))?;
        let entry = ManifestEntry {
            family: cp.family.clone(),
            version: cp.version,
            file,
            file_hash: fnv1a64(&bytes),
            parameter_count: model.parameter_count() as u64,
            corpus_designs: cp.corpus_hashes.len() as u64,
        };
        let mut manifest = self.manifest()?;
        manifest
            .entries
            .retain(|e| !(e.family == entry.family && e.version == entry.version));
        manifest.entries.push(entry.clone());
        manifest
            .entries
            .sort_by(|a, b| (&a.family, a.version).cmp(&(&b.family, b.version)));
        manifest.schema_version = MANIFEST_SCHEMA_VERSION;
        write_json_file(&self.dir.join(MANIFEST_FILE), &manifest)?;
        gnnmls_obs::counter_add(
            "gnnmls_zoo_models_published_total",
            &[("family", cp.family.as_str())],
            1,
        );
        Ok(entry)
    }

    /// Loads a published model with full integrity checking: the file's
    /// bytes must hash to the manifest's record, the envelope must
    /// validate, and the payload's family/version must match the entry.
    ///
    /// # Errors
    ///
    /// Returns [`ZooError::Registry`] for index or integrity
    /// mismatches, [`ZooError::Checkpoint`] for a damaged envelope.
    pub fn load(
        &self,
        family: &str,
        version: Option<ModelVersion>,
    ) -> Result<ZooModelCheckpoint, ZooError> {
        let entry = self.entry(family, version)?;
        let path = self.entry_path(&entry);
        let bytes = fs::read(&path)
            .map_err(|e| ZooError::Registry(format!("cannot read {}: {e}", path.display())))?;
        if fnv1a64(&bytes) != entry.file_hash {
            return Err(ZooError::Registry(format!(
                "{} does not match its manifest hash (swapped or damaged file)",
                path.display()
            )));
        }
        let cp = ZooModelCheckpoint::load(&path)?;
        if cp.family != entry.family || cp.version != entry.version {
            return Err(ZooError::Registry(format!(
                "{} claims {} v{} but the manifest indexed {} v{}",
                path.display(),
                cp.family,
                cp.version,
                entry.family,
                entry.version
            )));
        }
        Ok(cp)
    }

    /// Re-checks every manifest entry: file present, bytes hash to the
    /// indexed value, envelope decodes, payload family/version match.
    /// Collects problems instead of failing fast so one bad file does
    /// not hide another.
    ///
    /// # Errors
    ///
    /// Returns [`ZooError::Registry`] only when the manifest itself is
    /// unreadable; per-entry damage lands in the report.
    pub fn verify(&self) -> Result<VerifyReport, ZooError> {
        let manifest = self.manifest()?;
        let mut report = VerifyReport::default();
        for entry in &manifest.entries {
            report.checked += 1;
            let tag = format!("{} v{} ({})", entry.family, entry.version, entry.file);
            let path = self.entry_path(entry);
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    report.problems.push(format!("{tag}: cannot read: {e}"));
                    continue;
                }
            };
            if fnv1a64(&bytes) != entry.file_hash {
                report
                    .problems
                    .push(format!("{tag}: file hash mismatch (swapped or damaged)"));
                continue;
            }
            match ZooModelCheckpoint::load(&path) {
                Ok(cp) if cp.family != entry.family || cp.version != entry.version => {
                    report.problems.push(format!(
                        "{tag}: payload is {} v{}, not what the manifest indexed",
                        cp.family, cp.version
                    ));
                }
                Ok(_) => {}
                Err(e) => report
                    .problems
                    .push(format!("{tag}: envelope invalid: {e}")),
            }
        }
        Ok(report)
    }

    /// Crash-recovery scrub of the registry directory, by rule:
    ///
    /// - an orphan `*.ckpt.tmp` whose destination is **missing** and
    ///   whose bytes are a complete valid envelope is a publish that
    ///   crashed between fsync and rename — the rename is **completed**
    ///   (roll forward); any other tmp is **deleted** (the destination
    ///   holds the complete old state);
    /// - a damaged or wrong-schema `MANIFEST.json` is quarantined and
    ///   **rebuilt** from the surviving valid checkpoints;
    /// - a manifest entry whose file is missing, hash-mismatched, torn,
    ///   or undecodable is **rolled back**: the damaged file (if any) is
    ///   quarantined to `*.damaged` and the entry dropped, so
    ///   [`Registry::latest`] falls back to the previous good version;
    /// - a valid unindexed `model-zoo` checkpoint (publish crashed
    ///   between the data write and the index write) is **adopted**
    ///   into the manifest;
    /// - a future-format checkpoint is left intact and reported —
    ///   loading it stays a typed version error, never a panic.
    ///
    /// The manifest rewrite goes through the same durable-write path as
    /// publish, so a crash during recovery is itself recoverable.
    ///
    /// # Errors
    ///
    /// Returns [`ZooError::Registry`] only when the directory itself
    /// cannot be listed; per-file damage lands in the report.
    pub fn scrub(&self) -> Result<ScrubReport, ZooError> {
        let mut report = ScrubReport::new(&self.dir);
        let entries = match fs::read_dir(&self.dir) {
            Ok(it) => it,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(report),
            Err(e) => {
                return Err(ZooError::Registry(format!(
                    "cannot list {}: {e}",
                    self.dir.display()
                )))
            }
        };
        let mut names: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        names.sort();

        // Pass 1: orphan temp files. A complete valid envelope whose
        // destination is missing is an interrupted rename — finish it.
        let mut ckpt_names: Vec<String> = names
            .iter()
            .filter(|n| n.ends_with(".ckpt"))
            .cloned()
            .collect();
        for name in names.iter().filter(|n| n.ends_with(TMP_SUFFIX)) {
            report.scanned += 1;
            let path = self.dir.join(name);
            let dest_name = name.trim_end_matches(TMP_SUFFIX);
            let dest = self.dir.join(dest_name);
            let complete = dest_name.ends_with(".ckpt")
                && !dest.exists()
                && fs::read(&path)
                    .map(|b| matches!(classify_envelope(&b).0, ArtifactClass::Valid))
                    .unwrap_or(false);
            if complete {
                match fs::rename(&path, &dest) {
                    Ok(()) => {
                        ckpt_names.push(dest_name.to_string());
                        report.push(
                            name.clone(),
                            ArtifactClass::OrphanTmp,
                            RepairAction::Adopted,
                            "complete orphan; interrupted rename finished".to_string(),
                        );
                    }
                    Err(e) => report.push(
                        name.clone(),
                        ArtifactClass::OrphanTmp,
                        RepairAction::Failed,
                        format!("complete orphan; rename failed: {e}"),
                    ),
                }
            } else {
                match fs::remove_file(&path) {
                    Ok(()) => report.push(
                        name.clone(),
                        ArtifactClass::OrphanTmp,
                        RepairAction::DeletedTmp,
                        "orphan temp file from a crashed write".to_string(),
                    ),
                    Err(e) => report.push(
                        name.clone(),
                        ArtifactClass::OrphanTmp,
                        RepairAction::Failed,
                        format!("orphan temp file; delete failed: {e}"),
                    ),
                }
            }
        }

        // Pass 2: the manifest itself.
        let manifest_path = self.dir.join(MANIFEST_FILE);
        let mut manifest_damaged = false;
        let mut manifest = if names.iter().any(|n| n == MANIFEST_FILE) {
            report.scanned += 1;
            let parsed = fs::read_to_string(&manifest_path)
                .ok()
                .and_then(|t| serde_json::from_str::<ZooManifest>(&t).ok())
                .filter(|m| m.schema_version == MANIFEST_SCHEMA_VERSION);
            match parsed {
                Some(m) => {
                    report.valid += 1;
                    m
                }
                None => {
                    manifest_damaged = true;
                    match fs::rename(&manifest_path, damaged_path(&manifest_path)) {
                        Ok(()) => report.push(
                            MANIFEST_FILE.to_string(),
                            ArtifactClass::Torn,
                            RepairAction::Quarantined,
                            "unreadable or wrong-schema manifest".to_string(),
                        ),
                        Err(e) => report.push(
                            MANIFEST_FILE.to_string(),
                            ArtifactClass::Torn,
                            RepairAction::Failed,
                            format!("unreadable manifest; quarantine failed: {e}"),
                        ),
                    }
                    ZooManifest {
                        schema_version: MANIFEST_SCHEMA_VERSION,
                        entries: Vec::new(),
                    }
                }
            }
        } else {
            ZooManifest {
                schema_version: MANIFEST_SCHEMA_VERSION,
                entries: Vec::new(),
            }
        };
        let mut changed = manifest_damaged;

        // Pass 3: every indexed entry must check out, or it is rolled
        // back (file quarantined, entry dropped) so `latest()` falls to
        // the previous good version.
        let mut kept: Vec<ManifestEntry> = Vec::new();
        for entry in std::mem::take(&mut manifest.entries) {
            let path = self.dir.join(&entry.file);
            report.scanned += 1;
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    changed = true;
                    report.push(
                        entry.file.clone(),
                        ArtifactClass::Torn,
                        RepairAction::RolledBack,
                        format!(
                            "indexed {} v{} is missing; entry dropped",
                            entry.family, entry.version
                        ),
                    );
                    continue;
                }
                Err(e) => {
                    report.push(
                        entry.file.clone(),
                        ArtifactClass::Torn,
                        RepairAction::Failed,
                        format!("cannot read: {e}"),
                    );
                    kept.push(entry);
                    continue;
                }
            };
            let (class, detail) = classify_envelope(&bytes);
            let intact = match class {
                ArtifactClass::UnknownVersion => {
                    // Future-format file: intact data from a newer
                    // build. Keep the entry; loading it is a typed
                    // version error.
                    report.push(entry.file.clone(), class, RepairAction::None, detail);
                    kept.push(entry);
                    continue;
                }
                ArtifactClass::Valid if fnv1a64(&bytes) != entry.file_hash => Some((
                    ArtifactClass::HashMismatch,
                    "file does not match its \
                         manifest hash (swapped file)"
                        .to_string(),
                )),
                ArtifactClass::Valid => {
                    match decode_stage::<ZooModelCheckpoint>(ZOO_MODEL_STAGE, &bytes) {
                        Ok(cp) if cp.family == entry.family && cp.version == entry.version => None,
                        Ok(cp) => Some((
                            ArtifactClass::HashMismatch,
                            format!(
                                "payload is {} v{}, not what the manifest \
                                 indexed",
                                cp.family, cp.version
                            ),
                        )),
                        Err(e) => Some((ArtifactClass::Torn, format!("payload invalid: {e}"))),
                    }
                }
                _ => Some((class, detail)),
            };
            match intact {
                None => {
                    report.valid += 1;
                    kept.push(entry);
                }
                Some((class, detail)) => {
                    changed = true;
                    let tag = format!("{detail}; {} v{} rolled back", entry.family, entry.version);
                    match fs::rename(&path, damaged_path(&path)) {
                        Ok(()) => {
                            report.push(entry.file.clone(), class, RepairAction::RolledBack, tag)
                        }
                        Err(e) => report.push(
                            entry.file.clone(),
                            class,
                            RepairAction::Failed,
                            format!("{tag}; quarantine failed: {e}"),
                        ),
                    }
                }
            }
        }
        manifest.entries = kept;

        // Pass 4: adopt complete valid checkpoints the manifest never
        // indexed (publish crashed between data write and index write).
        for name in &ckpt_names {
            if name.ends_with(DAMAGED_SUFFIX)
                || manifest.entries.iter().any(|e| &e.file == name)
                || report.findings.iter().any(|f| &f.file == name)
            {
                continue;
            }
            let path = self.dir.join(name);
            report.scanned += 1;
            let Ok(bytes) = fs::read(&path) else {
                report.push(
                    name.clone(),
                    ArtifactClass::Torn,
                    RepairAction::Failed,
                    "cannot read unindexed checkpoint".to_string(),
                );
                continue;
            };
            let (class, detail) = classify_envelope(&bytes);
            match class {
                ArtifactClass::Valid => {
                    let adopted = decode_stage::<ZooModelCheckpoint>(ZOO_MODEL_STAGE, &bytes)
                        .ok()
                        .and_then(|cp| {
                            let model = GnnMls::from_checkpoint(cp.model.clone()).ok()?;
                            Some(ManifestEntry {
                                family: cp.family.clone(),
                                version: cp.version,
                                file: name.clone(),
                                file_hash: fnv1a64(&bytes),
                                parameter_count: model.parameter_count() as u64,
                                corpus_designs: cp.corpus_hashes.len() as u64,
                            })
                        });
                    match adopted {
                        Some(entry) => {
                            changed = true;
                            let tag = format!(
                                "{} v{} adopted into manifest",
                                entry.family, entry.version
                            );
                            manifest.entries.push(entry);
                            report.push(
                                name.clone(),
                                ArtifactClass::Valid,
                                RepairAction::Adopted,
                                tag,
                            );
                        }
                        // A valid envelope of some other stage is not a
                        // registry artifact; leave it alone.
                        None => report.valid += 1,
                    }
                }
                ArtifactClass::UnknownVersion => {
                    report.push(name.clone(), class, RepairAction::None, detail)
                }
                _ => {
                    changed = true;
                    match fs::rename(&path, damaged_path(&path)) {
                        Ok(()) => {
                            report.push(name.clone(), class, RepairAction::Quarantined, detail)
                        }
                        Err(e) => report.push(
                            name.clone(),
                            class,
                            RepairAction::Failed,
                            format!("{detail}; quarantine failed: {e}"),
                        ),
                    }
                }
            }
        }

        // Pass 5: persist the repaired index through the same durable
        // path publish uses, so a crash during recovery is itself
        // recoverable.
        if changed {
            manifest
                .entries
                .sort_by(|a, b| (&a.family, a.version).cmp(&(&b.family, b.version)));
            manifest.schema_version = MANIFEST_SCHEMA_VERSION;
            match write_json_file(&manifest_path, &manifest) {
                Ok(()) => {
                    if manifest_damaged {
                        report.push(
                            MANIFEST_FILE.to_string(),
                            ArtifactClass::Torn,
                            RepairAction::RebuiltManifest,
                            format!("rebuilt from {} surviving entries", manifest.entries.len()),
                        );
                    }
                }
                Err(e) => report.push(
                    MANIFEST_FILE.to_string(),
                    ArtifactClass::Torn,
                    RepairAction::Failed,
                    format!("could not rewrite manifest: {e}"),
                ),
            }
        }
        if !report.clean() {
            gnnmls_obs::warn(
                "zoo",
                &format!(
                    "registry scrub of {} repaired {} artifact(s), {} unrepairable",
                    self.dir.display(),
                    report.repaired,
                    report.unrepairable
                ),
            );
        }
        Ok(report)
    }
}

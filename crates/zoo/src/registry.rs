//! Versioned on-disk model registry.
//!
//! A registry directory holds one `.ckpt` file per published
//! family+version (the [`ZooModelCheckpoint`] envelope) plus a
//! `MANIFEST.json` index. Every manifest entry records the FNV-1a hash
//! of the exact file bytes it indexed, so [`Registry::load`] and
//! [`Registry::verify`] catch swapped, truncated, or bit-rotted
//! checkpoints before they reach a serving model — the same
//! integrity-first posture as the stage-checkpoint envelope itself.

use std::fs;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use gnn_mls::checkpoint::{fnv1a64, write_json_file, ModelVersion, ZooModelCheckpoint};
use gnn_mls::model::GnnMls;

use crate::ZooError;

/// The manifest file name inside a registry directory.
pub const MANIFEST_FILE: &str = "MANIFEST.json";

/// Manifest schema version this code reads and writes.
pub const MANIFEST_SCHEMA_VERSION: u32 = 1;

/// One published model in the manifest.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Zoo family the model serves.
    pub family: String,
    /// Model version within the family.
    pub version: ModelVersion,
    /// Checkpoint file name, relative to the registry directory.
    pub file: String,
    /// FNV-1a 64 hash of the checkpoint file's exact bytes.
    pub file_hash: u64,
    /// Trainable parameters in the model.
    pub parameter_count: u64,
    /// Designs in the training corpus (length of the checkpoint's
    /// `corpus_hashes`).
    pub corpus_designs: u64,
}

/// The `MANIFEST.json` payload: schema version plus entries sorted by
/// family then version.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ZooManifest {
    /// Schema version ([`MANIFEST_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Published models.
    pub entries: Vec<ManifestEntry>,
}

/// What [`Registry::verify`] found.
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// Entries checked.
    pub checked: usize,
    /// Human-readable integrity problems (empty when healthy).
    pub problems: Vec<String>,
}

impl VerifyReport {
    /// True when every entry checked out.
    pub fn ok(&self) -> bool {
        self.problems.is_empty()
    }
}

/// A model registry rooted at a directory.
#[derive(Clone, Debug)]
pub struct Registry {
    dir: PathBuf,
}

impl Registry {
    /// Opens (without touching the filesystem) a registry at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Absolute path of an entry's checkpoint file.
    pub fn entry_path(&self, entry: &ManifestEntry) -> PathBuf {
        self.dir.join(&entry.file)
    }

    /// Reads the manifest; a missing file is an empty registry, a
    /// malformed or wrong-schema file is an error.
    ///
    /// # Errors
    ///
    /// Returns [`ZooError::Registry`] for unreadable or wrong-schema
    /// manifests.
    pub fn manifest(&self) -> Result<ZooManifest, ZooError> {
        let path = self.dir.join(MANIFEST_FILE);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(ZooManifest {
                    schema_version: MANIFEST_SCHEMA_VERSION,
                    entries: Vec::new(),
                })
            }
            Err(e) => {
                return Err(ZooError::Registry(format!(
                    "cannot read {}: {e}",
                    path.display()
                )))
            }
        };
        let manifest: ZooManifest = serde_json::from_str(&text)
            .map_err(|e| ZooError::Registry(format!("malformed {}: {e}", path.display())))?;
        if manifest.schema_version != MANIFEST_SCHEMA_VERSION {
            return Err(ZooError::Registry(format!(
                "manifest schema {} unsupported (expected {MANIFEST_SCHEMA_VERSION})",
                manifest.schema_version
            )));
        }
        Ok(manifest)
    }

    /// The next version to publish for a family: `1.0.0` for the first
    /// model, otherwise the latest version with the minor bumped.
    ///
    /// # Errors
    ///
    /// Returns [`ZooError::Registry`] if the manifest is unreadable.
    pub fn next_version(&self, family: &str) -> Result<ModelVersion, ZooError> {
        Ok(match self.latest(family)? {
            Some(entry) => ModelVersion::new(entry.version.major, entry.version.minor + 1, 0),
            None => ModelVersion::new(1, 0, 0),
        })
    }

    /// The highest published version of a family, if any.
    ///
    /// # Errors
    ///
    /// Returns [`ZooError::Registry`] if the manifest is unreadable.
    pub fn latest(&self, family: &str) -> Result<Option<ManifestEntry>, ZooError> {
        Ok(self
            .manifest()?
            .entries
            .into_iter()
            .filter(|e| e.family == family)
            .max_by_key(|e| e.version))
    }

    /// Finds one entry: the exact version when given, else the latest.
    ///
    /// # Errors
    ///
    /// Returns [`ZooError::Registry`] when nothing matches.
    pub fn entry(
        &self,
        family: &str,
        version: Option<ModelVersion>,
    ) -> Result<ManifestEntry, ZooError> {
        let found = match version {
            Some(v) => self
                .manifest()?
                .entries
                .into_iter()
                .find(|e| e.family == family && e.version == v),
            None => self.latest(family)?,
        };
        found.ok_or_else(|| {
            ZooError::Registry(match version {
                Some(v) => format!("no model {family} v{v} in {}", self.dir.display()),
                None => format!("no model for family {family} in {}", self.dir.display()),
            })
        })
    }

    /// Publishes a checkpoint: validates the weights restore, writes
    /// `<family>-v<version>.ckpt`, and rewrites the manifest (replacing
    /// any entry with the same family+version).
    ///
    /// # Errors
    ///
    /// Returns [`ZooError::Checkpoint`] when the model does not restore
    /// or the file cannot be written, [`ZooError::Registry`] for
    /// manifest problems.
    pub fn publish(&self, cp: &ZooModelCheckpoint) -> Result<ManifestEntry, ZooError> {
        // A checkpoint that cannot restore must never be indexed.
        let model = GnnMls::from_checkpoint(cp.model.clone())?;
        let file = format!("{}-v{}.ckpt", cp.family, cp.version);
        let path = self.dir.join(&file);
        cp.save(&path)?;
        let bytes = fs::read(&path)
            .map_err(|e| ZooError::Registry(format!("cannot re-read {}: {e}", path.display())))?;
        let entry = ManifestEntry {
            family: cp.family.clone(),
            version: cp.version,
            file,
            file_hash: fnv1a64(&bytes),
            parameter_count: model.parameter_count() as u64,
            corpus_designs: cp.corpus_hashes.len() as u64,
        };
        let mut manifest = self.manifest()?;
        manifest
            .entries
            .retain(|e| !(e.family == entry.family && e.version == entry.version));
        manifest.entries.push(entry.clone());
        manifest
            .entries
            .sort_by(|a, b| (&a.family, a.version).cmp(&(&b.family, b.version)));
        manifest.schema_version = MANIFEST_SCHEMA_VERSION;
        write_json_file(&self.dir.join(MANIFEST_FILE), &manifest)?;
        gnnmls_obs::counter_add(
            "gnnmls_zoo_models_published_total",
            &[("family", cp.family.as_str())],
            1,
        );
        Ok(entry)
    }

    /// Loads a published model with full integrity checking: the file's
    /// bytes must hash to the manifest's record, the envelope must
    /// validate, and the payload's family/version must match the entry.
    ///
    /// # Errors
    ///
    /// Returns [`ZooError::Registry`] for index or integrity
    /// mismatches, [`ZooError::Checkpoint`] for a damaged envelope.
    pub fn load(
        &self,
        family: &str,
        version: Option<ModelVersion>,
    ) -> Result<ZooModelCheckpoint, ZooError> {
        let entry = self.entry(family, version)?;
        let path = self.entry_path(&entry);
        let bytes = fs::read(&path)
            .map_err(|e| ZooError::Registry(format!("cannot read {}: {e}", path.display())))?;
        if fnv1a64(&bytes) != entry.file_hash {
            return Err(ZooError::Registry(format!(
                "{} does not match its manifest hash (swapped or damaged file)",
                path.display()
            )));
        }
        let cp = ZooModelCheckpoint::load(&path)?;
        if cp.family != entry.family || cp.version != entry.version {
            return Err(ZooError::Registry(format!(
                "{} claims {} v{} but the manifest indexed {} v{}",
                path.display(),
                cp.family,
                cp.version,
                entry.family,
                entry.version
            )));
        }
        Ok(cp)
    }

    /// Re-checks every manifest entry: file present, bytes hash to the
    /// indexed value, envelope decodes, payload family/version match.
    /// Collects problems instead of failing fast so one bad file does
    /// not hide another.
    ///
    /// # Errors
    ///
    /// Returns [`ZooError::Registry`] only when the manifest itself is
    /// unreadable; per-entry damage lands in the report.
    pub fn verify(&self) -> Result<VerifyReport, ZooError> {
        let manifest = self.manifest()?;
        let mut report = VerifyReport::default();
        for entry in &manifest.entries {
            report.checked += 1;
            let tag = format!("{} v{} ({})", entry.family, entry.version, entry.file);
            let path = self.entry_path(entry);
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    report.problems.push(format!("{tag}: cannot read: {e}"));
                    continue;
                }
            };
            if fnv1a64(&bytes) != entry.file_hash {
                report
                    .problems
                    .push(format!("{tag}: file hash mismatch (swapped or damaged)"));
                continue;
            }
            match ZooModelCheckpoint::load(&path) {
                Ok(cp) if cp.family != entry.family || cp.version != entry.version => {
                    report.problems.push(format!(
                        "{tag}: payload is {} v{}, not what the manifest indexed",
                        cp.family, cp.version
                    ));
                }
                Ok(_) => {}
                Err(e) => report
                    .problems
                    .push(format!("{tag}: envelope invalid: {e}")),
            }
        }
        Ok(report)
    }
}

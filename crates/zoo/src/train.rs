//! Cross-corpus pretraining and per-family fine-tuning.
//!
//! The zoo trains the DGI encoder **once** on every unlabeled sample in
//! the corpus, snapshots it, then fine-tunes a fresh copy per family on
//! that family's oracle labels. The snapshot-and-clone goes through
//! [`GnnMls::to_checkpoint`] / [`GnnMls::from_checkpoint`], so the
//! shared pretrained weights each family starts from are exactly the
//! bytes a checkpoint would hold — restoring a published model can
//! never diverge from the in-memory one.

use gnn_mls::checkpoint::{ModelCheckpoint, ModelVersion, ZooModelCheckpoint};
use gnn_mls::model::GnnMls;
use gnn_mls::paths::PathSample;
use gnn_mls::ModelConfig;
use gnnmls_nn::Classification;

use crate::corpus::Corpus;
use crate::ZooError;

/// One family's trained model plus its training provenance.
pub struct FamilyModel {
    /// Zoo family this model serves.
    pub family: String,
    /// The fine-tuned model.
    pub model: GnnMls,
    /// Final DGI pretraining loss (shared across families).
    pub pretrain_loss: f32,
    /// DGI epochs run on the cross-design corpus.
    pub pretrain_epochs: usize,
    /// Fine-tune epochs run on this family's labels.
    pub finetune_epochs: usize,
    /// Training-set confusion matrix after fine-tuning.
    pub metrics: Classification,
    /// Sorted content hashes of every corpus design (the pretraining
    /// set spans all families, so provenance names them all).
    pub corpus_hashes: Vec<u64>,
}

impl FamilyModel {
    /// Packages the model as a versioned zoo checkpoint.
    pub fn to_zoo_checkpoint(&self, version: ModelVersion) -> ZooModelCheckpoint {
        ZooModelCheckpoint {
            family: self.family.clone(),
            version,
            corpus_hashes: self.corpus_hashes.clone(),
            pretrain_epochs: self.pretrain_epochs,
            finetune_epochs: self.finetune_epochs,
            model: self.model.to_checkpoint(),
        }
    }
}

/// Trains the zoo: one cross-corpus DGI pretrain, then a per-family
/// fine-tune of a pretrained copy on each family's labeled samples.
/// Families with no labels are skipped. Deterministic for a given
/// corpus + config at every `threads` value.
///
/// # Errors
///
/// Returns [`ZooError::EmptyCorpus`] for a corpus with no samples and
/// [`ZooError::Model`] / [`ZooError::Checkpoint`] on training or
/// snapshot failure.
pub fn train_zoo(
    corpus: &Corpus,
    model_cfg: &ModelConfig,
    threads: usize,
) -> Result<Vec<FamilyModel>, ZooError> {
    if corpus.is_empty() {
        return Err(ZooError::EmptyCorpus);
    }
    let unlabeled = corpus.unlabeled();
    let mut base = GnnMls::new(model_cfg.clone());
    base.set_threads(threads);
    let pretrain_loss = base.pretrain(&unlabeled)?;
    let snapshot = base.to_checkpoint();
    let corpus_hashes = corpus.all_hashes();

    let mut out = Vec::new();
    for family in corpus.families() {
        let labeled = corpus.labeled(&family);
        if labeled.is_empty() {
            gnnmls_obs::warn(
                "gnnmls-zoo",
                &format!("family {family} has no labeled samples; skipping fine-tune"),
            );
            continue;
        }
        let mut model = GnnMls::from_checkpoint(snapshot.clone())?;
        model.set_threads(threads);
        let metrics = model.finetune(&labeled)?;
        gnnmls_obs::counter_add(
            "gnnmls_zoo_models_trained_total",
            &[("family", family.as_str())],
            1,
        );
        out.push(FamilyModel {
            family,
            model,
            pretrain_loss,
            pretrain_epochs: model_cfg.pretrain_epochs,
            finetune_epochs: model_cfg.finetune_epochs,
            metrics,
            corpus_hashes: corpus_hashes.clone(),
        });
    }
    if out.is_empty() {
        return Err(ZooError::EmptyCorpus);
    }
    Ok(out)
}

/// The outcome of a convergence probe (see [`epochs_to_converge`]).
#[derive(Clone, Copy, Debug)]
pub struct ConvergenceRun {
    /// Fine-tune epochs consumed.
    pub epochs: usize,
    /// Hold-out accuracy after the last chunk.
    pub accuracy: f64,
    /// True when `accuracy >= target` within the budget.
    pub converged: bool,
}

/// Measures how many fine-tune epochs a model needs to reach
/// `target_accuracy` on `eval` — the pretrain-vs-scratch benchmark
/// probe. Fine-tunes in chunks of the model's configured
/// `finetune_epochs` (set it to 1 for per-epoch resolution), evaluating
/// after each chunk, up to `max_epochs`.
///
/// Pass `pretrained: Some(..)` to start from a DGI snapshot, `None` for
/// a from-scratch baseline with the same `cfg`.
///
/// # Errors
///
/// Returns [`ZooError::Model`] / [`ZooError::Checkpoint`] on a
/// training, evaluation, or restore failure.
pub fn epochs_to_converge(
    cfg: &ModelConfig,
    pretrained: Option<&ModelCheckpoint>,
    train: &[PathSample],
    eval: &[PathSample],
    target_accuracy: f64,
    max_epochs: usize,
    threads: usize,
) -> Result<ConvergenceRun, ZooError> {
    let mut model = match pretrained {
        Some(snapshot) => GnnMls::from_checkpoint(snapshot.clone())?,
        None => GnnMls::new(cfg.clone()),
    };
    model.set_threads(threads);
    let chunk = model.config().finetune_epochs.max(1);
    let mut epochs = 0usize;
    let mut accuracy = 0.0f64;
    while epochs < max_epochs {
        model.finetune(train)?;
        epochs += chunk;
        accuracy = model.evaluate(eval)?.accuracy();
        if accuracy >= target_accuracy {
            return Ok(ConvergenceRun {
                epochs,
                accuracy,
                converged: true,
            });
        }
    }
    Ok(ConvergenceRun {
        epochs,
        accuracy,
        converged: false,
    })
}

//! End-to-end zoo tests: corpus determinism, cross-corpus training,
//! registry integrity, and the checkpoint-restore bit-identity
//! regression (including under divergence-retry RNG perturbation).

use std::fs;
use std::path::PathBuf;

use gnn_mls::checkpoint::{ModelVersion, ZooModelCheckpoint};
use gnn_mls::model::GnnMls;
use gnn_mls::ModelConfig;
use gnnmls_faults::{install, FaultPlan, FaultSite};
use gnnmls_zoo::{build_corpus, train_zoo, CorpusConfig, Registry, ZooError};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("zoo-{tag}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn fast_model_cfg() -> ModelConfig {
    ModelConfig {
        pretrain_epochs: 2,
        finetune_epochs: 8,
        ..ModelConfig::default()
    }
}

/// An unlabeled noc-only corpus is cheap enough to build twice; the
/// sweep must be bit-deterministic (same content hashes, same sample
/// counts) run to run.
#[test]
fn corpus_build_is_deterministic() {
    let mut cfg = CorpusConfig::tiny();
    cfg.families = vec!["noc".to_string()];
    cfg.paths_per_design = 20;
    cfg.labeled_per_design = 0;
    let a = build_corpus(&cfg).unwrap();
    let b = build_corpus(&cfg).unwrap();
    assert_eq!(a.designs.len(), 1);
    assert_eq!(a.all_hashes(), b.all_hashes());
    assert_eq!(a.len(), b.len());
    assert!(!a.is_empty());
    assert!(a.labeled("noc").is_empty());
    assert_eq!(a.families(), vec!["noc".to_string()]);
}

/// The tentpole pipeline: tiny two-family corpus → cross-corpus DGI
/// pretrain + per-family fine-tune → versioned publish → integrity
/// verify → restore. The restored model's inference must be
/// bit-identical to the in-memory model that saved it, at 1 and N
/// worker threads, and that must still hold for a model whose training
/// went through a divergence-retry (which consumes extra RNG draws) —
/// the model-zoo regression the issue calls out.
#[test]
fn zoo_trains_publishes_and_restores_bit_identically() {
    let corpus = build_corpus(&CorpusConfig::tiny()).unwrap();
    assert_eq!(corpus.designs.len(), 2, "two families × one seed/variant");
    assert_eq!(
        corpus.families(),
        vec!["maeri".to_string(), "noc".to_string()]
    );
    for d in &corpus.designs {
        assert!(!d.samples.is_empty(), "{} produced no paths", d.variant);
        assert!(!d.labeled.is_empty(), "{} produced no labels", d.variant);
        assert!(d.oracle.paths > 0);
    }
    assert_eq!(corpus.all_hashes().len(), 2);

    let models = train_zoo(&corpus, &fast_model_cfg(), 0).unwrap();
    assert_eq!(models.len(), 2, "one model per family");

    let dir = scratch_dir("publish");
    let registry = Registry::open(&dir);
    let probe: Vec<_> = corpus.designs[0].samples.iter().take(8).cloned().collect();

    for fam in &models {
        assert!(fam.metrics.total() > 0);
        assert_eq!(fam.corpus_hashes, corpus.all_hashes());

        let version = registry.next_version(&fam.family).unwrap();
        assert_eq!(version, ModelVersion::new(1, 0, 0));
        let entry = registry.publish(&fam.to_zoo_checkpoint(version)).unwrap();
        assert_eq!(entry.version, version);
        assert!(entry.parameter_count > 0);
        assert_eq!(entry.corpus_designs, 2);
        assert_eq!(
            registry.next_version(&fam.family).unwrap(),
            ModelVersion::new(1, 1, 0)
        );

        // Restore and compare inference bit for bit, serial vs parallel.
        let restored_cp = registry.load(&fam.family, None).unwrap();
        assert_eq!(restored_cp.family, fam.family);
        let mut restored = GnnMls::from_checkpoint(restored_cp.model).unwrap();
        let want = fam.model.predict_paths(&probe).unwrap();
        restored.set_threads(1);
        assert_eq!(restored.predict_paths(&probe).unwrap(), want);
        restored.set_threads(4);
        assert_eq!(restored.predict_paths(&probe).unwrap(), want);
    }

    let report = registry.verify().unwrap();
    assert_eq!(report.checked, 2);
    assert!(
        report.ok(),
        "fresh registry must verify: {:?}",
        report.problems
    );

    // Divergence-retry regression: force one NaN-gradient rollback
    // during training so the RNG stream diverges from the clean run,
    // then prove save → restore still reproduces the in-memory model
    // exactly at every thread count.
    let perturbed = {
        let _guard = install(&FaultPlan::single(FaultSite::NanGradient, 1));
        train_zoo(&corpus, &fast_model_cfg(), 0).unwrap()
    };
    let fam = &perturbed[0];
    let version = registry.next_version(&fam.family).unwrap();
    registry.publish(&fam.to_zoo_checkpoint(version)).unwrap();
    let restored_cp = registry.load(&fam.family, Some(version)).unwrap();
    let mut restored = GnnMls::from_checkpoint(restored_cp.model).unwrap();
    let want = fam.model.predict_paths(&probe).unwrap();
    restored.set_threads(1);
    assert_eq!(restored.predict_paths(&probe).unwrap(), want);
    restored.set_threads(4);
    assert_eq!(restored.predict_paths(&probe).unwrap(), want);
}

/// Registry integrity: damaged bytes, swapped files, and a
/// wrong-schema manifest are all refused with typed errors, and
/// `verify` pinpoints the broken entry without failing the healthy one.
#[test]
fn registry_refuses_damage_and_mismatch() {
    let dir = scratch_dir("integrity");
    let registry = Registry::open(&dir);

    // Empty registry: readable, nothing published.
    assert!(registry.manifest().unwrap().entries.is_empty());
    assert!(registry.latest("maeri").unwrap().is_none());
    assert!(matches!(
        registry.load("maeri", None),
        Err(ZooError::Registry(_))
    ));

    let cp = |family: &str, version: ModelVersion| ZooModelCheckpoint {
        family: family.to_string(),
        version,
        corpus_hashes: vec![1, 2, 3],
        pretrain_epochs: 2,
        finetune_epochs: 8,
        model: GnnMls::new(ModelConfig::default()).to_checkpoint(),
    };
    let v1 = ModelVersion::new(1, 0, 0);
    let v11 = ModelVersion::new(1, 1, 0);
    registry.publish(&cp("maeri", v1)).unwrap();
    registry.publish(&cp("maeri", v11)).unwrap();
    registry.publish(&cp("noc", v1)).unwrap();

    assert_eq!(registry.latest("maeri").unwrap().unwrap().version, v11);
    assert_eq!(registry.load("maeri", Some(v1)).unwrap().version, v1);
    assert!(registry.verify().unwrap().ok());

    // Flip one byte mid-file: load refuses (manifest hash), verify
    // reports exactly one problem and still checks the other entries.
    let victim = registry.entry_path(&registry.entry("maeri", Some(v11)).unwrap());
    let mut bytes = fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    fs::write(&victim, &bytes).unwrap();
    assert!(matches!(
        registry.load("maeri", Some(v11)),
        Err(ZooError::Registry(_))
    ));
    let report = registry.verify().unwrap();
    assert_eq!(report.checked, 3);
    assert_eq!(report.problems.len(), 1, "{:?}", report.problems);

    // Swap in a different family's valid checkpoint: the manifest hash
    // no longer matches, so the swap cannot be served.
    let noc_path = registry.entry_path(&registry.entry("noc", None).unwrap());
    fs::copy(&noc_path, &victim).unwrap();
    assert!(matches!(
        registry.load("maeri", Some(v11)),
        Err(ZooError::Registry(_))
    ));

    // A future-schema manifest is refused, not misread.
    let manifest_path = dir.join(gnnmls_zoo::MANIFEST_FILE);
    fs::write(&manifest_path, "{\"schema_version\": 99, \"entries\": []}").unwrap();
    assert!(matches!(registry.manifest(), Err(ZooError::Registry(_))));
}

//! End-to-end zoo tests: corpus determinism, cross-corpus training,
//! registry integrity, and the checkpoint-restore bit-identity
//! regression (including under divergence-retry RNG perturbation).

use std::fs;
use std::path::PathBuf;

use gnn_mls::checkpoint::{ModelVersion, ZooModelCheckpoint};
use gnn_mls::model::GnnMls;
use gnn_mls::ModelConfig;
use gnnmls_faults::{install, FaultPlan, FaultSite};
use gnnmls_zoo::{build_corpus, train_zoo, CorpusConfig, Registry, ZooError};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("zoo-{tag}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn fast_model_cfg() -> ModelConfig {
    ModelConfig {
        pretrain_epochs: 2,
        finetune_epochs: 8,
        ..ModelConfig::default()
    }
}

/// An unlabeled noc-only corpus is cheap enough to build twice; the
/// sweep must be bit-deterministic (same content hashes, same sample
/// counts) run to run.
#[test]
fn corpus_build_is_deterministic() {
    let mut cfg = CorpusConfig::tiny();
    cfg.families = vec!["noc".to_string()];
    cfg.paths_per_design = 20;
    cfg.labeled_per_design = 0;
    let a = build_corpus(&cfg).unwrap();
    let b = build_corpus(&cfg).unwrap();
    assert_eq!(a.designs.len(), 1);
    assert_eq!(a.all_hashes(), b.all_hashes());
    assert_eq!(a.len(), b.len());
    assert!(!a.is_empty());
    assert!(a.labeled("noc").is_empty());
    assert_eq!(a.families(), vec!["noc".to_string()]);
}

/// The tentpole pipeline: tiny two-family corpus → cross-corpus DGI
/// pretrain + per-family fine-tune → versioned publish → integrity
/// verify → restore. The restored model's inference must be
/// bit-identical to the in-memory model that saved it, at 1 and N
/// worker threads, and that must still hold for a model whose training
/// went through a divergence-retry (which consumes extra RNG draws) —
/// the model-zoo regression the issue calls out.
#[test]
fn zoo_trains_publishes_and_restores_bit_identically() {
    let corpus = build_corpus(&CorpusConfig::tiny()).unwrap();
    assert_eq!(corpus.designs.len(), 2, "two families × one seed/variant");
    assert_eq!(
        corpus.families(),
        vec!["maeri".to_string(), "noc".to_string()]
    );
    for d in &corpus.designs {
        assert!(!d.samples.is_empty(), "{} produced no paths", d.variant);
        assert!(!d.labeled.is_empty(), "{} produced no labels", d.variant);
        assert!(d.oracle.paths > 0);
    }
    assert_eq!(corpus.all_hashes().len(), 2);

    let models = train_zoo(&corpus, &fast_model_cfg(), 0).unwrap();
    assert_eq!(models.len(), 2, "one model per family");

    let dir = scratch_dir("publish");
    let registry = Registry::open(&dir);
    let probe: Vec<_> = corpus.designs[0].samples.iter().take(8).cloned().collect();

    for fam in &models {
        assert!(fam.metrics.total() > 0);
        assert_eq!(fam.corpus_hashes, corpus.all_hashes());

        let version = registry.next_version(&fam.family).unwrap();
        assert_eq!(version, ModelVersion::new(1, 0, 0));
        let entry = registry.publish(&fam.to_zoo_checkpoint(version)).unwrap();
        assert_eq!(entry.version, version);
        assert!(entry.parameter_count > 0);
        assert_eq!(entry.corpus_designs, 2);
        assert_eq!(
            registry.next_version(&fam.family).unwrap(),
            ModelVersion::new(1, 1, 0)
        );

        // Restore and compare inference bit for bit, serial vs parallel.
        let restored_cp = registry.load(&fam.family, None).unwrap();
        assert_eq!(restored_cp.family, fam.family);
        let mut restored = GnnMls::from_checkpoint(restored_cp.model).unwrap();
        let want = fam.model.predict_paths(&probe).unwrap();
        restored.set_threads(1);
        assert_eq!(restored.predict_paths(&probe).unwrap(), want);
        restored.set_threads(4);
        assert_eq!(restored.predict_paths(&probe).unwrap(), want);
    }

    let report = registry.verify().unwrap();
    assert_eq!(report.checked, 2);
    assert!(
        report.ok(),
        "fresh registry must verify: {:?}",
        report.problems
    );

    // Divergence-retry regression: force one NaN-gradient rollback
    // during training so the RNG stream diverges from the clean run,
    // then prove save → restore still reproduces the in-memory model
    // exactly at every thread count.
    let perturbed = {
        let _guard = install(&FaultPlan::single(FaultSite::NanGradient, 1));
        train_zoo(&corpus, &fast_model_cfg(), 0).unwrap()
    };
    let fam = &perturbed[0];
    let version = registry.next_version(&fam.family).unwrap();
    registry.publish(&fam.to_zoo_checkpoint(version)).unwrap();
    let restored_cp = registry.load(&fam.family, Some(version)).unwrap();
    let mut restored = GnnMls::from_checkpoint(restored_cp.model).unwrap();
    let want = fam.model.predict_paths(&probe).unwrap();
    restored.set_threads(1);
    assert_eq!(restored.predict_paths(&probe).unwrap(), want);
    restored.set_threads(4);
    assert_eq!(restored.predict_paths(&probe).unwrap(), want);
}

/// Registry integrity: damaged bytes, swapped files, and a
/// wrong-schema manifest are all refused with typed errors, and
/// `verify` pinpoints the broken entry without failing the healthy one.
#[test]
fn registry_refuses_damage_and_mismatch() {
    let dir = scratch_dir("integrity");
    let registry = Registry::open(&dir);

    // Empty registry: readable, nothing published.
    assert!(registry.manifest().unwrap().entries.is_empty());
    assert!(registry.latest("maeri").unwrap().is_none());
    assert!(matches!(
        registry.load("maeri", None),
        Err(ZooError::Registry(_))
    ));

    let cp = |family: &str, version: ModelVersion| ZooModelCheckpoint {
        family: family.to_string(),
        version,
        corpus_hashes: vec![1, 2, 3],
        pretrain_epochs: 2,
        finetune_epochs: 8,
        model: GnnMls::new(ModelConfig::default()).to_checkpoint(),
    };
    let v1 = ModelVersion::new(1, 0, 0);
    let v11 = ModelVersion::new(1, 1, 0);
    registry.publish(&cp("maeri", v1)).unwrap();
    registry.publish(&cp("maeri", v11)).unwrap();
    registry.publish(&cp("noc", v1)).unwrap();

    assert_eq!(registry.latest("maeri").unwrap().unwrap().version, v11);
    assert_eq!(registry.load("maeri", Some(v1)).unwrap().version, v1);
    assert!(registry.verify().unwrap().ok());

    // Flip one byte mid-file: load refuses (manifest hash), verify
    // reports exactly one problem and still checks the other entries.
    let victim = registry.entry_path(&registry.entry("maeri", Some(v11)).unwrap());
    let mut bytes = fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    fs::write(&victim, &bytes).unwrap();
    assert!(matches!(
        registry.load("maeri", Some(v11)),
        Err(ZooError::Registry(_))
    ));
    let report = registry.verify().unwrap();
    assert_eq!(report.checked, 3);
    assert_eq!(report.problems.len(), 1, "{:?}", report.problems);

    // Swap in a different family's valid checkpoint: the manifest hash
    // no longer matches, so the swap cannot be served.
    let noc_path = registry.entry_path(&registry.entry("noc", None).unwrap());
    fs::copy(&noc_path, &victim).unwrap();
    assert!(matches!(
        registry.load("maeri", Some(v11)),
        Err(ZooError::Registry(_))
    ));

    // A future-schema manifest is refused, not misread.
    let manifest_path = dir.join(gnnmls_zoo::MANIFEST_FILE);
    fs::write(&manifest_path, "{\"schema_version\": 99, \"entries\": []}").unwrap();
    assert!(matches!(registry.manifest(), Err(ZooError::Registry(_))));
}

fn cheap_cp(family: &str, version: ModelVersion) -> ZooModelCheckpoint {
    ZooModelCheckpoint {
        family: family.to_string(),
        version,
        corpus_hashes: vec![1, 2, 3],
        pretrain_epochs: 2,
        finetune_epochs: 8,
        model: GnnMls::new(ModelConfig::default()).to_checkpoint(),
    }
}

/// Seeded-damage fsck: one registry with all four damage classes at
/// once. `scrub` must detect each, repair what the rules allow (delete
/// the orphan tmp, quarantine + roll back the torn and hash-mismatched
/// entries), leave the future-version file intact, and end consistent.
#[test]
fn scrub_detects_and_repairs_all_damage_classes() {
    use gnn_mls::store::{ArtifactClass, RepairAction};

    let dir = scratch_dir("fsck");
    let registry = Registry::open_unscrubbed(&dir);
    let v1 = ModelVersion::new(1, 0, 0);
    let v11 = ModelVersion::new(1, 1, 0);
    registry.publish(&cheap_cp("maeri", v1)).unwrap();
    registry.publish(&cheap_cp("maeri", v11)).unwrap();
    registry.publish(&cheap_cp("noc", v1)).unwrap();

    // Class 1 — orphan-tmp: residue of a crashed write.
    fs::write(dir.join("junk.ckpt.tmp"), b"partial garbage").unwrap();
    // Class 2 — torn: truncate the latest maeri checkpoint in place.
    let torn = registry.entry_path(&registry.entry("maeri", Some(v11)).unwrap());
    let bytes = fs::read(&torn).unwrap();
    fs::write(&torn, &bytes[..bytes.len() / 2]).unwrap();
    // Class 3 — hash-mismatch: flip one payload byte of noc v1.
    let flipped = registry.entry_path(&registry.entry("noc", Some(v1)).unwrap());
    let mut bytes = fs::read(&flipped).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    fs::write(&flipped, &bytes).unwrap();
    // Class 4 — unknown-version: a well-formed envelope from the future.
    fs::write(
        dir.join("future.ckpt"),
        "GNNMLS-CKPT v1 model-zoo 9 0123456789abcdef 2 future-field\n{}",
    )
    .unwrap();

    let report = registry.scrub().unwrap();
    let class_action = |c: ArtifactClass| {
        report
            .findings
            .iter()
            .find(|f| f.class == c)
            .map(|f| f.action)
    };
    assert_eq!(
        class_action(ArtifactClass::OrphanTmp),
        Some(RepairAction::DeletedTmp)
    );
    assert_eq!(
        class_action(ArtifactClass::Torn),
        Some(RepairAction::RolledBack)
    );
    assert_eq!(
        class_action(ArtifactClass::HashMismatch),
        Some(RepairAction::RolledBack)
    );
    assert_eq!(
        class_action(ArtifactClass::UnknownVersion),
        Some(RepairAction::None)
    );
    assert!(report.consistent(), "{:?}", report.findings);

    // Repairs landed: tmp gone, damage quarantined, future file intact.
    assert!(!dir.join("junk.ckpt.tmp").exists());
    assert!(!torn.exists());
    assert!(gnn_mls::store::damaged_path(&torn).exists());
    assert!(!flipped.exists());
    assert!(gnn_mls::store::damaged_path(&flipped).exists());
    assert!(dir.join("future.ckpt").exists());

    // Rollback semantics: maeri fell back to v1.0.0, noc to nothing.
    assert_eq!(registry.latest("maeri").unwrap().unwrap().version, v1);
    assert!(registry.latest("noc").unwrap().is_none());
    assert!(registry.load("maeri", None).is_ok());
    assert!(registry.verify().unwrap().ok());

    // Idempotent: a second pass finds only the (intact) future file.
    let again = registry.scrub().unwrap();
    assert!(
        again
            .findings
            .iter()
            .all(|f| f.class == ArtifactClass::UnknownVersion),
        "{:?}",
        again.findings
    );
}

/// A publish that crashes between fsync(tmp) and the rename leaves the
/// complete new bytes orphaned. Scrub rolls *forward*: the rename is
/// finished and the checkpoint adopted into the manifest.
#[test]
fn scrub_rolls_forward_a_rename_crashed_publish() {
    let dir = scratch_dir("rollforward");
    let registry = Registry::open_unscrubbed(&dir);
    let v1 = ModelVersion::new(1, 0, 0);
    {
        let _guard = install(&FaultPlan::single(FaultSite::RenameCrash, 1));
        assert!(matches!(
            registry.publish(&cheap_cp("maeri", v1)),
            Err(ZooError::Checkpoint(_))
        ));
    }
    // The crash left a complete orphan tmp and no manifest entry.
    assert!(dir.join("maeri-v1.0.0.ckpt.tmp").exists());
    assert!(registry.latest("maeri").unwrap().is_none());

    let report = registry.scrub().unwrap();
    assert!(report.consistent(), "{:?}", report.findings);
    assert!(report.repaired >= 1);
    assert!(!dir.join("maeri-v1.0.0.ckpt.tmp").exists());
    assert!(dir.join("maeri-v1.0.0.ckpt").exists());
    assert_eq!(registry.latest("maeri").unwrap().unwrap().version, v1);
    let cp = registry.load("maeri", Some(v1)).unwrap();
    assert_eq!(cp.corpus_hashes, vec![1, 2, 3]);
}

/// A publish that crashed between the data write and the index write
/// (valid checkpoint on disk, manifest never updated) is adopted on
/// scrub — simulated by rolling the manifest text back after a
/// successful publish.
#[test]
fn scrub_adopts_an_unindexed_checkpoint() {
    let dir = scratch_dir("adopt");
    let registry = Registry::open_unscrubbed(&dir);
    let v1 = ModelVersion::new(1, 0, 0);
    let v11 = ModelVersion::new(1, 1, 0);
    registry.publish(&cheap_cp("maeri", v1)).unwrap();
    let manifest_before = fs::read_to_string(dir.join(gnnmls_zoo::MANIFEST_FILE)).unwrap();
    registry.publish(&cheap_cp("maeri", v11)).unwrap();
    fs::write(dir.join(gnnmls_zoo::MANIFEST_FILE), manifest_before).unwrap();
    assert_eq!(registry.latest("maeri").unwrap().unwrap().version, v1);

    let report = registry.scrub().unwrap();
    assert!(report.consistent(), "{:?}", report.findings);
    let entry = registry.latest("maeri").unwrap().unwrap();
    assert_eq!(entry.version, v11, "adopted entry must win latest()");
    assert!(entry.parameter_count > 0);
    assert!(registry.verify().unwrap().ok());
}

/// `Registry::open` runs the scrub automatically: opening a registry
/// whose manifest was destroyed and whose newest checkpoint was torn
/// degrades to the last-good version instead of failing reads.
#[test]
fn open_scrubs_and_degrades_to_last_good() {
    let dir = scratch_dir("open-scrub");
    let v1 = ModelVersion::new(1, 0, 0);
    let v11 = ModelVersion::new(1, 1, 0);
    {
        let seed = Registry::open_unscrubbed(&dir);
        seed.publish(&cheap_cp("maeri", v1)).unwrap();
        seed.publish(&cheap_cp("maeri", v11)).unwrap();
        // Tear the newest checkpoint and the manifest.
        let path = seed.entry_path(&seed.entry("maeri", Some(v11)).unwrap());
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        let manifest = fs::read_to_string(dir.join(gnnmls_zoo::MANIFEST_FILE)).unwrap();
        fs::write(dir.join(gnnmls_zoo::MANIFEST_FILE), &manifest[..20]).unwrap();
    }
    let registry = Registry::open(&dir);
    let scrub = registry.last_scrub().expect("open must have scrubbed");
    assert!(scrub.consistent(), "{:?}", scrub.findings);
    assert!(scrub.repaired >= 2, "{:?}", scrub.findings);
    // The manifest was rebuilt from the surviving good checkpoint.
    assert_eq!(registry.latest("maeri").unwrap().unwrap().version, v1);
    assert!(registry.load("maeri", None).is_ok());
    assert!(registry.verify().unwrap().ok());
}

/// Forward compatibility: a checkpoint written by a future format
/// version is a typed refusal from `Registry::load` — and fsck leaves
/// both the file and its manifest entry in place for the newer build.
#[test]
fn future_version_checkpoint_is_a_typed_error_from_load() {
    use gnn_mls::checkpoint::{fnv1a64, CheckpointError};

    let dir = scratch_dir("future-load");
    let registry = Registry::open_unscrubbed(&dir);
    let v1 = ModelVersion::new(1, 0, 0);
    registry.publish(&cheap_cp("maeri", v1)).unwrap();

    // Replace the published file with a future-version envelope and
    // re-point the manifest hash at the new bytes, so the integrity
    // check passes and the version check is what fires.
    let path = registry.entry_path(&registry.entry("maeri", Some(v1)).unwrap());
    let payload = "{}";
    let future = format!(
        "GNNMLS-CKPT v1 model-zoo 9 {:016x} {} future-field\n{payload}",
        fnv1a64(payload.as_bytes()),
        payload.len()
    );
    fs::write(&path, &future).unwrap();
    let mut manifest = registry.manifest().unwrap();
    for e in &mut manifest.entries {
        e.file_hash = fnv1a64(future.as_bytes());
    }
    gnn_mls::checkpoint::write_json_file(&dir.join(gnnmls_zoo::MANIFEST_FILE), &manifest).unwrap();

    match registry.load("maeri", Some(v1)) {
        Err(ZooError::Checkpoint(CheckpointError::Version { found, supported })) => {
            assert_eq!(found, 9);
            assert!(supported >= 1);
        }
        other => panic!("expected a typed version error, got {other:?}"),
    }
    // fsck classifies, reports, and leaves it for the newer build.
    let report = registry.scrub().unwrap();
    assert!(report
        .findings
        .iter()
        .any(|f| f.class == gnn_mls::store::ArtifactClass::UnknownVersion));
    assert!(path.exists());
    assert!(registry.latest("maeri").unwrap().is_some());
}

//! Cortex-A7 dual-core scenario: both integration styles on the CPU
//! benchmark — heterogeneous (16 nm + 28 nm, Table IV right) and
//! homogeneous (28 nm + 28 nm, Table V right), where the paper shows the
//! indiscriminate SOTA *regressing* TNS while GNN-MLS improves it.
//!
//! ```sh
//! cargo run --release --example a7_dualcore
//! ```

use gnn_mls::flow::{run_flow, FlowConfig, FlowPolicy};
use gnnmls_netlist::generators::{generate_a7, A7Config};
use gnnmls_netlist::stats::NetlistStats;
use gnnmls_netlist::tech::TechConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (label, tech) in [
        (
            "heterogeneous 16+28 nm",
            TechConfig::heterogeneous_16_28(8, 8),
        ),
        ("homogeneous 28+28 nm", TechConfig::homogeneous_28_28(8, 8)),
    ] {
        let design = generate_a7(&A7Config::dual_core(), &tech)?;
        println!("\nA7 dual-core, {label}");
        println!("{}", NetlistStats::compute(&design.netlist));
        let cfg = FlowConfig::new(2000.0);
        let mut tns = Vec::new();
        for policy in [FlowPolicy::NoMls, FlowPolicy::Sota, FlowPolicy::GnnMls] {
            let r = run_flow(&design, &cfg, policy)?;
            println!(
                "  {:8} WNS {:8.1} ps | TNS {:8.2} ns | vio {:5} | MLS nets {:5}",
                r.policy, r.wns_ps, r.tns_ns, r.violating_paths, r.mls_nets
            );
            tns.push(r.tns_ns);
        }
        if tns[1] < tns[0] {
            println!("  -> indiscriminate SOTA sharing regressed TNS (the paper's A7 finding)");
        }
        if tns[2] > tns[0] && tns[2] > tns[1] {
            println!("  -> GNN-MLS improves on both baselines");
        }
    }
    Ok(())
}

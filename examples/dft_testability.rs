//! DFT scenario: the testability problem MLS creates in hybrid-bonded
//! 3D ICs and the two insertion strategies that solve it (Section III-D,
//! Table III, Figure 6).
//!
//! Shows, on one design: coverage without MLS, the coverage *hole* MLS
//! opens at die-level test, and how the net-based (MUX) and wire-based
//! (shadow scan FF) DFT strategies restore it at different cost points.
//!
//! ```sh
//! cargo run --release --example dft_testability
//! ```

use gnn_mls::flow::{prepare, run_flow, FlowConfig, FlowPolicy};
use gnnmls_dft::{analyze_coverage, DftMode, ScanChain};
use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
use gnnmls_netlist::tech::TechConfig;
use gnnmls_route::{route_design, MlsPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = TechConfig::heterogeneous_16_28(6, 6);
    let design = generate_maeri(&MaeriConfig::pe16_bw4(), &tech)?;
    let cfg = FlowConfig::new(2500.0);

    // Route once with aggressive sharing so there are MLS opens to study.
    let (netlist, placement) = prepare(&design, &cfg)?;
    let (routes, _) = route_design(
        &netlist,
        &placement,
        &tech,
        MlsPolicy::sota(),
        cfg.route.clone(),
    )?;
    println!(
        "routed with SOTA sharing: {} MLS nets crossing the bond",
        routes.summary.mls_net_count
    );

    let chain = ScanChain::build(&netlist, &placement, 5.0);
    println!(
        "full scan: {} elements, {:.0} um stitched wirelength",
        chain.len(),
        chain.wirelength_um
    );

    println!("\ndie-level stuck-at coverage:");
    for mode in [DftMode::None, DftMode::NetBased, DftMode::WireBased] {
        let rep = analyze_coverage(&netlist, &routes, mode);
        println!(
            "  {:10} {:8} faults, {:8} detected, coverage {:6.2}% (opens {}, pads {})",
            format!("{mode:?}"),
            rep.total_faults,
            rep.detected_faults,
            rep.coverage_pct(),
            rep.undetected_open,
            rep.undetected_pad
        );
    }

    // End-to-end testable designs (timing included), as in Table VI.
    println!("\ntestable-design flows (wire-based MLS DFT):");
    let dft_cfg = cfg.clone().with_dft(DftMode::WireBased);
    for policy in [FlowPolicy::NoMls, FlowPolicy::GnnMls] {
        let r = run_flow(&design, &dft_cfg, policy)?;
        println!(
            "  {:8} coverage {:.2}% | WNS {:7.1} ps | {} DFT cells added",
            r.policy,
            r.test_coverage_pct.unwrap_or(0.0),
            r.wns_ps,
            r.dft_cells
        );
    }
    Ok(())
}

//! MAERI accelerator scenario: the paper's heterogeneous headline
//! experiment — a 128-PE MAERI with 16 nm logic under 28 nm memory,
//! compared across the three MLS policies and inspected at the net level
//! (the Table I motivation).
//!
//! ```sh
//! cargo run --release --example maeri_accelerator
//! ```

use gnn_mls::flow::{prepare, run_flow, FlowConfig, FlowPolicy};
use gnn_mls::oracle::{net_mls_impact, NetImpact};
use gnn_mls::paths::extract_path_samples;
use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
use gnnmls_netlist::stats::NetlistStats;
use gnnmls_netlist::tech::TechConfig;
use gnnmls_route::{MlsPolicy, Router};
use gnnmls_sta::{analyze, StaConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = TechConfig::heterogeneous_16_28(6, 6);
    let design = generate_maeri(&MaeriConfig::pe128_bw32(), &tech)?;
    println!("{}", NetlistStats::compute(&design.netlist));

    let cfg = FlowConfig::new(2500.0);

    // --- Net-level motivation: MLS helps some nets and hurts others.
    let (netlist, placement) = prepare(&design, &cfg)?;
    let mut router = Router::new(
        &netlist,
        &placement,
        &tech,
        MlsPolicy::Disabled,
        cfg.route.clone(),
    )?;
    router.route_all()?;
    let routes = router.db()?;
    let timing = analyze(&netlist, &routes, StaConfig::from_freq_mhz(2500.0))?;
    println!(
        "baseline: WNS {:.1} ps, {} violating endpoints",
        timing.wns_ps(),
        timing.violating_endpoints()
    );
    let samples = extract_path_samples(&netlist, &placement, &tech, &timing, 50);
    let grid = router.grid().clone();
    let impacts = net_mls_impact(&samples, &netlist, &router, &routes, &grid)?;
    if let (Some(best), Some(worst)) = (impacts.first(), impacts.last()) {
        println!(
            "single-net MLS: best {} {:+.1} ps ({} -> {}), worst {} {:+.1} ps",
            best.name,
            best.gain_ps(),
            NetImpact::metals_str(best.metals_before),
            NetImpact::metals_str(best.metals_after),
            worst.name,
            worst.gain_ps(),
        );
    }
    drop(router);

    // --- The three policies end to end.
    println!("\npolicy comparison @ 2.5 GHz target:");
    for policy in [FlowPolicy::NoMls, FlowPolicy::Sota, FlowPolicy::GnnMls] {
        let r = run_flow(&design, &cfg, policy)?;
        println!(
            "  {:8} WNS {:8.1} ps | TNS {:8.2} ns | vio {:5} | MLS nets {:5} | eff {:.0} MHz",
            r.policy, r.wns_ps, r.tns_ns, r.violating_paths, r.mls_nets, r.eff_freq_mhz
        );
    }
    Ok(())
}

//! Mixed-node power delivery scenario (Section III-E, Figure 7/9):
//! 0.81 V logic under 0.9 V memory, level shifters on every 3D signal,
//! and a stripe PDN sized so IR-drop stays within 10 % of the lowest
//! rail — while leaving top-metal tracks for MLS signal routing.
//!
//! ```sh
//! cargo run --release --example pdn_design
//! ```

use gnn_mls::flow::{prepare, FlowConfig};
use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
use gnnmls_netlist::tech::TechConfig;
use gnnmls_netlist::Tier;
use gnnmls_pdn::domains::PowerDomains;
use gnnmls_pdn::ir::{currents_from_power, size_for_budget, IrReport};
use gnnmls_pdn::{PdnGrid, PdnSpec, PowerConfig, PowerReport};
use gnnmls_route::{route_design, MlsPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = TechConfig::heterogeneous_16_28(6, 6);
    let design = generate_maeri(&MaeriConfig::new(64, 8), &tech)?;
    let cfg = FlowConfig::new(2500.0);

    let domains = PowerDomains::from_tech(&tech);
    println!(
        "power domains: logic {} V, memory {} V (level shifters needed: {})",
        domains.logic_vdd,
        domains.memory_vdd,
        domains.needs_level_shifters()
    );

    let (netlist, placement) = prepare(&design, &cfg)?;
    let (routes, _) = route_design(
        &netlist,
        &placement,
        &tech,
        MlsPolicy::Disabled,
        cfg.route.clone(),
    )?;
    let power = PowerReport::compute(&netlist, &routes, &tech, &PowerConfig::at_freq_mhz(2500.0));
    println!(
        "power: {:.1} mW total ({:.1} dynamic + {:.1} leakage); logic die {:.1}, memory die {:.1}",
        power.total_mw,
        power.dynamic_mw,
        power.leakage_mw,
        power.logic_tier_mw,
        power.memory_tier_mw
    );

    // Explore the width/IR trade at the paper's 7 µm pitch.
    println!("\nIR-drop vs stripe width (logic die, pitch 7 um):");
    for width in [0.5, 1.0, 2.0, 4.0] {
        let spec = PdnSpec {
            width_um: width,
            pitch_um: 7.0,
        };
        let mesh = PdnGrid::build(placement.floorplan(), &tech, Tier::Logic, spec);
        let cur = currents_from_power(&mesh, &netlist, &placement, &power, domains.logic_vdd);
        let rep = IrReport::solve(&mesh, &cur, domains.min_vdd());
        println!(
            "  W={width:.1} um  U={:4.0}%  max drop {:6.2} mV ({:.2}% of {:.2} V)",
            spec.utilization() * 100.0,
            rep.max_drop_mv,
            rep.pct_of_vdd,
            domains.min_vdd()
        );
    }

    // Automatic sizing to the paper's 10% budget, per die.
    println!("\nauto-sized to the 10% IR budget:");
    for tier in Tier::BOTH {
        let (spec, rep) = size_for_budget(
            placement.floorplan(),
            &tech,
            tier,
            &netlist,
            &placement,
            &power,
            domains.min_vdd(),
            10.0,
            7.0,
        );
        println!(
            "  {tier}: W/P/U = {:.1}um / {:.0}um / {:.0}%  -> IR {:.2}%",
            spec.width_um,
            spec.pitch_um,
            spec.utilization() * 100.0,
            rep.pct_of_vdd
        );
    }
    Ok(())
}

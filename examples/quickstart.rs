//! Quickstart: run the three MLS policies on a small MAERI accelerator
//! and compare timing.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gnn_mls::flow::{run_flow, FlowConfig, FlowPolicy};
use gnn_mls::FlowReport;
use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
use gnnmls_netlist::tech::TechConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A heterogeneous stack: 16 nm logic die under a 28 nm memory die,
    // 6 + 6 metal layers, face-to-face bonded.
    let tech = TechConfig::heterogeneous_16_28(6, 6);
    let design = generate_maeri(&MaeriConfig::new(64, 8).with_seed(1), &tech)?;
    println!(
        "design {}: {} cells, {} nets",
        design.netlist.name(),
        design.netlist.cell_count(),
        design.netlist.net_count()
    );

    let mut cfg = FlowConfig::new(2500.0);
    cfg.train_paths = 120;
    cfg.inference_paths = 600;

    let mut reports: Vec<FlowReport> = Vec::new();
    for policy in [FlowPolicy::NoMls, FlowPolicy::Sota, FlowPolicy::GnnMls] {
        let r = run_flow(&design, &cfg, policy)?;
        println!("\n{r}");
        reports.push(r);
    }

    println!("\nsummary (WNS ps / TNS ns / #vio / #MLS):");
    for r in &reports {
        println!(
            "  {:8} {:8.1} {:9.2} {:6} {:6}",
            r.policy, r.wns_ps, r.tns_ns, r.violating_paths, r.mls_nets
        );
    }
    Ok(())
}

//! Integration of the DFT and PDN subsystems with the full flow:
//! coverage holes open and close as the paper describes, the testable
//! flow keeps its timing benefits, and power delivery closes its budget.

use gnn_mls::flow::{prepare, run_flow, FlowConfig, FlowPolicy};
use gnnmls_dft::{analyze_coverage, DftMode};
use gnnmls_netlist::generators::{generate_maeri, GeneratedDesign, MaeriConfig};
use gnnmls_netlist::tech::TechConfig;
use gnnmls_route::{route_design, MlsPolicy};

fn design() -> GeneratedDesign {
    let tech = TechConfig::heterogeneous_16_28(6, 6);
    generate_maeri(&MaeriConfig::pe16_bw4(), &tech).expect("generator succeeds")
}

#[test]
fn mls_opens_cut_coverage_and_dft_modes_restore_it_in_order() {
    let d = design();
    let c = FlowConfig::fast_test(2500.0);
    let (netlist, placement) = prepare(&d, &c).unwrap();
    let (routes, _) = route_design(
        &netlist,
        &placement,
        &d.tech,
        MlsPolicy::sota(),
        c.route.clone(),
    )
    .unwrap();
    assert!(routes.summary.mls_net_count > 0);

    let none = analyze_coverage(&netlist, &routes, DftMode::None);
    let net = analyze_coverage(&netlist, &routes, DftMode::NetBased);
    let wire = analyze_coverage(&netlist, &routes, DftMode::WireBased);

    // The paper's ordering: no DFT < net-based < wire-based.
    assert!(none.detected_faults < net.detected_faults);
    assert!(net.detected_faults < wire.detected_faults);
    assert!(none.undetected_open > 0, "opens must cost faults");
    assert_eq!(net.undetected_open, 0);
    assert_eq!(wire.undetected_pad, 0, "wire-based covers both pad faults");
    assert!(
        net.undetected_pad > 0,
        "net-based leaves one pad fault each"
    );
    // Without DFT the opens are catastrophic — Figure 3's point is that
    // the die becomes (nearly) untestable: every cone behind an open is
    // dark, so coverage collapses far below the DFT'd figures.
    assert!(none.coverage_pct() < net.coverage_pct() - 10.0);
    assert!(none.coverage_pct() > 1.0);
    assert!(wire.coverage_pct() < 100.0 && wire.coverage_pct() > 90.0);
}

#[test]
fn testable_flow_keeps_gnn_mls_timing_advantage() {
    let d = design();
    let mut c = FlowConfig::fast_test(2500.0);
    c.train_paths = 60;
    c.inference_paths = 300;
    let c = c.with_dft(DftMode::WireBased);
    let no_mls = run_flow(&d, &c, FlowPolicy::NoMls).unwrap();
    let ours = run_flow(&d, &c, FlowPolicy::GnnMls).unwrap();

    let cov_no = no_mls.test_coverage_pct.expect("coverage reported");
    let cov_ours = ours.test_coverage_pct.expect("coverage reported");
    assert!(cov_no > 90.0 && cov_ours > 90.0, "{cov_no} / {cov_ours}");
    // MLS + DFT must not crater coverage relative to No-MLS.
    assert!((cov_ours - cov_no).abs() < 2.0);
    // The No-MLS design has no MLS opens, so no MLS DFT cells.
    assert_eq!(no_mls.dft_cells, 0);
    // Timing must stay in the same band as the No-MLS testable design;
    // at this scaled-down test size the model sees too few paths to
    // guarantee a strict win (the full-scale Table VI binaries check the
    // real shape), so allow a small tolerance.
    assert!(
        ours.tns_ns >= no_mls.tns_ns - 0.08,
        "ours {:.3} vs no-mls {:.3}",
        ours.tns_ns,
        no_mls.tns_ns
    );
}

#[test]
fn dft_eco_grows_the_netlist_only_when_mls_exists() {
    let d = design();
    let c = FlowConfig::fast_test(2500.0).with_dft(DftMode::NetBased);
    // Under the No-MLS policy nothing crosses, so the ECO is a no-op.
    let r = run_flow(&d, &c, FlowPolicy::NoMls).unwrap();
    assert_eq!(r.dft_cells, 0);
    assert_eq!(r.mls_nets, 0);
    // Coverage is still reported (the design is simply open-free).
    assert!(r.test_coverage_pct.unwrap_or(0.0) > 90.0);
}

#[test]
fn power_splits_and_ir_scale_with_frequency() {
    let d = design();
    let mut slow_cfg = FlowConfig::fast_test(1000.0);
    slow_cfg.analyze_pdn = true;
    let mut fast_cfg = FlowConfig::fast_test(3000.0);
    fast_cfg.analyze_pdn = true;
    let slow = run_flow(&d, &slow_cfg, FlowPolicy::NoMls).unwrap();
    let fast = run_flow(&d, &fast_cfg, FlowPolicy::NoMls).unwrap();
    assert!(fast.power_mw > slow.power_mw);
    // Both configurations close the same 10% budget by sizing stripes.
    assert!(slow.ir_drop_pct.unwrap() <= 10.0);
    assert!(fast.ir_drop_pct.unwrap() <= 10.0);
}

//! End-to-end flow integration: all three policies on a small design,
//! checking cross-crate consistency of the resulting reports.

use gnn_mls::flow::{run_flow, FlowConfig, FlowPolicy};
use gnn_mls::FlowReport;
use gnnmls_netlist::generators::{generate_maeri, GeneratedDesign, MaeriConfig};
use gnnmls_netlist::tech::TechConfig;

fn design() -> GeneratedDesign {
    let tech = TechConfig::heterogeneous_16_28(6, 6);
    generate_maeri(&MaeriConfig::pe16_bw4(), &tech).expect("generator succeeds")
}

fn run(policy: FlowPolicy) -> FlowReport {
    run_flow(&design(), &FlowConfig::fast_test(2500.0), policy).expect("flow succeeds")
}

#[test]
fn all_policies_produce_consistent_reports() {
    let reports: Vec<FlowReport> = [FlowPolicy::NoMls, FlowPolicy::Sota, FlowPolicy::GnnMls]
        .into_iter()
        .map(run)
        .collect();
    for r in &reports {
        assert!(r.wirelength_m > 0.0, "{}: wirelength", r.policy);
        assert!(r.endpoints > 0);
        assert!(r.violating_paths <= r.endpoints);
        assert!(r.power_mw > 0.0);
        assert!(r.eff_freq_mhz > 0.0 && r.eff_freq_mhz.is_finite());
        assert!(r.fp_mm2 > 0.0);
        // eff freq formula consistency: 1/(T - wns).
        let t_ps = 1.0e6 / r.target_freq_mhz;
        let expect = 1.0e6 / (t_ps - r.wns_ps);
        assert!(
            (r.eff_freq_mhz - expect).abs() < 1.0,
            "{}: eff freq {} vs {}",
            r.policy,
            r.eff_freq_mhz,
            expect
        );
    }
    // Same netlist-derived quantities across policies.
    assert_eq!(reports[0].endpoints, reports[1].endpoints);
    assert_eq!(reports[0].endpoints, reports[2].endpoints);
    assert_eq!(reports[0].level_shifters, reports[2].level_shifters);
    // Policy semantics.
    assert_eq!(reports[0].mls_nets, 0, "No MLS must use zero MLS nets");
    assert!(reports[1].mls_nets > 0, "SOTA shares in a hetero design");
    assert!(
        reports[2].runtime_s.is_some(),
        "GNN-MLS reports its runtime"
    );
    assert!(reports[0].runtime_s.is_none());
}

#[test]
fn flow_is_deterministic() {
    let a = run(FlowPolicy::Sota);
    let b = run(FlowPolicy::Sota);
    assert_eq!(a.wns_ps, b.wns_ps);
    assert_eq!(a.tns_ns, b.tns_ns);
    assert_eq!(a.violating_paths, b.violating_paths);
    assert_eq!(a.mls_nets, b.mls_nets);
    assert_eq!(a.wirelength_m, b.wirelength_m);
}

#[test]
fn heterogeneous_flow_inserts_level_shifters_homogeneous_does_not() {
    let hetero = run(FlowPolicy::NoMls);
    assert!(hetero.level_shifters > 0);
    assert!(hetero.ls_power_mw.unwrap_or(0.0) > 0.0);

    let tech = TechConfig::homogeneous_28_28(6, 6);
    let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
    let homo = run_flow(&d, &FlowConfig::fast_test(2500.0), FlowPolicy::NoMls).unwrap();
    assert_eq!(homo.level_shifters, 0);
    assert!(homo.ls_power_mw.is_none());
}

#[test]
fn pdn_analysis_meets_budget_when_enabled() {
    let mut cfg = FlowConfig::fast_test(2500.0);
    cfg.analyze_pdn = true;
    let r = run_flow(&design(), &cfg, FlowPolicy::NoMls).unwrap();
    let ir = r.ir_drop_pct.expect("PDN analysis ran");
    assert!(ir >= 0.0 && ir <= cfg.ir_budget_pct + 1e-9, "IR {ir}%");
    let pdn = r.pdn.expect("PDN summary present");
    assert!(pdn.width_um > 0.0 && pdn.utilization <= 1.0);
}

#[test]
fn tighter_targets_worsen_timing_metrics() {
    let d = design();
    let fast = run_flow(&d, &FlowConfig::fast_test(4000.0), FlowPolicy::NoMls).unwrap();
    let slow = run_flow(&d, &FlowConfig::fast_test(800.0), FlowPolicy::NoMls).unwrap();
    assert!(fast.wns_ps < slow.wns_ps);
    assert!(fast.violating_paths >= slow.violating_paths);
    assert!(fast.tns_ns <= slow.tns_ns);
}

#[test]
fn pretrained_checkpoint_skips_training_and_still_applies_mls() {
    let d = design();
    let cfg = FlowConfig::fast_test(2500.0);
    // Train once...
    let trained = run_flow(&d, &cfg, FlowPolicy::GnnMls).unwrap();
    assert!(trained.runtime_s.unwrap() > 0.0);

    // ...then reuse: rebuild a model the expensive way once to snapshot it.
    use gnn_mls::flow::prepare;
    use gnn_mls::model::{GnnMls, ModelConfig};
    use gnn_mls::oracle::{label_paths, OracleConfig};
    use gnn_mls::paths::extract_path_samples;
    use gnnmls_route::{MlsPolicy, Router};
    use gnnmls_sta::{analyze, StaConfig};

    let (netlist, placement) = prepare(&d, &cfg).unwrap();
    let mut router = Router::new(
        &netlist,
        &placement,
        &d.tech,
        MlsPolicy::Disabled,
        cfg.route.clone(),
    )
    .unwrap();
    router.route_all().unwrap();
    let routes = router.db().unwrap();
    let rep = analyze(&netlist, &routes, StaConfig::from_freq_mhz(2500.0)).unwrap();
    let mut samples = extract_path_samples(&netlist, &placement, &d.tech, &rep, 60);
    label_paths(
        &mut samples,
        &netlist,
        &router,
        &routes,
        &OracleConfig::default(),
    )
    .unwrap();
    let mut model = GnnMls::new(ModelConfig {
        pretrain_epochs: 2,
        finetune_epochs: 8,
        ..ModelConfig::default()
    });
    model.pretrain(&samples).unwrap();
    model.finetune(&samples).unwrap();

    let mut reuse_cfg = FlowConfig::fast_test(2500.0);
    reuse_cfg.pretrained = Some(model.to_checkpoint());
    let reused = run_flow(&d, &reuse_cfg, FlowPolicy::GnnMls).unwrap();
    // The reused flow never runs the oracle.
    let t = reused.train.expect("summary still reported");
    assert_eq!(t.oracle.paths, 0, "no oracle labeling with a checkpoint");
    // It is much faster than training and still produces a valid report.
    assert!(reused.runtime_s.unwrap() < trained.runtime_s.unwrap());
    assert!(reused.wirelength_m > 0.0);
}

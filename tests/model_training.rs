//! Model training on *real* flow data (not synthetic features): the
//! oracle labels genuine critical paths and the trained model must beat a
//! majority-class baseline on held-out paths — i.e. GNN-MLS learns
//! something the labels alone don't give it.

use gnn_mls::flow::{prepare, FlowConfig};
use gnn_mls::model::{EncoderKind, GnnMls, ModelConfig};
use gnn_mls::oracle::{label_paths, OracleConfig};
use gnn_mls::paths::{extract_path_samples, PathSample};
use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
use gnnmls_netlist::tech::TechConfig;
use gnnmls_route::{MlsPolicy, Router};
use gnnmls_sta::{analyze, StaConfig};

/// Builds a labeled dataset from a real routed design.
fn real_dataset(paths: usize) -> (Vec<PathSample>, Vec<PathSample>) {
    dataset_for(&MaeriConfig::new(32, 4).with_seed(5), paths)
}

/// Labeled dataset for an arbitrary MAERI config.
fn dataset_for(cfg_m: &MaeriConfig, paths: usize) -> (Vec<PathSample>, Vec<PathSample>) {
    let tech = TechConfig::heterogeneous_16_28(6, 6);
    let d = generate_maeri(cfg_m, &tech).unwrap();
    let cfg = FlowConfig::fast_test(2500.0);
    let (netlist, placement) = prepare(&d, &cfg).unwrap();
    let mut router = Router::new(
        &netlist,
        &placement,
        &tech,
        MlsPolicy::Disabled,
        cfg.route.clone(),
    )
    .unwrap();
    router.route_all().unwrap();
    let routes = router.db().unwrap();
    let rep = analyze(&netlist, &routes, StaConfig::from_freq_mhz(2500.0)).unwrap();
    let mut samples = extract_path_samples(&netlist, &placement, &tech, &rep, paths);
    label_paths(
        &mut samples,
        &netlist,
        &router,
        &routes,
        &OracleConfig::default(),
    )
    .unwrap();
    // Interleaved split so train and eval share the slack distribution
    // (positives concentrate on the worst paths).
    let mut train = Vec::new();
    let mut eval = Vec::new();
    for (i, s) in samples.into_iter().enumerate() {
        if i % 4 == 3 {
            eval.push(s);
        } else {
            train.push(s);
        }
    }
    (train, eval)
}

fn majority_accuracy(samples: &[PathSample]) -> f64 {
    let (mut pos, mut total) = (0usize, 0usize);
    for s in samples {
        for &l in s.labels.as_ref().unwrap() {
            pos += usize::from(l);
            total += 1;
        }
    }
    let p = pos as f64 / total.max(1) as f64;
    p.max(1.0 - p)
}

#[test]
fn trained_model_finds_positives_majority_never_can() {
    let (train, eval) = real_dataset(160);
    let baseline = majority_accuracy(&eval);
    let mut model = GnnMls::new(ModelConfig {
        pretrain_epochs: 4,
        finetune_epochs: 25,
        ..ModelConfig::default()
    });
    model.pretrain(&train).unwrap();
    model.finetune(&train).unwrap();
    let m = model.evaluate(&eval).unwrap();
    // The majority class is almost always "no MLS", whose F1 on the
    // positive class is 0 — the model must do real work instead:
    // reasonable accuracy *and* non-trivial positive-class F1/recall.
    assert!(
        m.accuracy() > 0.70,
        "model {:.3} (majority would be {:.3})",
        m.accuracy(),
        baseline
    );
    assert!(m.recall() > 0.1, "recall {:.3}", m.recall());
    assert!(m.f1() > 0.15, "f1 {:.3}", m.f1());
}

#[test]
fn decisions_are_deterministic_and_eligible_only() {
    let (train, _) = real_dataset(100);
    let run = || {
        let mut model = GnnMls::new(ModelConfig {
            pretrain_epochs: 2,
            finetune_epochs: 10,
            ..ModelConfig::default()
        });
        model.pretrain(&train).unwrap();
        model.finetune(&train).unwrap();
        model.decide(&train).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same config + data must decide identically");
    // Every selected net is eligible on some violating path.
    for net in &a {
        let ok = train.iter().any(|s| {
            s.path.slack_ps < 0.0
                && s.nets
                    .iter()
                    .zip(&s.eligible)
                    .any(|(&n, &e)| n == *net && e)
        });
        assert!(ok, "net {net} selected without an eligible violating path");
    }
}

#[test]
fn dgi_pretraining_helps_or_at_least_does_not_hurt_much() {
    let (train, eval) = real_dataset(160);
    let acc = |use_dgi: bool| {
        let mut model = GnnMls::new(ModelConfig {
            use_dgi,
            pretrain_epochs: 4,
            finetune_epochs: 20,
            ..ModelConfig::default()
        });
        model.pretrain(&train).unwrap();
        model.finetune(&train).unwrap();
        model.evaluate(&eval).unwrap().accuracy()
    };
    let with = acc(true);
    let without = acc(false);
    // The paper's claim is data efficiency, not magic: with a frozen
    // encoder the DGI features must carry the classifier into the same
    // band as the random-features baseline (random projections are a
    // strong baseline at this width, so parity is the honest bar).
    assert!(
        with >= without - 0.15,
        "dgi {with:.3} vs no-dgi {without:.3}"
    );
    assert!(with > 0.6, "dgi features alone must be usable: {with:.3}");
}

#[test]
fn gcn_ablation_trains_on_real_data() {
    let (train, eval) = real_dataset(120);
    let mut model = GnnMls::new(ModelConfig {
        encoder: EncoderKind::Gcn,
        pretrain_epochs: 2,
        finetune_epochs: 15,
        ..ModelConfig::default()
    });
    model.pretrain(&train).unwrap();
    model.finetune(&train).unwrap();
    let m = model.evaluate(&eval).unwrap();
    assert!(m.accuracy() > 0.4, "gcn accuracy {:.3}", m.accuracy());
}

/// The paper trains on paths from *several* designs (A7 + MAERI, hetero +
/// homo). Cross-design transfer must at least produce usable decisions:
/// train on one MAERI size, evaluate on another.
#[test]
fn model_transfers_across_design_sizes() {
    let (train_a, _) = dataset_for(&MaeriConfig::new(32, 4).with_seed(5), 120);
    let (train_b, eval_b) = dataset_for(&MaeriConfig::new(16, 4).with_seed(9), 80);

    // Joint training set, as in the paper (500 paths from each design).
    let mut joint = train_a.clone();
    joint.extend(train_b.iter().cloned());
    let mut model = GnnMls::new(ModelConfig {
        pretrain_epochs: 3,
        finetune_epochs: 20,
        ..ModelConfig::default()
    });
    model.pretrain(&joint).unwrap();
    model.finetune(&joint).unwrap();
    let m = model.evaluate(&eval_b).unwrap();
    assert!(
        m.accuracy() > 0.55,
        "cross-design accuracy {:.3}",
        m.accuracy()
    );
    // Decisions on the unseen design are non-degenerate.
    let decided = model.decide(&eval_b).unwrap();
    let eligible: usize = eval_b
        .iter()
        .map(|s| s.eligible.iter().filter(|&&e| e).count())
        .sum();
    assert!(decided.len() < eligible, "must not select everything");
}

/// A trained model survives a checkpoint round-trip and keeps deciding
/// identically — the train-once / reuse-everywhere workflow.
#[test]
fn checkpointed_model_decides_identically_on_real_data() {
    let (train, eval) = real_dataset(100);
    let mut model = GnnMls::new(ModelConfig {
        pretrain_epochs: 2,
        finetune_epochs: 10,
        ..ModelConfig::default()
    });
    model.pretrain(&train).unwrap();
    model.finetune(&train).unwrap();
    let restored = GnnMls::from_checkpoint(model.to_checkpoint()).unwrap();
    assert_eq!(
        model.decide(&eval).unwrap(),
        restored.decide(&eval).unwrap()
    );
    let a = model.evaluate(&eval).unwrap();
    let b = restored.evaluate(&eval).unwrap();
    assert_eq!(a, b);
}

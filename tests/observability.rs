//! Observability contract tests: tracing must be a pure observer.
//!
//! - Running the flow with a trace sink installed must produce a report
//!   bit-identical (modulo wall-clock runtime) to the untraced run.
//! - The emitted JSONL must contain a `flow` root span with every stage
//!   span nested under it, and the metrics registry must expose the
//!   router/flow metric families after one flow.

use std::sync::Arc;

use gnn_mls::flow::{run_flow, FlowConfig, FlowPolicy};
use gnn_mls::FlowReport;
use gnnmls_netlist::generators::{generate_maeri, GeneratedDesign, MaeriConfig};
use gnnmls_netlist::tech::TechConfig;
use gnnmls_obs::{install_guarded, MemorySink};

fn design() -> GeneratedDesign {
    let tech = TechConfig::heterogeneous_16_28(6, 6);
    generate_maeri(&MaeriConfig::pe16_bw4(), &tech).expect("generator succeeds")
}

fn run() -> FlowReport {
    run_flow(
        &design(),
        &FlowConfig::fast_test(2500.0),
        FlowPolicy::GnnMls,
    )
    .expect("flow succeeds")
}

/// Pulls `"key":<integer>` out of a JSONL record.
fn extract_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn extract_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    Some(&rest[..rest.find('"')?])
}

#[test]
fn tracing_on_and_off_are_bit_identical() {
    let untraced = run().comparable();
    let traced = {
        let _guard = install_guarded(Arc::new(MemorySink::new()));
        run().comparable()
    };
    let a = serde_json::to_string(&untraced).expect("serialize untraced");
    let b = serde_json::to_string(&traced).expect("serialize traced");
    assert_eq!(a, b, "a trace sink must never perturb the flow's results");
}

#[test]
fn flow_trace_nests_every_stage_and_registers_metric_families() {
    let sink = Arc::new(MemorySink::new());
    let lines = {
        let _guard = install_guarded(sink.clone());
        // Enable PDN analysis so every stage span (including `pdn`) fires.
        let mut cfg = FlowConfig::fast_test(2500.0);
        cfg.analyze_pdn = true;
        run_flow(&design(), &cfg, FlowPolicy::GnnMls).expect("flow succeeds");
        sink.lines()
    };

    let spans: Vec<&String> = lines
        .iter()
        .filter(|l| l.starts_with("{\"type\":\"span\""))
        .collect();
    let flow = spans
        .iter()
        .find(|l| extract_str(l, "name") == Some("flow"))
        .expect("flow root span emitted");
    let flow_id = extract_u64(flow, "id").expect("flow span id");
    assert!(
        flow.contains("\"parent\":null"),
        "flow span is the root: {flow}"
    );

    // Every stage of this configuration (hetero tech, GnnMls policy,
    // no DFT) must appear as a direct child of the flow span.
    for stage in [
        "place",
        "level_shifters",
        "repeaters",
        "decisions",
        "route",
        "audit_routes",
        "sta",
        "power",
        "pdn",
    ] {
        let s = spans
            .iter()
            .find(|l| extract_str(l, "name") == Some(stage))
            .unwrap_or_else(|| panic!("missing stage span `{stage}`"));
        assert_eq!(
            extract_u64(s, "parent"),
            Some(flow_id),
            "stage `{stage}` must nest under the flow span: {s}"
        );
    }

    // One routed flow touches the router + flow metric families; the
    // acceptance bar is at least 8 distinct names in the exposition.
    let exposition = gnnmls_obs::render();
    let names: std::collections::BTreeSet<&str> = exposition
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .filter_map(|l| l.split([' ', '{']).next())
        .collect();
    assert!(
        names.len() >= 8,
        "expected >= 8 distinct metric names, got {}: {names:?}",
        names.len()
    );
    for family in [
        "gnnmls_route_astar_searches_total",
        "gnnmls_route_astar_expansions_total",
        "gnnmls_route_ripup_rounds_total",
        "gnnmls_route_gcell_overflow",
        "gnnmls_route_mls_borrow_total",
    ] {
        assert!(
            exposition.contains(family),
            "missing {family} in exposition:\n{exposition}"
        );
    }
}

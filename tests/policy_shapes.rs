//! The paper's qualitative claims, verified end-to-end at test scale:
//! MLS moves timing, GNN-MLS is selective, and single-net MLS can both
//! help and hurt (Table I's motivation).

use std::collections::HashMap;

use gnn_mls::flow::{prepare, run_flow, FlowConfig, FlowPolicy};
use gnn_mls::oracle::net_mls_impact;
use gnn_mls::paths::extract_path_samples;
use gnnmls_netlist::generators::{generate_maeri, GeneratedDesign, MaeriConfig};
use gnnmls_netlist::tech::TechConfig;
use gnnmls_route::router::MlsOverride;
use gnnmls_route::{MlsPolicy, Router};
use gnnmls_sta::{analyze, StaConfig};

fn design() -> GeneratedDesign {
    let tech = TechConfig::heterogeneous_16_28(6, 6);
    // 64 PEs: big enough for congestion, small enough for a test.
    generate_maeri(&MaeriConfig::new(64, 8).with_seed(3), &tech).expect("generator succeeds")
}

fn cfg() -> FlowConfig {
    let mut c = FlowConfig::fast_test(2500.0);
    c.train_paths = 80;
    c.inference_paths = 400;
    c
}

#[test]
fn gnn_mls_improves_tns_over_no_mls_and_is_selective() {
    let d = design();
    let c = cfg();
    let no_mls = run_flow(&d, &c, FlowPolicy::NoMls).unwrap();
    let sota = run_flow(&d, &c, FlowPolicy::Sota).unwrap();
    let ours = run_flow(&d, &c, FlowPolicy::GnnMls).unwrap();

    assert!(no_mls.tns_ns < 0.0, "baseline must violate for the claim");
    assert!(
        ours.tns_ns > no_mls.tns_ns,
        "GNN-MLS TNS {:.2} vs No-MLS {:.2}",
        ours.tns_ns,
        no_mls.tns_ns
    );
    assert!(
        ours.wns_ps > no_mls.wns_ps,
        "GNN-MLS WNS {:.1} vs No-MLS {:.1}",
        ours.wns_ps,
        no_mls.wns_ps
    );
    assert!(ours.mls_nets > 0, "GNN-MLS applies some sharing");
    assert!(
        ours.mls_nets < sota.mls_nets,
        "selective: {} vs SOTA {}",
        ours.mls_nets,
        sota.mls_nets
    );
}

#[test]
fn single_net_mls_helps_some_nets_and_hurts_others() {
    let d = design();
    let c = cfg();
    let (netlist, placement) = prepare(&d, &c).unwrap();
    let mut router = Router::new(
        &netlist,
        &placement,
        &d.tech,
        MlsPolicy::Disabled,
        c.route.clone(),
    )
    .unwrap();
    router.route_all().unwrap();
    let routes = router.db().unwrap();
    let rep = analyze(&netlist, &routes, StaConfig::from_freq_mhz(2500.0)).unwrap();
    let samples = extract_path_samples(&netlist, &placement, &d.tech, &rep, 60);
    let grid = router.grid().clone();
    let impacts = net_mls_impact(&samples, &netlist, &router, &routes, &grid).unwrap();
    assert!(impacts.len() > 10);
    let helped = impacts.iter().filter(|i| i.gain_ps() > 0.5).count();
    let hurt = impacts.iter().filter(|i| i.gain_ps() < -0.5).count();
    assert!(helped > 0, "some net must gain from MLS");
    assert!(hurt > 0, "some net must lose from MLS (Table I motivation)");
}

#[test]
fn whatif_mls_routes_borrow_idle_memory_metals() {
    // The Memory-on-Logic premise: the memory die's BEOL is mostly idle,
    // so logic nets that cross should use its bond-adjacent metals.
    let d = design();
    let c = cfg();
    let (netlist, placement) = prepare(&d, &c).unwrap();
    let mut router = Router::new(
        &netlist,
        &placement,
        &d.tech,
        MlsPolicy::Disabled,
        c.route.clone(),
    )
    .unwrap();
    router.route_all().unwrap();
    let routes = router.db().unwrap();
    let rep = analyze(&netlist, &routes, StaConfig::from_freq_mhz(2500.0)).unwrap();
    let samples = extract_path_samples(&netlist, &placement, &d.tech, &rep, 30);
    let grid = router.grid().clone();

    let mut crossed = 0;
    let mut used_mem_top = 0;
    let mut seen = HashMap::new();
    let mut scratch = router.scratch();
    for s in &samples {
        for (i, &net) in s.nets.iter().enumerate() {
            if !s.eligible[i] || seen.contains_key(&net) {
                continue;
            }
            let cand = router
                .what_if(&mut scratch, net, MlsOverride::Allow)
                .unwrap();
            if cand.is_mls {
                crossed += 1;
                let (_, mem_mask) = cand.tree.used_layers(&grid);
                // Bond-adjacent memory metals are the top two (M5/M6 of a
                // 6-layer stack): bits 4 and 5.
                if mem_mask & 0b11_0000 != 0 {
                    used_mem_top += 1;
                }
            }
            seen.insert(net, ());
        }
    }
    assert!(
        crossed > 3,
        "what-if must cross for several nets: {crossed}"
    );
    assert!(
        used_mem_top * 2 >= crossed,
        "most crossings use the memory top metals: {used_mem_top}/{crossed}"
    );
}

#[test]
fn sota_share_map_favors_the_congested_logic_die() {
    let d = design();
    let c = cfg();
    let (netlist, placement) = prepare(&d, &c).unwrap();
    let router = Router::new(
        &netlist,
        &placement,
        &d.tech,
        MlsPolicy::sota(),
        c.route.clone(),
    )
    .unwrap();
    let map = router.share_map().expect("SOTA computes a share map");
    let (to_logic, to_memory) = map.shared_counts();
    assert!(
        to_logic > to_memory,
        "logic demand dominates a MoL design: {to_logic} vs {to_memory}"
    );
}

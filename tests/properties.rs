//! Property-style tests over randomly generated designs: invariants of
//! the netlist/placement/routing/timing pipeline that must hold for
//! *every* seed and size, not just the benchmark configs.
//!
//! Each test sweeps a deterministic set of seeded random cases (drawn
//! from the in-tree `rand` shim) instead of using proptest, which is
//! unavailable in the offline build environment. Failures name the
//! offending case so it can be replayed directly.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gnn_mls::features::{node_features, FeatureScaler, FEATURE_DIM};
use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
use gnnmls_netlist::graph::CircuitDag;
use gnnmls_netlist::stats::NetlistStats;
use gnnmls_netlist::tech::TechConfig;
use gnnmls_phys::{place, total_hpwl_um, PlaceConfig};
use gnnmls_route::{route_design, MlsPolicy, RouteConfig};
use gnnmls_sta::{analyze, StaConfig};

const CASES: usize = 8;

fn small_route_cfg() -> RouteConfig {
    RouteConfig::builder()
        .target_gcells(16)
        .build()
        .expect("valid test config")
}

/// Every generated design validates, levelizes, and has sane stats.
#[test]
fn generated_designs_are_well_formed() {
    let mut draw = StdRng::seed_from_u64(0xD0E1);
    for case in 0..CASES {
        let pes = draw.gen_range(2usize..12);
        let bw = draw.gen_range(1usize..4);
        let width = draw.gen_range(2usize..6);
        let seed = draw.gen_range(0u64..1000);
        let ctx = format!("case {case}: pes={pes} bw={bw} width={width} seed={seed}");

        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let cfg = MaeriConfig {
            pes,
            bandwidth: bw,
            data_width: width,
            seed,
        };
        let d = generate_maeri(&cfg, &tech).unwrap();
        let s = NetlistStats::compute(&d.netlist);
        assert!(s.cells > 0 && s.nets > 0, "{ctx}");
        assert!(
            s.max_fanout <= 10,
            "fanout buffering bound: {} ({ctx})",
            s.max_fanout
        );
        // Every net: one driver + >= 1 sink (validation), and the DAG
        // levelizes (no combinational loops).
        let dag = CircuitDag::build(&d.netlist).unwrap();
        assert_eq!(dag.topo_order().len(), d.netlist.cell_count(), "{ctx}");
        assert!(s.nets_3d > 0, "buffer macros force 3D nets ({ctx})");
    }
}

/// Placement keeps every cell inside the die for all seeds.
#[test]
fn placement_is_always_legal() {
    let mut draw = StdRng::seed_from_u64(0x91ACE);
    for case in 0..CASES {
        let seed = draw.gen_range(0u64..500);
        let ctx = format!("case {case}: seed={seed}");

        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::new(8, 2).with_seed(seed), &tech).unwrap();
        let p = place(
            &d.netlist,
            &PlaceConfig {
                seed,
                ..PlaceConfig::default()
            },
        )
        .unwrap();
        for c in d.netlist.cell_ids() {
            let l = p.loc(c);
            assert!(p.floorplan().contains(l.x, l.y), "{ctx}");
        }
        assert!(total_hpwl_um(&d.netlist, &p) >= 0.0, "{ctx}");
    }
}

/// Routing covers every sink, extraction is physical (non-negative,
/// finite), and the no-MLS policy is airtight for every seed.
#[test]
fn routing_invariants_hold() {
    let mut draw = StdRng::seed_from_u64(0x2007);
    for case in 0..CASES {
        let seed = draw.gen_range(0u64..300);
        let ctx = format!("case {case}: seed={seed}");

        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::new(8, 2).with_seed(seed), &tech).unwrap();
        let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
        let (db, grid) = route_design(
            &d.netlist,
            &p,
            &tech,
            MlsPolicy::Disabled,
            small_route_cfg(),
        )
        .unwrap();
        assert_eq!(db.nets.len(), d.netlist.net_count(), "{ctx}");
        for net in d.netlist.net_ids() {
            let r = db.route(net);
            assert_eq!(r.tree.sink_node.len(), d.netlist.sinks(net).len(), "{ctx}");
            assert!(r.total_cap_ff >= 0.0 && r.total_cap_ff.is_finite(), "{ctx}");
            for &e in &r.sink_elmore_ps {
                assert!(e >= 0.0 && e.is_finite(), "{ctx}");
            }
            // No MLS: single-die nets never leave their die.
            if let Some(home) = d.netlist.net_tier(net) {
                assert!(!r.tree.uses_other_tier(&grid, home), "{ctx}");
                assert!(!r.is_mls, "{ctx}");
            } else {
                // 3D nets must cross the bond at least once (they may
                // cross more: free-roaming branches can dip into either
                // die's metals).
                assert!(
                    r.f2f_crossings >= 1,
                    "crossings {} ({ctx})",
                    r.f2f_crossings
                );
            }
        }
    }
}

/// STA invariants: finite arrivals, WNS bounds all slacks, violating
/// count consistent with slacks.
#[test]
fn sta_invariants_hold() {
    let mut draw = StdRng::seed_from_u64(0x57A);
    for case in 0..CASES {
        let seed = draw.gen_range(0u64..300);
        let mhz = draw.gen_range(500.0f64..4000.0);
        let ctx = format!("case {case}: seed={seed} mhz={mhz}");

        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::new(8, 2).with_seed(seed), &tech).unwrap();
        let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
        let (db, _) = route_design(
            &d.netlist,
            &p,
            &tech,
            MlsPolicy::Disabled,
            small_route_cfg(),
        )
        .unwrap();
        let rep = analyze(&d.netlist, &db, StaConfig::from_freq_mhz(mhz)).unwrap();
        let mut violating = 0;
        for &(_, s) in rep.endpoint_slacks() {
            assert!(s.is_finite(), "{ctx}");
            assert!(s >= rep.wns_ps() - 1e-9, "{ctx}");
            if s < 0.0 {
                violating += 1;
            }
        }
        assert_eq!(violating, rep.violating_endpoints(), "{ctx}");
        assert!(rep.tns_ps() <= 0.0, "{ctx}");
        assert!(rep.eff_freq_mhz() > 0.0, "{ctx}");
    }
}

/// Feature extraction + scaling round-trips to finite z-scores.
#[test]
fn features_standardize_for_all_seeds() {
    let mut draw = StdRng::seed_from_u64(0xFEA7);
    for case in 0..CASES {
        let seed = draw.gen_range(0u64..200);
        let ctx = format!("case {case}: seed={seed}");

        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::new(4, 2).with_seed(seed), &tech).unwrap();
        let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
        let rows: Vec<[f32; FEATURE_DIM]> = d
            .netlist
            .net_ids()
            .map(|n| node_features(&d.netlist, &p, &tech, n))
            .collect();
        let scaler = FeatureScaler::fit(&rows);
        for r in &rows {
            for v in scaler.apply(r) {
                assert!(v.is_finite(), "{ctx}");
                assert!(v.abs() < 1e4, "{ctx}");
            }
        }
    }
}

/// Non-random invariant with a fixed sweep: MLS permissions are
/// respected exactly — only explicitly allowed nets may share metal.
#[test]
fn mls_permissions_are_respected_exactly() {
    let tech = TechConfig::heterogeneous_16_28(6, 6);
    let d = generate_maeri(&MaeriConfig::new(16, 4), &tech).unwrap();
    let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
    let two_d: Vec<_> = d
        .netlist
        .net_ids()
        .filter(|&n| d.netlist.net_tier(n).is_some())
        .take(40)
        .collect();
    let allowed: HashSet<_> = two_d.iter().copied().collect();
    let policy = MlsPolicy::per_net_from(&d.netlist, two_d.iter().copied());
    let (db, _) = route_design(&d.netlist, &p, &tech, policy, small_route_cfg()).unwrap();
    for r in db.mls_nets() {
        assert!(allowed.contains(&r.net), "unauthorized MLS net {}", r.net);
    }
}

/// Any single-byte corruption of a stage checkpoint is detected as
/// [`CheckpointError::Corrupt`] — the envelope's checksum covers the
/// payload and the header fields are validated, so no flip can slip
/// through as a plausible checkpoint (and none may panic).
#[test]
fn checkpoint_bit_flips_always_surface_as_corrupt() {
    use gnn_mls::checkpoint::{decode_stage, encode_stage};
    use gnn_mls::{CheckpointError, GnnMls, ModelCheckpoint, ModelConfig};

    let cp = GnnMls::new(ModelConfig::default()).to_checkpoint();
    let clean = encode_stage("model", &cp).unwrap();
    // Clean bytes round-trip bit-identically.
    let decoded: ModelCheckpoint = decode_stage("model", &clean).unwrap();
    assert_eq!(encode_stage("model", &decoded).unwrap(), clean);

    let mut draw = StdRng::seed_from_u64(0xFA07);
    for case in 0..64 {
        let pos = draw.gen_range(0usize..clean.len());
        let bit = draw.gen_range(0u32..8);
        let mut bytes = clean.clone();
        bytes[pos] ^= 1u8 << bit;
        let ctx = format!("case {case}: flipped bit {bit} of byte {pos}");
        match decode_stage::<ModelCheckpoint>("model", &bytes) {
            Err(CheckpointError::Corrupt(_)) => {}
            Err(other) => panic!("{ctx}: expected Corrupt, got {other:?}"),
            Ok(_) => panic!("{ctx}: corrupted envelope decoded successfully"),
        }
    }
}

/// Any truncation of a stage checkpoint — header, mid-payload, or to
/// nothing — is detected as [`CheckpointError::Corrupt`], never a panic
/// and never a silently-short decode.
#[test]
fn checkpoint_truncations_always_surface_as_corrupt() {
    use gnn_mls::checkpoint::{decode_stage, encode_stage};
    use gnn_mls::{CheckpointError, GnnMls, ModelCheckpoint, ModelConfig};

    let cp = GnnMls::new(ModelConfig::default()).to_checkpoint();
    let clean = encode_stage("model", &cp).unwrap();

    let mut draw = StdRng::seed_from_u64(0x7C07);
    let mut cuts: Vec<usize> = (0..48)
        .map(|_| draw.gen_range(0usize..clean.len()))
        .collect();
    cuts.extend([0, 1, clean.len() - 1]);
    for cut in cuts {
        match decode_stage::<ModelCheckpoint>("model", &clean[..cut]) {
            Err(CheckpointError::Corrupt(_)) => {}
            Err(other) => panic!("cut at {cut}: expected Corrupt, got {other:?}"),
            Ok(_) => panic!("cut at {cut}: truncated envelope decoded successfully"),
        }
    }
}

/// Stage checkpoints survive a disk round trip bit-identically:
/// save → load → save reproduces the exact same file bytes, and a
/// damaged file on disk loads as a typed error.
#[test]
fn stage_checkpoints_round_trip_bit_identically_on_disk() {
    use gnn_mls::checkpoint::{load_stage, save_stage, stage_path};
    use gnn_mls::{CheckpointError, GnnMls, ModelCheckpoint, ModelConfig};
    use std::path::PathBuf;

    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("prop-roundtrip");
    let _ = std::fs::remove_dir_all(&dir);
    let cp = GnnMls::new(ModelConfig::default()).to_checkpoint();
    save_stage(&dir, "model", &cp).unwrap();
    let bytes1 = std::fs::read(stage_path(&dir, "model")).unwrap();

    let loaded: ModelCheckpoint = load_stage(&dir, "model").unwrap().unwrap();
    let dir2 = dir.join("again");
    save_stage(&dir2, "model", &loaded).unwrap();
    let bytes2 = std::fs::read(stage_path(&dir2, "model")).unwrap();
    assert_eq!(bytes1, bytes2, "save -> load -> save must be bit-identical");

    // A missing stage is Ok(None); a damaged file is a typed error.
    assert!(load_stage::<ModelCheckpoint>(&dir, "missing")
        .unwrap()
        .is_none());
    let mut bad = bytes1.clone();
    bad[bytes1.len() / 2] ^= 0x10;
    std::fs::write(stage_path(&dir, "model"), &bad).unwrap();
    assert!(matches!(
        load_stage::<ModelCheckpoint>(&dir, "model"),
        Err(CheckpointError::Corrupt(_))
    ));
}
